//! Physical plans: the tree the optimizer hands to the engine.
//!
//! [`PhysicalPlan`] is a serializable description; [`build_operator`] turns
//! it into a live operator pipeline against an [`ExecContext`] holding the
//! projection snapshots for one node. EXPLAIN output (Figure 3's plan
//! rendering) comes from [`explain`].

use crate::aggregate::AggCall;
use crate::analytic::{AnalyticOp, WindowFunc};
use crate::batch::Batch;
use crate::exchange::{parallel_segmented, UnionOp};
use crate::filter::{FilterOp, ProjectOp};
use crate::groupby::{two_phase_aggs, HashGroupByOp, PipelinedGroupByOp, PrepassGroupByOp};
pub use crate::join::JoinType;
use crate::join::{HashJoinOp, MergeJoinOp};
use crate::memory::{MemoryBudget, ResourcePolicy};
use crate::operator::{BoxedOperator, ValuesOp};
pub use crate::parallel::ParallelStage;
use crate::parallel::{ParallelScanOp, ParallelScanSpec};
use crate::parallel_join::{ParallelHashJoinOp, ParallelJoinSpec};
use crate::scan::{ScanOperator, SipBinding};
use crate::sip::SipFilter;
use crate::sort::{LimitOp, SortOp};
use std::collections::HashMap;
use std::sync::Arc;
use vdb_storage::store::{ScanMorsel, SnapshotScan};
use vdb_storage::StorageBackend;
use vdb_types::schema::SortKey;
use vdb_types::{DbError, DbResult, Expr, Row};

/// A SIP filter edge: the join that builds it and the scan that consumes
/// it share the id.
pub type SipId = usize;

/// Physical plan nodes.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Scan one projection's snapshot on this node.
    Scan {
        projection: String,
        /// Projection column indexes to output, in order.
        output_columns: Vec<usize>,
        /// Residual predicate over the output columns.
        predicate: Option<Expr>,
        /// Predicate over the single-value row `[partition_key]`.
        partition_predicate: Option<Expr>,
        /// `(sip id, key columns of the scan output)`.
        sip: Vec<(SipId, Vec<usize>)>,
    },
    /// Morsel-driven parallel scan: `threads` workers pull container
    /// morsels from a shared queue, run scan → visibility → SIP/predicate
    /// (plus the per-worker `stage`) independently, and merge at a single
    /// barrier. `threads = 1` (or a single-morsel snapshot) degenerates to
    /// the serial pipeline.
    ParallelScan {
        projection: String,
        output_columns: Vec<usize>,
        predicate: Option<Expr>,
        partition_predicate: Option<Expr>,
        sip: Vec<(SipId, Vec<usize>)>,
        stage: ParallelStage,
        threads: usize,
    },
    /// Literal rows (DML sources, replan inputs, tests).
    Values { rows: Vec<Row>, arity: usize },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        /// SIP filter this join publishes (consumed by a Scan below left).
        sip: Option<SipId>,
    },
    MergeJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
    },
    /// Morsel-parallel partitioned hash join over two projection scans:
    /// `build_threads` workers hash-partition the build (right) side from
    /// its morsel queue, the barrier merges partitions and publishes the
    /// SIP filter, then `probe_threads` workers probe typed key columns
    /// directly from the probe (left) side's morsel queue. Both children
    /// must be [`PhysicalPlan::Scan`] nodes; `threads = 1` shapes stay on
    /// the serial [`PhysicalPlan::HashJoin`].
    ParallelHashJoin {
        /// Probe side (must be a `Scan`).
        left: Box<PhysicalPlan>,
        /// Build side (must be a `Scan`).
        right: Box<PhysicalPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        /// SIP filter this join publishes at the build barrier.
        sip: Option<SipId>,
        probe_threads: usize,
        build_threads: usize,
    },
    HashGroupBy {
        input: Box<PhysicalPlan>,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    /// One-pass aggregation over input sorted by the group columns.
    PipelinedGroupBy {
        input: Box<PhysicalPlan>,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    /// Prepass + final hash GroupBy (+ AVG reconstitution projection).
    TwoPhaseGroupBy {
        input: Box<PhysicalPlan>,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    /// Figure 3: resegment into N parallel lanes, aggregate per lane.
    ParallelGroupBy {
        input: Box<PhysicalPlan>,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
        lanes: usize,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        limit: usize,
        offset: usize,
    },
    Analytic {
        input: Box<PhysicalPlan>,
        partition_by: Vec<usize>,
        order_by: Vec<SortKey>,
        funcs: Vec<WindowFunc>,
        pre_sorted: bool,
    },
    /// Concatenate children (same schema).
    Union { inputs: Vec<PhysicalPlan> },
}

/// Everything needed to instantiate a plan on one node.
pub struct ExecContext {
    pub backend: Arc<dyn StorageBackend>,
    /// Projection name → snapshot to scan.
    pub snapshots: HashMap<String, SnapshotScan>,
    pub policy: ResourcePolicy,
    /// SIP filters keyed by id, shared between joins and scans.
    pub sip_filters: HashMap<SipId, Arc<SipFilter>>,
}

impl ExecContext {
    pub fn new(backend: Arc<dyn StorageBackend>) -> ExecContext {
        ExecContext {
            backend,
            snapshots: HashMap::new(),
            policy: ResourcePolicy::default(),
            sip_filters: HashMap::new(),
        }
    }

    fn sip(&mut self, id: SipId) -> Arc<SipFilter> {
        self.sip_filters.entry(id).or_default().clone()
    }
}

/// Count stateful operators for the §6.1 memory split.
fn stateful_count(plan: &PhysicalPlan) -> usize {
    match plan {
        PhysicalPlan::Scan { .. } | PhysicalPlan::Values { .. } => 0,
        // Per-worker aggregation/sort state plus the barrier; Collect
        // holds the materialized scan output until downstream drains it.
        PhysicalPlan::ParallelScan { .. } => 1,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Limit { input, .. } => stateful_count(input),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. }
        | PhysicalPlan::ParallelHashJoin { left, right, .. } => {
            1 + stateful_count(left) + stateful_count(right)
        }
        PhysicalPlan::HashGroupBy { input, .. }
        | PhysicalPlan::PipelinedGroupBy { input, .. }
        | PhysicalPlan::TwoPhaseGroupBy { input, .. }
        | PhysicalPlan::ParallelGroupBy { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Analytic { input, .. } => 1 + stateful_count(input),
        PhysicalPlan::Union { inputs } => inputs.iter().map(stateful_count).sum(),
    }
}

/// Instantiate a plan into an operator pipeline.
pub fn build_operator(plan: &PhysicalPlan, ctx: &mut ExecContext) -> DbResult<BoxedOperator> {
    let budget = ctx.policy.per_operator(stateful_count(plan).max(1));
    build_inner(plan, ctx, budget)
}

fn build_inner(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext,
    budget: MemoryBudget,
) -> DbResult<BoxedOperator> {
    Ok(match plan {
        PhysicalPlan::Scan {
            projection,
            output_columns,
            predicate,
            partition_predicate,
            sip,
        } => {
            let bindings: Vec<SipBinding> = sip
                .iter()
                .map(|(id, cols)| SipBinding {
                    filter: ctx.sip(*id),
                    key_columns: cols.clone(),
                })
                .collect();
            let snap = ctx
                .snapshots
                .get(projection)
                .ok_or_else(|| DbError::Plan(format!("no snapshot for projection {projection}")))?;
            Box::new(ScanOperator::new(
                ctx.backend.clone(),
                snap.containers.clone(),
                snap.wos_rows.clone(),
                output_columns.clone(),
                predicate.clone(),
                partition_predicate.clone(),
                bindings,
            ))
        }
        PhysicalPlan::ParallelScan {
            projection,
            output_columns,
            predicate,
            partition_predicate,
            sip,
            stage,
            threads,
        } => {
            let bindings: Vec<SipBinding> = sip
                .iter()
                .map(|(id, cols)| SipBinding {
                    filter: ctx.sip(*id),
                    key_columns: cols.clone(),
                })
                .collect();
            let snap = ctx
                .snapshots
                .get(projection)
                .ok_or_else(|| DbError::Plan(format!("no snapshot for projection {projection}")))?;
            let morsels = snap.clone().into_morsels();
            let spec = ParallelScanSpec {
                backend: ctx.backend.clone(),
                output_columns: output_columns.clone(),
                predicate: predicate.clone(),
                partition_predicate: partition_predicate.clone(),
                sip: bindings,
            };
            Box::new(ParallelScanOp::new(
                spec,
                stage.clone(),
                morsels,
                *threads,
                budget,
            ))
        }
        PhysicalPlan::Values { rows, .. } => Box::new(ValuesOp::from_rows(rows.clone())),
        PhysicalPlan::Filter { input, predicate } => Box::new(FilterOp::new(
            build_inner(input, ctx, budget)?,
            predicate.clone(),
        )),
        PhysicalPlan::Project { input, exprs } => Box::new(ProjectOp::new(
            build_inner(input, ctx, budget)?,
            exprs.clone(),
        )),
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            sip,
        } => {
            let sip_filter = sip.map(|id| ctx.sip(id));
            // Build right first so the SIP filter exists before the probe
            // side's scan is constructed (construction order is irrelevant
            // at runtime — the filter fills during build — but keeping the
            // id registered is required).
            let right_op = build_inner(right, ctx, budget)?;
            let left_op = build_inner(left, ctx, budget)?;
            Box::new(HashJoinOp::new(
                left_op,
                right_op,
                left_keys.clone(),
                right_keys.clone(),
                *join_type,
                budget,
                sip_filter,
            ))
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => Box::new(MergeJoinOp::new(
            build_inner(left, ctx, budget)?,
            build_inner(right, ctx, budget)?,
            left_keys.clone(),
            right_keys.clone(),
            *join_type,
        )),
        PhysicalPlan::ParallelHashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            sip,
            probe_threads,
            build_threads,
        } => {
            let sip_filter = sip.map(|id| ctx.sip(id));
            let (build, build_morsels) = parallel_scan_parts(right, ctx)?;
            let (probe, probe_morsels) = parallel_scan_parts(left, ctx)?;
            Box::new(ParallelHashJoinOp::new(
                ParallelJoinSpec {
                    probe,
                    probe_morsels,
                    probe_threads: *probe_threads,
                    build,
                    build_morsels,
                    build_threads: *build_threads,
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                    join_type: *join_type,
                    sip: sip_filter,
                },
                budget,
            ))
        }
        PhysicalPlan::HashGroupBy {
            input,
            group_columns,
            aggs,
        } => Box::new(HashGroupByOp::new(
            build_inner(input, ctx, budget)?,
            group_columns.clone(),
            aggs.clone(),
            budget,
        )),
        PhysicalPlan::PipelinedGroupBy {
            input,
            group_columns,
            aggs,
        } => Box::new(PipelinedGroupByOp::new(
            build_inner(input, ctx, budget)?,
            group_columns.clone(),
            aggs.clone(),
        )),
        PhysicalPlan::TwoPhaseGroupBy {
            input,
            group_columns,
            aggs,
        } => {
            let (partial, final_aggs, project) = two_phase_aggs(group_columns.len(), aggs)
                .ok_or_else(|| {
                    DbError::Plan("two-phase groupby with non-decomposable aggregate".into())
                })?;
            let child = build_inner(input, ctx, budget)?;
            let prepass = PrepassGroupByOp::new(
                child,
                group_columns.clone(),
                partial,
                crate::groupby::PREPASS_GROUPS,
            );
            let keys: Vec<usize> = (0..group_columns.len()).collect();
            let final_gb = HashGroupByOp::new(Box::new(prepass), keys, final_aggs, budget);
            Box::new(ProjectOp::new(Box::new(final_gb), project))
        }
        PhysicalPlan::ParallelGroupBy {
            input,
            group_columns,
            aggs,
            lanes,
        } => {
            let child = build_inner(input, ctx, budget)?;
            let group_columns = group_columns.clone();
            let aggs = aggs.clone();
            let gb_keys = group_columns.clone();
            Box::new(parallel_segmented(
                child,
                group_columns,
                *lanes,
                move |lane| {
                    Box::new(HashGroupByOp::new(
                        lane,
                        gb_keys.clone(),
                        aggs.clone(),
                        budget,
                    ))
                },
            ))
        }
        PhysicalPlan::Sort { input, keys } => Box::new(SortOp::new(
            build_inner(input, ctx, budget)?,
            keys.clone(),
            budget,
        )),
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => Box::new(LimitOp::new(
            build_inner(input, ctx, budget)?,
            *limit,
            *offset,
        )),
        PhysicalPlan::Analytic {
            input,
            partition_by,
            order_by,
            funcs,
            pre_sorted,
        } => Box::new(AnalyticOp::new(
            build_inner(input, ctx, budget)?,
            partition_by.clone(),
            order_by.clone(),
            funcs.clone(),
            *pre_sorted,
            budget,
        )),
        PhysicalPlan::Union { inputs } => {
            let children = inputs
                .iter()
                .map(|p| build_inner(p, ctx, budget))
                .collect::<DbResult<Vec<_>>>()?;
            Box::new(UnionOp::new(children))
        }
    })
}

/// Resolve one side of a [`PhysicalPlan::ParallelHashJoin`] — the morsel
/// framework scans projections directly, so the child must be a `Scan`.
fn parallel_scan_parts(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext,
) -> DbResult<(ParallelScanSpec, Vec<ScanMorsel>)> {
    let PhysicalPlan::Scan {
        projection,
        output_columns,
        predicate,
        partition_predicate,
        sip,
    } = plan
    else {
        return Err(DbError::Plan(
            "parallel hash join requires Scan inputs on both sides".into(),
        ));
    };
    let bindings: Vec<SipBinding> = sip
        .iter()
        .map(|(id, cols)| SipBinding {
            filter: ctx.sip(*id),
            key_columns: cols.clone(),
        })
        .collect();
    let snap = ctx
        .snapshots
        .get(projection)
        .ok_or_else(|| DbError::Plan(format!("no snapshot for projection {projection}")))?;
    let morsels = snap.clone().into_morsels();
    Ok((
        ParallelScanSpec {
            backend: ctx.backend.clone(),
            output_columns: output_columns.clone(),
            predicate: predicate.clone(),
            partition_predicate: partition_predicate.clone(),
            sip: bindings,
        },
        morsels,
    ))
}

/// Execute a plan to completion on one node, returning all rows.
pub fn execute_collect(plan: &PhysicalPlan, ctx: &mut ExecContext) -> DbResult<Vec<Row>> {
    let mut op = build_operator(plan, ctx)?;
    crate::operator::collect_rows(op.as_mut())
}

/// Execute and stream batches through a callback.
pub fn execute_foreach(
    plan: &PhysicalPlan,
    ctx: &mut ExecContext,
    mut f: impl FnMut(Batch) -> DbResult<()>,
) -> DbResult<()> {
    let mut op = build_operator(plan, ctx)?;
    while let Some(b) = op.next_batch()? {
        f(b)?;
    }
    Ok(())
}

/// Render an EXPLAIN tree (Figure 3 style).
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &PhysicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let line = match plan {
        PhysicalPlan::Scan {
            projection,
            output_columns,
            predicate,
            partition_predicate,
            sip,
        } => {
            let mut s = format!("Scan {projection} cols={output_columns:?}");
            if let Some(p) = predicate {
                s.push_str(&format!(" filter=({p})"));
            }
            if partition_predicate.is_some() {
                s.push_str(" [partition-pruned]");
            }
            if !sip.is_empty() {
                s.push_str(&format!(" [SIP x{}]", sip.len()));
            }
            s
        }
        PhysicalPlan::ParallelScan {
            projection,
            output_columns,
            predicate,
            stage,
            threads,
            sip,
            ..
        } => {
            let mut s = format!("ParallelScan {projection} cols={output_columns:?}");
            if let Some(p) = predicate {
                s.push_str(&format!(" filter=({p})"));
            }
            if !sip.is_empty() {
                s.push_str(&format!(" [SIP x{}]", sip.len()));
            }
            s.push_str(&match stage {
                ParallelStage::Collect => format!(" [morsels -> {threads} threads]"),
                ParallelStage::GroupBy { group_columns, .. } => format!(
                    " [morsels -> {threads} threads, partial GroupBy keys={group_columns:?}, merge barrier]"
                ),
                ParallelStage::Sort { keys } => format!(
                    " [morsels -> {threads} threads, sort runs ({} keys), k-way merge]",
                    keys.len()
                ),
            });
            s
        }
        PhysicalPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
        PhysicalPlan::Filter { predicate, .. } => format!("Filter ({predicate})"),
        PhysicalPlan::Project { exprs, .. } => {
            let list: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            format!("ExprEval [{}]", list.join(", "))
        }
        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            sip,
            ..
        } => format!(
            "HashJoin {} on {left_keys:?}={right_keys:?}{}",
            join_type.name(),
            if sip.is_some() { " [builds SIP]" } else { "" }
        ),
        PhysicalPlan::MergeJoin {
            join_type,
            left_keys,
            right_keys,
            ..
        } => format!(
            "MergeJoin {} on {left_keys:?}={right_keys:?}",
            join_type.name()
        ),
        PhysicalPlan::ParallelHashJoin {
            join_type,
            left_keys,
            right_keys,
            sip,
            probe_threads,
            build_threads,
            ..
        } => format!(
            "ParallelHashJoin {} on {left_keys:?}={right_keys:?} \
             [build: {build_threads} workers/{build_threads} partitions, \
             probe: {probe_threads} workers]{}",
            join_type.name(),
            if sip.is_some() { " [builds SIP]" } else { "" }
        ),
        PhysicalPlan::HashGroupBy {
            group_columns,
            aggs,
            ..
        } => format!(
            "GroupByHash keys={group_columns:?} aggs=[{}]",
            aggs.iter()
                .map(|a| a.func.name())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        PhysicalPlan::PipelinedGroupBy { group_columns, .. } => {
            format!("GroupByPipelined keys={group_columns:?} (sorted input, encoded-aware)")
        }
        PhysicalPlan::TwoPhaseGroupBy { group_columns, .. } => {
            format!("GroupByPrepass+Final keys={group_columns:?}")
        }
        PhysicalPlan::ParallelGroupBy {
            group_columns,
            lanes,
            ..
        } => format!(
            "ParallelUnion -> {lanes}x GroupByHash keys={group_columns:?} (StorageUnion resegments)"
        ),
        PhysicalPlan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
        PhysicalPlan::Limit { limit, offset, .. } => {
            format!("Limit {limit} offset {offset}")
        }
        PhysicalPlan::Analytic { funcs, .. } => format!(
            "Analytic [{}]",
            funcs
                .iter()
                .map(WindowFunc::name)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        PhysicalPlan::Union { inputs } => format!("StorageUnion ({} inputs)", inputs.len()),
    };
    out.push_str(&pad);
    out.push_str(&line);
    out.push('\n');
    match plan {
        PhysicalPlan::Scan { .. }
        | PhysicalPlan::ParallelScan { .. }
        | PhysicalPlan::Values { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashGroupBy { input, .. }
        | PhysicalPlan::PipelinedGroupBy { input, .. }
        | PhysicalPlan::TwoPhaseGroupBy { input, .. }
        | PhysicalPlan::ParallelGroupBy { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Analytic { input, .. } => render(input, depth + 1, out),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. }
        | PhysicalPlan::ParallelHashJoin { left, right, .. } => {
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        PhysicalPlan::Union { inputs } => {
            for i in inputs {
                render(i, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{BinOp, ColumnDef, DataType, Epoch, TableSchema, Value};

    fn ctx_with_store(rows: Vec<Row>) -> ExecContext {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let mut store = ProjectionStore::new(def, None, 1, backend.clone());
        store.insert_direct_ros(rows, Epoch(1)).unwrap();
        let mut ctx = ExecContext::new(backend);
        ctx.snapshots
            .insert("t_super".into(), store.scan_snapshot(Epoch(1)));
        ctx
    }

    fn scan_plan(pred: Option<Expr>) -> PhysicalPlan {
        PhysicalPlan::Scan {
            projection: "t_super".into(),
            output_columns: vec![0, 1],
            predicate: pred,
            partition_predicate: None,
            sip: vec![],
        }
    }

    #[test]
    fn end_to_end_scan_groupby_sort() {
        let rows: Vec<Row> = (0..1000)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 4)])
            .collect();
        let mut ctx = ctx_with_store(rows);
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::HashGroupBy {
                input: Box::new(scan_plan(None)),
                group_columns: vec![1],
                aggs: vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
            }),
            keys: vec![SortKey::asc(0)],
        };
        let got = execute_collect(&plan, &mut ctx).unwrap();
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|r| r[1] == Value::Integer(250)));
    }

    #[test]
    fn typed_pipeline_performs_zero_row_pivots() {
        // Acceptance gate for the columnar operator protocol: a typed
        // scan → Filter (disjunctive) → ExprEval (arithmetic + CASE) →
        // GroupBy pipeline must run without a single `rows()`/`into_rows()`
        // pivot — the row pivot happens only at the Database result edge.
        let rows: Vec<Row> = (0..4000)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 10)])
            .collect();
        let mut ctx = ctx_with_store(rows);
        let plan = PhysicalPlan::HashGroupBy {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(scan_plan(None)),
                    predicate: Expr::or(
                        Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(2000)),
                        Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(3500)),
                    ),
                }),
                exprs: vec![
                    Expr::col(1, "g"),
                    Expr::case(
                        vec![(
                            Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(3500)),
                            Expr::binary(BinOp::Mul, Expr::col(0, "a"), Expr::int(2)),
                        )],
                        Some(Expr::col(0, "a")),
                    ),
                ],
            }),
            group_columns: vec![0],
            aggs: vec![
                AggCall::new(AggFunc::CountStar, 0, "cnt"),
                AggCall::new(AggFunc::Sum, 1, "sum"),
            ],
        };
        let mut op = build_operator(&plan, &mut ctx).unwrap();
        let before = crate::batch::row_pivot_count();
        let mut groups = 0usize;
        let mut batches = Vec::new();
        while let Some(b) = op.next_batch().unwrap() {
            groups += b.len();
            batches.push(b);
        }
        assert_eq!(
            crate::batch::row_pivot_count() - before,
            0,
            "pipeline must not pivot rows"
        );
        assert_eq!(groups, 10);
        // The facade edge is the one and only pivot.
        let rows: Vec<Row> = batches.into_iter().flat_map(Batch::into_rows).collect();
        assert!(crate::batch::row_pivot_count() > before);
        let count: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(count, 2500, "2000 + 500 survivors");
        let total: i64 = rows.iter().map(|r| r[2].as_i64().unwrap()).sum();
        // Survivors: 0..2000 (value a) and 3500..4000 (value 2a).
        let expect: i64 = (0..2000).sum::<i64>() + (3500..4000).map(|a| 2 * a).sum::<i64>();
        assert_eq!(total, expect);
    }

    #[test]
    fn sip_wired_between_join_and_scan() {
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Value::Integer(i), Value::Integer(i)])
            .collect();
        let mut ctx = ctx_with_store(rows);
        // Join probe side scans t_super with SIP id 0; build side is a
        // 3-row Values.
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Scan {
                projection: "t_super".into(),
                output_columns: vec![0, 1],
                predicate: None,
                partition_predicate: None,
                sip: vec![(0, vec![0])],
            }),
            right: Box::new(PhysicalPlan::Values {
                rows: vec![
                    vec![Value::Integer(5)],
                    vec![Value::Integer(50)],
                    vec![Value::Integer(500)],
                ],
                arity: 1,
            }),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
            sip: Some(0),
        };
        let got = execute_collect(&plan, &mut ctx).unwrap();
        assert_eq!(got.len(), 2, "keys 5 and 50 exist, 500 does not");
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::TwoPhaseGroupBy {
                input: Box::new(scan_plan(Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(0, "a"),
                    Expr::int(10),
                )))),
                group_columns: vec![1],
                aggs: vec![AggCall::new(AggFunc::Sum, 0, "s")],
            }),
            limit: 5,
            offset: 0,
        };
        let text = explain(&plan);
        assert!(text.contains("Limit 5"));
        assert!(text.contains("GroupByPrepass+Final"));
        assert!(text.contains("Scan t_super"));
        assert!(text.contains("filter=((a > 10))"));
        // Indentation reflects depth.
        assert!(text.lines().nth(2).unwrap().starts_with("    "));
    }

    #[test]
    fn parallel_groupby_plan_matches_serial() {
        let rows: Vec<Row> = (0..5000)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 7)])
            .collect();
        let serial = PhysicalPlan::HashGroupBy {
            input: Box::new(scan_plan(None)),
            group_columns: vec![1],
            aggs: vec![AggCall::new(AggFunc::Sum, 0, "s")],
        };
        let parallel = PhysicalPlan::ParallelGroupBy {
            input: Box::new(scan_plan(None)),
            group_columns: vec![1],
            aggs: vec![AggCall::new(AggFunc::Sum, 0, "s")],
            lanes: 4,
        };
        let mut ctx1 = ctx_with_store(rows.clone());
        let mut s = execute_collect(&serial, &mut ctx1).unwrap();
        let mut ctx2 = ctx_with_store(rows);
        let mut p = execute_collect(&parallel, &mut ctx2).unwrap();
        s.sort();
        p.sort();
        assert_eq!(s, p);
    }

    #[test]
    fn missing_projection_is_plan_error() {
        let mut ctx = ExecContext::new(Arc::new(MemBackend::new()));
        let err = execute_collect(&scan_plan(None), &mut ctx);
        assert!(matches!(err, Err(DbError::Plan(_))));
    }

    /// Multi-container self-join fixture: rows land in several ROS
    /// containers so the parallel join has real morsels on both sides.
    fn join_ctx(rows: i64, chunks: usize) -> ExecContext {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let mut store = ProjectionStore::new(def, None, 1, backend.clone());
        let all: Vec<Row> = (0..rows)
            .map(|i| vec![Value::Integer(i % 50), Value::Integer(i)])
            .collect();
        for chunk in all.chunks((rows as usize).div_ceil(chunks)) {
            store.insert_direct_ros(chunk.to_vec(), Epoch(1)).unwrap();
        }
        let mut ctx = ExecContext::new(backend);
        ctx.snapshots
            .insert("t_super".into(), store.scan_snapshot(Epoch(1)));
        ctx
    }

    #[test]
    fn parallel_hash_join_plan_matches_serial_with_sip() {
        let probe_scan = PhysicalPlan::Scan {
            projection: "t_super".into(),
            output_columns: vec![0, 1],
            predicate: None,
            partition_predicate: None,
            sip: vec![(0, vec![0])],
        };
        let build_scan = PhysicalPlan::Scan {
            projection: "t_super".into(),
            output_columns: vec![0, 1],
            predicate: Some(Expr::binary(BinOp::Gt, Expr::col(1, "b"), Expr::int(3970))),
            partition_predicate: None,
            sip: vec![],
        };
        let serial = PhysicalPlan::HashJoin {
            left: Box::new(probe_scan.clone()),
            right: Box::new(build_scan.clone()),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
            sip: Some(0),
        };
        let parallel = PhysicalPlan::ParallelHashJoin {
            left: Box::new(probe_scan),
            right: Box::new(build_scan),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
            sip: Some(0),
            probe_threads: 4,
            build_threads: 2,
        };
        let expected = execute_collect(&serial, &mut join_ctx(4000, 4)).unwrap();
        let got = execute_collect(&parallel, &mut join_ctx(4000, 4)).unwrap();
        assert_eq!(got, expected);
        let text = explain(&parallel);
        assert!(text.contains("ParallelHashJoin INNER"), "{text}");
        assert!(text.contains("[builds SIP]"), "{text}");
        assert!(text.contains("probe: 4 workers"), "{text}");
        assert!(text.contains("[SIP x1]"), "{text}");
    }

    #[test]
    fn parallel_hash_join_rejects_non_scan_children() {
        let plan = PhysicalPlan::ParallelHashJoin {
            left: Box::new(PhysicalPlan::Values {
                rows: vec![vec![Value::Integer(1)]],
                arity: 1,
            }),
            right: Box::new(scan_plan(None)),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
            sip: None,
            probe_threads: 2,
            build_threads: 2,
        };
        let err = execute_collect(&plan, &mut join_ctx(100, 1));
        assert!(matches!(err, Err(DbError::Plan(_))), "{err:?}");
    }
}
