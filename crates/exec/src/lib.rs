//! `vdb-exec` — the Vertica Execution Engine (§6.1 of the paper).
//!
//! A multi-threaded, pipelined, vectorized **pull-model** engine: operators
//! implement [`operator::Operator::next_batch`] and request blocks of rows
//! from upstream. The operator set matches §6.1's enumeration:
//!
//! | Paper operator | Module |
//! |---|---|
//! | Scan (predicate pushdown, SMA/partition/block pruning, SIP) | [`scan`] |
//! | GroupBy (hash, pipelined one-pass, L1-sized prepass) | [`groupby`] |
//! | Join (hash + merge, externalizing, all flavors, SIP build) | [`join`] |
//! | ExprEval (vectorized expression engine + Filter/Project) | [`expr_vec`], [`filter`] |
//! | Sort (externalizing) + Limit | [`sort`] |
//! | Analytic (SQL-99 windowed aggregates) | [`analytic`] |
//! | Send/Recv (segment-aware, sortedness-retaining) | [`exchange`] |
//! | StorageUnion / ParallelUnion (intra-node parallelism) | [`exchange`] |
//! | Morsel-driven parallel scan/aggregate/sort over ROS containers | [`parallel`] |
//! | Morsel-parallel partitioned hash join (typed probe, SIP at barrier) | [`parallel_join`] |
//!
//! Operators run "directly on encoded data" (§6.1): the scan decodes
//! storage blocks into [`vector::TypedVector`]s (native buffers + validity
//! bitmaps, dictionary-coded strings) and [`vector::RleVector`]s
//! (unexpanded runs); filters, SIP and delete-vector visibility mark
//! survivors in a [`vector::SelectionVector`] instead of materializing;
//! scalar expressions evaluate through the vectorized engine
//! ([`expr_vec`]: native kernels, constant folding, per-run and
//! per-dictionary-code short-circuits, CASE/boolean logic via domain
//! combination); joins probe keys through column accessors and gather
//! their output columns; and aggregation consumes runs and native buffers
//! without per-row `Value` construction. The row pivot
//! ([`batch::Batch::rows`] / [`batch::Batch::into_rows`]) happens at the
//! end of a finished pipeline ([`operator::collect_rows`], the `Database`
//! result facade) — a typed scan→filter→project→group-by plan performs
//! zero pivots, observable via [`batch::row_pivot_count`]. Every stateful
//! operator takes a [`memory::MemoryBudget`] and spills to the storage
//! backend when it is exceeded (§6.1: "all operators are capable of
//! handling arbitrary sized inputs ... by externalizing their buffers to
//! disk").

#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregate;
pub mod analytic;
pub mod batch;
pub mod exchange;
pub mod expr_vec;
pub mod filter;
pub mod groupby;
pub mod join;
pub mod memory;
pub mod operator;
pub mod parallel;
pub mod parallel_join;
pub mod plan;
pub mod pool;
pub mod scan;
pub mod sip;
pub mod sort;
pub mod vector;

pub use aggregate::{AggCall, AggFunc};
pub use batch::{row_pivot_count, Batch, ColumnSlice};
pub use expr_vec::VectorizedExpr;
pub use memory::MemoryBudget;
pub use operator::{collect_rows, BoxedOperator, Operator};
pub use parallel::{ExecOptions, ParallelStage};
pub use parallel_join::{ParallelHashJoinOp, ParallelJoinSpec};
pub use plan::{build_operator, ExecContext, JoinType, PhysicalPlan};
pub use sip::SipFilter;
pub use vector::{Bitmap, RleVector, SelectionVector, TypedVector, VectorData};
