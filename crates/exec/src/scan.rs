//! The Scan operator (§6.1 #1).
//!
//! "Reads data from a particular projection's ROS containers, and applies
//! predicates in the most advantageous manner possible." Advantageous here
//! means, in order:
//!
//! 1. **Partition pruning** — skip containers whose `PARTITION BY` key
//!    cannot satisfy the predicate (§3.5).
//! 2. **Container pruning** — skip containers whose column min/max (from
//!    the position index) cannot pass, the small-materialized-aggregates
//!    technique the paper cites as \[22\].
//! 3. **Block pruning** — the same test per 1024-row block.
//! 4. **SIP filters** — membership tests against a join's hash table (§6.1).
//! 5. Residual predicate evaluation, vectorized per batch.
//!
//! Blocks whose columns survive untouched keep RLE runs unexpanded, feeding
//! the encoded-execution path of pipelined GroupBy.

use crate::batch::{Batch, ColumnSlice};
use crate::operator::Operator;
use crate::sip::SipFilter;
use crate::vector::{SelectionVector, VectorData};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use vdb_encoding::ColumnReader;
use vdb_storage::store::{ScanContainer, VisibleSet};
use vdb_storage::StorageBackend;
use vdb_types::{BinOp, DbResult, Expr, Row, Value};

/// A SIP filter bound to this scan: which output columns form the join key.
#[derive(Clone)]
pub struct SipBinding {
    pub filter: Arc<SipFilter>,
    /// Indexes into the scan's *output* columns.
    pub key_columns: Vec<usize>,
}

/// Counters exposed for EXPLAIN ANALYZE-style reporting and the pruning /
/// SIP benchmarks.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanStats {
    pub containers_total: usize,
    pub containers_pruned_partition: usize,
    pub containers_pruned_minmax: usize,
    pub blocks_total: usize,
    pub blocks_pruned: usize,
    pub rows_scanned: u64,
    pub rows_after_predicate: u64,
    pub rows_sip_filtered: u64,
    /// Row-decodes skipped by selection-pushdown decode, summed across
    /// columns: visibility masks and sorted-column bounds restrict what
    /// gets *decoded*, not just which blocks are read.
    pub rows_decode_skipped: u64,
}

/// Inclusive bounds extracted from predicate conjuncts, used for SMA
/// pruning: `low ≤ column ≤ high`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBounds {
    pub column: usize,
    pub low: Option<Value>,
    pub high: Option<Value>,
}

/// Extract per-column bounds from the conjuncts of `pred` (column indexes
/// are in the predicate's own frame).
pub fn extract_bounds(pred: &Expr) -> Vec<ColumnBounds> {
    let mut out: Vec<ColumnBounds> = Vec::new();
    let mut add = |col: usize, low: Option<Value>, high: Option<Value>| match out
        .iter_mut()
        .find(|b| b.column == col)
    {
        Some(b) => {
            if let Some(l) = low {
                b.low = Some(match b.low.take() {
                    Some(prev) => prev.max(l),
                    None => l,
                });
            }
            if let Some(h) = high {
                b.high = Some(match b.high.take() {
                    Some(prev) => prev.min(h),
                    None => h,
                });
            }
        }
        None => out.push(ColumnBounds {
            column: col,
            low,
            high,
        }),
    };
    for conj in pred.clone().split_conjuncts() {
        match &conj {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { index, .. }, Expr::Literal(v)) => (*index, v.clone(), *op),
                    (Expr::Literal(v), Expr::Column { index, .. }) => {
                        // Flip: lit op col ≡ col flipped-op lit.
                        let flipped = match *op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => other,
                        };
                        (*index, v.clone(), flipped)
                    }
                    _ => continue,
                };
                if lit.is_null() {
                    continue;
                }
                match op {
                    BinOp::Eq => add(col, Some(lit.clone()), Some(lit)),
                    BinOp::Lt | BinOp::Le => add(col, None, Some(lit)),
                    BinOp::Gt | BinOp::Ge => add(col, Some(lit), None),
                    _ => {}
                }
            }
            Expr::Between { input, low, high } => {
                if let (Expr::Column { index, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                    (input.as_ref(), low.as_ref(), high.as_ref())
                {
                    if !lo.is_null() && !hi.is_null() {
                        add(*index, Some(lo.clone()), Some(hi.clone()));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Refine candidate positions with a bounded column's decoded values:
/// exact per-row application of `low ≤ col ≤ high` (typed columns compare
/// natively, RLE once per run). The bounds are necessary conditions of the
/// scan predicate, so dropping failures early is sound; an unsupported
/// column/literal pairing leaves the candidates untouched.
fn refine_by_bounds(col: &ColumnSlice, b: &ColumnBounds, mut cands: Vec<u32>) -> Vec<u32> {
    if let Some(lo) = &b.low {
        if let Some(kept) = crate::filter::filter_cmp(col, BinOp::Ge, lo, cands.clone()) {
            cands = kept;
        }
    }
    if let Some(hi) = &b.high {
        if let Some(kept) = crate::filter::filter_cmp(col, BinOp::Le, hi, cands.clone()) {
            cands = kept;
        }
    }
    cands
}

/// A `col IS [NOT] NULL` conjunct, used for null-count pruning: the block
/// metadata's null count tells whether any row can satisfy the test
/// without decoding the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullTest {
    pub column: usize,
    pub negated: bool,
}

/// Extract `col IS [NOT] NULL` conjuncts from `pred` (column indexes are
/// in the predicate's own frame).
pub fn extract_null_tests(pred: &Expr) -> Vec<NullTest> {
    let mut out = Vec::new();
    for conj in pred.clone().split_conjuncts() {
        if let Expr::IsNull { input, negated } = &conj {
            if let Expr::Column { index, .. } = input.as_ref() {
                out.push(NullTest {
                    column: *index,
                    negated: *negated,
                });
            }
        }
    }
    out
}

/// The Scan operator over one projection's snapshot on one node.
pub struct ScanOperator {
    /// Default backend (containers carry their own, so cross-node container
    /// mixes — buddy reads, broadcast gathers — read from the right node).
    #[allow(dead_code)]
    backend: Arc<dyn StorageBackend>,
    /// Remaining containers to scan.
    containers: VecDeque<ScanContainer>,
    /// Projection column indexes this scan outputs, in output order.
    output_columns: Vec<usize>,
    /// Residual predicate over the *output* columns.
    predicate: Option<Expr>,
    /// Bounds for pruning, with `column` = output column index.
    bounds: Vec<ColumnBounds>,
    /// `IS [NOT] NULL` conjuncts for null-count pruning, same frame.
    null_tests: Vec<NullTest>,
    /// Predicate over the 1-column row `[partition_key]`.
    partition_predicate: Option<Expr>,
    sip: Vec<SipBinding>,
    /// Visible WOS rows (projection-shaped), drained after containers.
    wos_rows: Option<Vec<Row>>,
    /// In-flight container state: decoded column readers per block.
    current: Option<ContainerCursor>,
    stats: Arc<Mutex<ScanStats>>,
    done: bool,
}

struct ContainerCursor {
    /// Raw column bytes + cloned index, per output column.
    columns: Vec<(Vec<u8>, vdb_encoding::PositionIndex)>,
    visible: VisibleSet,
    num_blocks: usize,
    next_block: usize,
}

impl ScanOperator {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        containers: Vec<ScanContainer>,
        wos_rows: Vec<Row>,
        output_columns: Vec<usize>,
        predicate: Option<Expr>,
        partition_predicate: Option<Expr>,
        sip: Vec<SipBinding>,
    ) -> ScanOperator {
        Self::with_stats(
            backend,
            containers,
            wos_rows,
            output_columns,
            predicate,
            partition_predicate,
            sip,
            Arc::new(Mutex::new(ScanStats::default())),
        )
    }

    /// Like [`ScanOperator::new`] but folding counters into an external
    /// [`ScanStats`] handle — morsel-parallel scans share one handle across
    /// every worker so pruning/SIP telemetry stays whole-scan accurate.
    #[allow(clippy::too_many_arguments)]
    pub fn with_stats(
        backend: Arc<dyn StorageBackend>,
        containers: Vec<ScanContainer>,
        wos_rows: Vec<Row>,
        output_columns: Vec<usize>,
        predicate: Option<Expr>,
        partition_predicate: Option<Expr>,
        sip: Vec<SipBinding>,
        stats: Arc<Mutex<ScanStats>>,
    ) -> ScanOperator {
        let bounds = predicate.as_ref().map(extract_bounds).unwrap_or_default();
        let null_tests = predicate
            .as_ref()
            .map(extract_null_tests)
            .unwrap_or_default();
        stats.lock().containers_total += containers.len();
        ScanOperator {
            backend,
            containers: containers.into(),
            output_columns,
            predicate,
            bounds,
            null_tests,
            partition_predicate,
            sip,
            wos_rows: Some(wos_rows),
            current: None,
            stats,
            done: false,
        }
    }

    /// Shared stats handle (inspect after draining).
    pub fn stats(&self) -> Arc<Mutex<ScanStats>> {
        self.stats.clone()
    }

    /// Advance to the next unpruned container, building its cursor.
    fn open_next_container(&mut self) -> DbResult<bool> {
        while let Some(sc) = self.containers.pop_front() {
            // 1. Partition pruning.
            if let (Some(pred), Some(key)) =
                (&self.partition_predicate, &sc.container.partition_key)
            {
                if !pred.matches(std::slice::from_ref(key))? {
                    self.stats.lock().containers_pruned_partition += 1;
                    continue;
                }
            }
            // 2. Container-level min/max pruning.
            let mut pruned = false;
            for b in &self.bounds {
                let proj_col = self.output_columns[b.column];
                if let Some((min, max)) = sc.container.column_min_max(proj_col) {
                    if b.low.as_ref().is_some_and(|lo| &max < lo)
                        || b.high.as_ref().is_some_and(|hi| &min > hi)
                    {
                        pruned = true;
                        break;
                    }
                }
            }
            // 2b. Null-count pruning: an `IS [NOT] NULL` conjunct no block
            // can satisfy prunes the whole container.
            if !pruned {
                for t in &self.null_tests {
                    let proj_col = self.output_columns[t.column];
                    let possible = sc.container.indexes[proj_col].blocks.iter().any(|b| {
                        if t.negated {
                            b.might_contain_non_null()
                        } else {
                            b.might_contain_null()
                        }
                    });
                    if !possible {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned {
                self.stats.lock().containers_pruned_minmax += 1;
                continue;
            }
            // Visibility (epoch + delete vector).
            let visible = sc.visible(sc.backend.as_ref())?;
            if matches!(visible, VisibleSet::None) {
                continue;
            }
            // Load needed column bytes from the container's own backend.
            let mut columns = Vec::with_capacity(self.output_columns.len());
            for &proj_col in &self.output_columns {
                let bytes = sc
                    .container
                    .read_column_bytes(sc.backend.as_ref(), proj_col)?;
                columns.push((bytes, sc.container.indexes[proj_col].clone()));
            }
            // Blocks are row-aligned across columns, so the container-level
            // count (the intra-morsel work granularity) applies to all.
            let num_blocks = if columns.is_empty() {
                0
            } else {
                sc.container.block_count()
            };
            self.stats.lock().blocks_total += num_blocks;
            self.current = Some(ContainerCursor {
                columns,
                visible,
                num_blocks,
                next_block: 0,
            });
            return Ok(true);
        }
        Ok(false)
    }

    /// Produce the batch for the next surviving block of the current
    /// container; `None` when the container is exhausted.
    fn next_block_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            let Some(cur) = self.current.as_mut() else {
                return Ok(None);
            };
            if cur.next_block >= cur.num_blocks {
                self.current = None;
                return Ok(None);
            }
            let bi = cur.next_block;
            cur.next_block += 1;
            // 3. Block-level pruning on bounded columns and null tests.
            let mut skip = false;
            for b in &self.bounds {
                let meta = &cur.columns[b.column].1.blocks[bi];
                if !meta.might_contain_range(b.low.as_ref(), b.high.as_ref()) {
                    skip = true;
                    break;
                }
            }
            for t in &self.null_tests {
                if skip {
                    break;
                }
                let meta = &cur.columns[t.column].1.blocks[bi];
                skip = if t.negated {
                    !meta.might_contain_non_null()
                } else {
                    !meta.might_contain_null()
                };
            }
            if skip {
                self.stats.lock().blocks_pruned += 1;
                continue;
            }
            let meta0 = &cur.columns[0].1.blocks[bi];
            let block_start = meta0.start_position;
            let block_rows = meta0.count as usize;
            // Visibility (epoch + delete vector) becomes a selection
            // vector *before* decode: invisible rows restrict what gets
            // decoded, not just what gets emitted.
            let mut sel: Option<Vec<u32>> = if matches!(cur.visible, VisibleSet::All) {
                None
            } else {
                let visible: Vec<u32> = (0..block_rows as u32)
                    .filter(|&i| cur.visible.is_visible(block_start + u64::from(i)))
                    .collect();
                if visible.len() < block_rows {
                    Some(visible)
                } else {
                    None
                }
            };
            // Decode bounded columns first and refine the selection with
            // their exact bounds, so rows the bounds rule out are never
            // decoded in the remaining columns. Then decode the rest under
            // the final selection — straight into typed vectors (native
            // buffers) or RLE vectors; no per-row `Value` construction for
            // specialized encodings.
            let ncols = cur.columns.len();
            let mut slices: Vec<Option<ColumnSlice>> = (0..ncols).map(|_| None).collect();
            let mut skipped = 0u64;
            for b in &self.bounds {
                if slices[b.column].is_some() {
                    continue;
                }
                let (bytes, index) = &cur.columns[b.column];
                let reader = ColumnReader::new(bytes, index);
                let (native, sk) = reader.read_block_native_selected(bi, sel.as_deref())?;
                skipped += sk;
                let slice = ColumnSlice::from_native(native);
                let cands: Vec<u32> = match &sel {
                    Some(s) => s.clone(),
                    None => (0..block_rows as u32).collect(),
                };
                let refined = refine_by_bounds(&slice, b, cands);
                sel = if refined.len() < block_rows {
                    Some(refined)
                } else {
                    None
                };
                slices[b.column] = Some(slice);
                if sel.as_ref().is_some_and(|s| s.is_empty()) {
                    break;
                }
            }
            if sel.as_ref().is_some_and(|s| s.is_empty()) {
                // Bounds eliminated every row: the remaining columns are
                // never decoded at all.
                let undecoded = slices.iter().filter(|s| s.is_none()).count() as u64;
                let mut st = self.stats.lock();
                st.rows_scanned += block_rows as u64;
                st.rows_decode_skipped += skipped + undecoded * block_rows as u64;
                continue;
            }
            for (ci, slot) in slices.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let (bytes, index) = &cur.columns[ci];
                let reader = ColumnReader::new(bytes, index);
                let (native, sk) = reader.read_block_native_selected(bi, sel.as_deref())?;
                skipped += sk;
                *slot = Some(ColumnSlice::from_native(native));
            }
            {
                let mut st = self.stats.lock();
                st.rows_scanned += block_rows as u64;
                st.rows_decode_skipped += skipped;
            }
            let mut batch = Batch::new(slices.into_iter().map(Option::unwrap).collect());
            if let Some(visible) = sel {
                batch = batch.with_selection(SelectionVector::new(visible));
            }
            let batch = self.apply_row_filters(batch)?;
            if batch.is_empty() {
                continue;
            }
            return Ok(Some(batch));
        }
    }

    /// 4+5: SIP filters then residual predicate. Both stages refine the
    /// batch's selection vector — survivors are marked, not copied.
    fn apply_row_filters(&self, batch: Batch) -> DbResult<Batch> {
        let mut batch = batch;
        for binding in &self.sip {
            if !binding.filter.is_ready() || batch.is_empty() {
                continue;
            }
            let before = batch.len() as u64;
            let sel = Self::sip_selection(binding, &batch);
            let dropped = before - sel.len() as u64;
            if dropped > 0 {
                self.stats.lock().rows_sip_filtered += dropped;
                batch = batch.with_selection(sel);
            }
        }
        if let Some(pred) = &self.predicate {
            if !batch.is_empty() {
                // Vectorized evaluation over typed/RLE columns; row-wise
                // fallback for predicates outside the vectorizable shape.
                match crate::filter::eval_predicate_selection(&batch, pred) {
                    Some(sel) => {
                        if sel.len() < batch.len() {
                            batch = batch.with_selection(sel);
                        }
                    }
                    None => {
                        let rows = batch.rows();
                        let mut mask = Vec::with_capacity(rows.len());
                        let mut all = true;
                        for row in &rows {
                            let keep = pred.matches(row)?;
                            all &= keep;
                            mask.push(keep);
                        }
                        if !all {
                            batch = batch.into_filtered(&mask);
                        }
                    }
                }
            }
        }
        self.stats.lock().rows_after_predicate += batch.len() as u64;
        Ok(batch)
    }

    /// Surviving physical positions after one SIP filter. Typed key
    /// columns hash natively (no `Value` construction); dictionary-coded
    /// keys probe once per distinct value; RLE keys probe once per run.
    fn sip_selection(binding: &SipBinding, batch: &Batch) -> SelectionVector {
        let cands: Vec<u32> = match batch.selection() {
            Some(sel) => sel.indices().to_vec(),
            None => (0..batch.physical_len() as u32).collect(),
        };
        let filter = binding.filter.as_ref();
        if let [only] = binding.key_columns.as_slice() {
            let kept: Vec<u32> = match &batch.columns[*only] {
                ColumnSlice::Plain(values) => cands
                    .into_iter()
                    .filter(|&i| filter.might_contain_one(&values[i as usize]))
                    .collect(),
                ColumnSlice::Rle(rv) => {
                    crate::filter::retain_by_run(rv, cands, |v| filter.might_contain_one(v))
                }
                ColumnSlice::Typed(tv) => {
                    let null_ok = || filter.might_contain_one_hash(Value::hash64_null());
                    match tv.data() {
                        VectorData::Int64(xs) | VectorData::Timestamp(xs) => cands
                            .into_iter()
                            .filter(|&i| {
                                let i = i as usize;
                                if tv.is_valid(i) {
                                    filter.might_contain_one_hash(Value::hash64_of_i64(xs[i]))
                                } else {
                                    null_ok()
                                }
                            })
                            .collect(),
                        VectorData::Float64(xs) => cands
                            .into_iter()
                            .filter(|&i| {
                                let i = i as usize;
                                if tv.is_valid(i) {
                                    filter.might_contain_one_hash(Value::hash64_of_f64(xs[i]))
                                } else {
                                    null_ok()
                                }
                            })
                            .collect(),
                        VectorData::Bool(bits) => cands
                            .into_iter()
                            .filter(|&i| {
                                let i = i as usize;
                                if tv.is_valid(i) {
                                    filter.might_contain_one_hash(Value::hash64_of_i64(i64::from(
                                        bits.get(i),
                                    )))
                                } else {
                                    null_ok()
                                }
                            })
                            .collect(),
                        VectorData::Dict { dict, codes } => {
                            // One membership probe per *distinct* string.
                            let keep: Vec<bool> = dict
                                .entries()
                                .iter()
                                .map(|s| filter.might_contain_one_hash(Value::hash64_of_str(s)))
                                .collect();
                            cands
                                .into_iter()
                                .filter(|&i| {
                                    let i = i as usize;
                                    if tv.is_valid(i) {
                                        keep[codes[i] as usize]
                                    } else {
                                        null_ok()
                                    }
                                })
                                .collect()
                        }
                    }
                }
            };
            return SelectionVector::new(kept);
        }
        // Multi-column keys: gather per candidate (cold path).
        let kept: Vec<u32> = cands
            .into_iter()
            .filter(|&i| {
                let key: Vec<Value> = binding
                    .key_columns
                    .iter()
                    .map(|&c| batch.columns[c].value_at(i as usize))
                    .collect();
                let refs: Vec<&Value> = key.iter().collect();
                filter.might_contain(&refs)
            })
            .collect();
        SelectionVector::new(kept)
    }

    /// Project + filter the WOS rows.
    fn wos_batch(&mut self) -> DbResult<Option<Batch>> {
        let Some(rows) = self.wos_rows.take() else {
            return Ok(None);
        };
        if rows.is_empty() {
            return Ok(None);
        }
        self.stats.lock().rows_scanned += rows.len() as u64;
        let projected: Vec<Row> = rows
            .into_iter()
            .map(|r| self.output_columns.iter().map(|&c| r[c].clone()).collect())
            .collect();
        let batch = self.apply_row_filters(Batch::from_rows(projected))?;
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

impl Operator for ScanOperator {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        loop {
            if self.current.is_some() {
                if let Some(batch) = self.next_block_batch()? {
                    return Ok(Some(batch));
                }
                continue;
            }
            if self.open_next_container()? {
                continue;
            }
            // Containers exhausted: WOS tail.
            match self.wos_batch()? {
                Some(batch) => return Ok(Some(batch)),
                None => {
                    if self.wos_rows.is_none() {
                        self.done = true;
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        match &self.predicate {
            Some(p) => format!("Scan(filter: {p})"),
            None => "Scan".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_rows;
    use std::sync::Arc;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{ColumnDef, DataType, Epoch, TableSchema};

    fn make_store(rows: Vec<Row>) -> ProjectionStore {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut s = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        s.insert_direct_ros(rows, Epoch(1)).unwrap();
        s
    }

    fn scan_of(store: &ProjectionStore, pred: Option<Expr>) -> ScanOperator {
        let snap = store.scan_snapshot(Epoch(1));
        ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            pred,
            None,
            vec![],
        )
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 10)])
            .collect()
    }

    #[test]
    fn full_scan_returns_everything() {
        let store = make_store(rows(3000));
        let mut scan = scan_of(&store, None);
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn predicate_filters_rows() {
        let store = make_store(rows(3000));
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(2995));
        let mut scan = scan_of(&store, Some(pred));
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn block_pruning_skips_sorted_ranges() {
        // 3000 sorted rows = 3 blocks of 1024ish; a >= 2995 predicate must
        // prune the first two blocks.
        let store = make_store(rows(3000));
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(2995));
        let mut scan = scan_of(&store, Some(pred));
        let stats = scan.stats();
        collect_rows(&mut scan).unwrap();
        let s = stats.lock().clone();
        assert!(s.blocks_pruned >= 2, "pruned {} blocks", s.blocks_pruned);
        assert!(s.rows_scanned < 3000, "scanned {}", s.rows_scanned);
    }

    #[test]
    fn selection_pushdown_skips_decode_of_unbounded_columns() {
        // `a BETWEEN 2100 AND 2150` survives only in the last block; the
        // bound column decodes first, its exact bounds shrink the
        // selection, and column b's decode stops at the last survivor.
        let store = make_store(rows(3000));
        let pred = Expr::Between {
            input: Box::new(Expr::col(0, "a")),
            low: Box::new(Expr::int(2100)),
            high: Box::new(Expr::int(2150)),
        };
        let mut scan = scan_of(&store, Some(pred));
        let stats = scan.stats();
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 51);
        let s = stats.lock().clone();
        assert!(s.blocks_pruned >= 2, "pruned {} blocks", s.blocks_pruned);
        assert!(
            s.rows_decode_skipped > 500,
            "decode-skipped {} rows",
            s.rows_decode_skipped
        );
    }

    #[test]
    fn null_count_prunes_is_null_scans() {
        // No NULLs anywhere: an IS NULL predicate prunes every container
        // from its null counts alone — nothing is decoded.
        let store = make_store(rows(3000));
        let pred = Expr::is_null(Expr::col(1, "b"), false);
        let mut scan = scan_of(&store, Some(pred));
        let stats = scan.stats();
        let got = collect_rows(&mut scan).unwrap();
        assert!(got.is_empty());
        let s = stats.lock().clone();
        assert_eq!(s.containers_pruned_minmax, 1);
        assert_eq!(s.rows_scanned, 0);
    }

    #[test]
    fn null_count_prunes_all_null_blocks_for_is_not_null() {
        // Column b: NULL for the first 2048 rows, set afterwards. The two
        // all-null blocks prune; the mixed block survives.
        let data: Vec<Row> = (0..3000)
            .map(|i| {
                let b = if i < 2048 {
                    Value::Null
                } else {
                    Value::Integer(i)
                };
                vec![Value::Integer(i), b]
            })
            .collect();
        let store = make_store(data);
        let pred = Expr::is_null(Expr::col(1, "b"), true);
        let mut scan = scan_of(&store, Some(pred));
        let stats = scan.stats();
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 952);
        let s = stats.lock().clone();
        assert_eq!(s.blocks_pruned, 2, "two all-null blocks pruned");
    }

    #[test]
    fn bounds_extraction() {
        let pred = Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(10)),
            Expr::and(
                Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(20)),
                Expr::eq(Expr::col(1, "b"), Expr::int(5)),
            ),
        );
        let bounds = extract_bounds(&pred);
        assert_eq!(bounds.len(), 2);
        let a = bounds.iter().find(|b| b.column == 0).unwrap();
        assert_eq!(a.low, Some(Value::Integer(10)));
        assert_eq!(a.high, Some(Value::Integer(20)));
        let b = bounds.iter().find(|b| b.column == 1).unwrap();
        assert_eq!(b.low, Some(Value::Integer(5)));
        assert_eq!(b.high, Some(Value::Integer(5)));
        // Flipped literal side.
        let flipped = Expr::binary(BinOp::Gt, Expr::int(100), Expr::col(0, "a"));
        let fb = extract_bounds(&flipped);
        assert_eq!(fb[0].high, Some(Value::Integer(100)));
        assert_eq!(fb[0].low, None);
    }

    #[test]
    fn rle_blocks_stay_encoded_without_predicate() {
        // Column b cycles over 10 values but sorted data groups them:
        // build a store sorted by b so RLE applies.
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_by_b", &[1], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(2048), Epoch(1)).unwrap();
        let snap = store.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![1], // just column b
            None,
            None,
            vec![],
        );
        let batch = scan.next_batch().unwrap().unwrap();
        assert!(
            batch.columns[0].is_rle(),
            "sorted low-cardinality column should arrive as runs"
        );
    }

    #[test]
    fn scan_emits_typed_vectors_for_integer_columns() {
        // Integer projections decode into native i64 buffers (or RLE) —
        // never per-row `Value`s — feeding the typed executor fast path.
        let store = make_store(rows(2048));
        let mut scan = scan_of(&store, None);
        let batch = scan.next_batch().unwrap().unwrap();
        for (i, col) in batch.columns.iter().enumerate() {
            assert!(
                !matches!(col, ColumnSlice::Plain(_)),
                "column {i} of an integer projection arrived as plain values"
            );
        }
    }

    #[test]
    fn typed_scan_with_predicate_keeps_selection_not_copies() {
        let store = make_store(rows(2048));
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(1000));
        let mut scan = scan_of(&store, Some(pred));
        let mut total = 0usize;
        while let Some(batch) = scan.next_batch().unwrap() {
            total += batch.len();
            // The surviving batch still holds the full decoded block;
            // the predicate only refined the selection.
            if batch.len() < batch.physical_len() {
                assert!(batch.selection().is_some());
            }
            assert!(batch
                .columns
                .iter()
                .all(|c| !matches!(c, ColumnSlice::Plain(_))));
        }
        assert_eq!(total, 1048);
    }

    #[test]
    fn wos_rows_are_scanned_after_ros() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(10), Epoch(1)).unwrap();
        store
            .insert_wos(vec![vec![Value::Integer(99), Value::Integer(9)]], Epoch(1))
            .unwrap();
        let snap = store.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![],
        );
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(got[10][0], Value::Integer(99));
    }

    #[test]
    fn sip_filters_rows_at_scan() {
        let store = make_store(rows(100));
        let snap = store.scan_snapshot(Epoch(1));
        let filter = SipFilter::new();
        let mut keys = std::collections::HashSet::new();
        for k in [3i64, 7] {
            keys.insert(SipFilter::key_hash(&[&Value::Integer(k)]));
        }
        filter.publish(keys);
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![SipBinding {
                filter,
                key_columns: vec![0],
            }],
        );
        let stats = scan.stats();
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(stats.lock().rows_sip_filtered, 98);
    }

    #[test]
    fn deleted_rows_are_masked() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(10), Epoch(1)).unwrap();
        let id = store.containers().next().unwrap().id;
        store
            .mark_deleted(vdb_storage::RowLocation::Ros(id, 0), Epoch(2))
            .unwrap();
        let snap = store.scan_snapshot(Epoch(2));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![],
        );
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 9);
        assert!(got.iter().all(|r| r[0] != Value::Integer(0)));
    }
}
