//! The Scan operator (§6.1 #1).
//!
//! "Reads data from a particular projection's ROS containers, and applies
//! predicates in the most advantageous manner possible." Advantageous here
//! means, in order:
//!
//! 1. **Partition pruning** — skip containers whose `PARTITION BY` key
//!    cannot satisfy the predicate (§3.5).
//! 2. **Container pruning** — skip containers whose column min/max (from
//!    the position index) cannot pass, the small-materialized-aggregates
//!    technique the paper cites as \[22\].
//! 3. **Block pruning** — the same test per 1024-row block.
//! 4. **SIP filters** — membership tests against a join's hash table (§6.1).
//! 5. Residual predicate evaluation, vectorized per batch.
//!
//! Blocks whose columns survive untouched keep RLE runs unexpanded, feeding
//! the encoded-execution path of pipelined GroupBy.

use crate::batch::{Batch, ColumnSlice};
use crate::operator::Operator;
use crate::sip::SipFilter;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use vdb_encoding::block::DecodedBlock;
use vdb_encoding::ColumnReader;
use vdb_storage::store::{ScanContainer, VisibleSet};
use vdb_storage::StorageBackend;
use vdb_types::{BinOp, DbResult, Expr, Row, Value};

/// A SIP filter bound to this scan: which output columns form the join key.
#[derive(Clone)]
pub struct SipBinding {
    pub filter: Arc<SipFilter>,
    /// Indexes into the scan's *output* columns.
    pub key_columns: Vec<usize>,
}

/// Counters exposed for EXPLAIN ANALYZE-style reporting and the pruning /
/// SIP benchmarks.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanStats {
    pub containers_total: usize,
    pub containers_pruned_partition: usize,
    pub containers_pruned_minmax: usize,
    pub blocks_total: usize,
    pub blocks_pruned: usize,
    pub rows_scanned: u64,
    pub rows_after_predicate: u64,
    pub rows_sip_filtered: u64,
}

/// Inclusive bounds extracted from predicate conjuncts, used for SMA
/// pruning: `low ≤ column ≤ high`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBounds {
    pub column: usize,
    pub low: Option<Value>,
    pub high: Option<Value>,
}

/// Extract per-column bounds from the conjuncts of `pred` (column indexes
/// are in the predicate's own frame).
pub fn extract_bounds(pred: &Expr) -> Vec<ColumnBounds> {
    let mut out: Vec<ColumnBounds> = Vec::new();
    let mut add = |col: usize, low: Option<Value>, high: Option<Value>| match out
        .iter_mut()
        .find(|b| b.column == col)
    {
        Some(b) => {
            if let Some(l) = low {
                b.low = Some(match b.low.take() {
                    Some(prev) => prev.max(l),
                    None => l,
                });
            }
            if let Some(h) = high {
                b.high = Some(match b.high.take() {
                    Some(prev) => prev.min(h),
                    None => h,
                });
            }
        }
        None => out.push(ColumnBounds {
            column: col,
            low,
            high,
        }),
    };
    for conj in pred.clone().split_conjuncts() {
        match &conj {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { index, .. }, Expr::Literal(v)) => (*index, v.clone(), *op),
                    (Expr::Literal(v), Expr::Column { index, .. }) => {
                        // Flip: lit op col ≡ col flipped-op lit.
                        let flipped = match *op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => other,
                        };
                        (*index, v.clone(), flipped)
                    }
                    _ => continue,
                };
                if lit.is_null() {
                    continue;
                }
                match op {
                    BinOp::Eq => add(col, Some(lit.clone()), Some(lit)),
                    BinOp::Lt | BinOp::Le => add(col, None, Some(lit)),
                    BinOp::Gt | BinOp::Ge => add(col, Some(lit), None),
                    _ => {}
                }
            }
            Expr::Between { input, low, high } => {
                if let (Expr::Column { index, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                    (input.as_ref(), low.as_ref(), high.as_ref())
                {
                    if !lo.is_null() && !hi.is_null() {
                        add(*index, Some(lo.clone()), Some(hi.clone()));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// The Scan operator over one projection's snapshot on one node.
pub struct ScanOperator {
    /// Default backend (containers carry their own, so cross-node container
    /// mixes — buddy reads, broadcast gathers — read from the right node).
    #[allow(dead_code)]
    backend: Arc<dyn StorageBackend>,
    /// Remaining containers to scan.
    containers: VecDeque<ScanContainer>,
    /// Projection column indexes this scan outputs, in output order.
    output_columns: Vec<usize>,
    /// Residual predicate over the *output* columns.
    predicate: Option<Expr>,
    /// Bounds for pruning, with `column` = output column index.
    bounds: Vec<ColumnBounds>,
    /// Predicate over the 1-column row `[partition_key]`.
    partition_predicate: Option<Expr>,
    sip: Vec<SipBinding>,
    /// Visible WOS rows (projection-shaped), drained after containers.
    wos_rows: Option<Vec<Row>>,
    /// In-flight container state: decoded column readers per block.
    current: Option<ContainerCursor>,
    stats: Arc<Mutex<ScanStats>>,
    done: bool,
}

struct ContainerCursor {
    /// Raw column bytes + cloned index, per output column.
    columns: Vec<(Vec<u8>, vdb_encoding::PositionIndex)>,
    visible: VisibleSet,
    num_blocks: usize,
    next_block: usize,
}

impl ScanOperator {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        containers: Vec<ScanContainer>,
        wos_rows: Vec<Row>,
        output_columns: Vec<usize>,
        predicate: Option<Expr>,
        partition_predicate: Option<Expr>,
        sip: Vec<SipBinding>,
    ) -> ScanOperator {
        let bounds = predicate.as_ref().map(extract_bounds).unwrap_or_default();
        let stats = Arc::new(Mutex::new(ScanStats {
            containers_total: containers.len(),
            ..ScanStats::default()
        }));
        ScanOperator {
            backend,
            containers: containers.into(),
            output_columns,
            predicate,
            bounds,
            partition_predicate,
            sip,
            wos_rows: Some(wos_rows),
            current: None,
            stats,
            done: false,
        }
    }

    /// Shared stats handle (inspect after draining).
    pub fn stats(&self) -> Arc<Mutex<ScanStats>> {
        self.stats.clone()
    }

    /// Advance to the next unpruned container, building its cursor.
    fn open_next_container(&mut self) -> DbResult<bool> {
        while let Some(sc) = self.containers.pop_front() {
            // 1. Partition pruning.
            if let (Some(pred), Some(key)) =
                (&self.partition_predicate, &sc.container.partition_key)
            {
                if !pred.matches(std::slice::from_ref(key))? {
                    self.stats.lock().containers_pruned_partition += 1;
                    continue;
                }
            }
            // 2. Container-level min/max pruning.
            let mut pruned = false;
            for b in &self.bounds {
                let proj_col = self.output_columns[b.column];
                if let Some((min, max)) = sc.container.column_min_max(proj_col) {
                    if b.low.as_ref().is_some_and(|lo| &max < lo)
                        || b.high.as_ref().is_some_and(|hi| &min > hi)
                    {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned {
                self.stats.lock().containers_pruned_minmax += 1;
                continue;
            }
            // Visibility (epoch + delete vector).
            let visible = sc.visible(sc.backend.as_ref())?;
            if matches!(visible, VisibleSet::None) {
                continue;
            }
            // Load needed column bytes from the container's own backend.
            let mut columns = Vec::with_capacity(self.output_columns.len());
            for &proj_col in &self.output_columns {
                let bytes = sc
                    .container
                    .read_column_bytes(sc.backend.as_ref(), proj_col)?;
                columns.push((bytes, sc.container.indexes[proj_col].clone()));
            }
            let num_blocks = columns.first().map_or(0, |(_, idx)| idx.blocks.len());
            self.stats.lock().blocks_total += num_blocks;
            self.current = Some(ContainerCursor {
                columns,
                visible,
                num_blocks,
                next_block: 0,
            });
            return Ok(true);
        }
        Ok(false)
    }

    /// Produce the batch for the next surviving block of the current
    /// container; `None` when the container is exhausted.
    fn next_block_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            let Some(cur) = self.current.as_mut() else {
                return Ok(None);
            };
            if cur.next_block >= cur.num_blocks {
                self.current = None;
                return Ok(None);
            }
            let bi = cur.next_block;
            cur.next_block += 1;
            // 3. Block-level pruning on bounded columns.
            let mut skip = false;
            for b in &self.bounds {
                let meta = &cur.columns[b.column].1.blocks[bi];
                if !meta.might_contain_range(b.low.as_ref(), b.high.as_ref()) {
                    skip = true;
                    break;
                }
            }
            if skip {
                self.stats.lock().blocks_pruned += 1;
                continue;
            }
            // Decode the block for every output column.
            let meta0 = &cur.columns[0].1.blocks[bi];
            let block_start = meta0.start_position;
            let block_rows = meta0.count as usize;
            let mut slices = Vec::with_capacity(cur.columns.len());
            for (bytes, index) in &cur.columns {
                let reader = ColumnReader::new(bytes, index);
                let decoded = reader.read_block(bi)?;
                slices.push(match decoded {
                    DecodedBlock::Values(v) => ColumnSlice::Plain(v),
                    DecodedBlock::Runs(r) => ColumnSlice::Rle(r),
                });
            }
            self.stats.lock().rows_scanned += block_rows as u64;
            let mut batch = Batch::new(slices);
            // Visibility mask for this block's position range.
            if !matches!(cur.visible, VisibleSet::All) {
                let mask: Vec<bool> = (0..block_rows)
                    .map(|i| cur.visible.is_visible(block_start + i as u64))
                    .collect();
                if mask.iter().any(|&b| !b) {
                    batch = batch.into_filtered(&mask);
                }
            }
            let batch = self.apply_row_filters(batch)?;
            if batch.is_empty() {
                continue;
            }
            return Ok(Some(batch));
        }
    }

    /// 4+5: SIP filters then residual predicate.
    fn apply_row_filters(&self, batch: Batch) -> DbResult<Batch> {
        let mut batch = batch;
        for binding in &self.sip {
            if !binding.filter.is_ready() || batch.is_empty() {
                continue;
            }
            let n = batch.len();
            let mut mask = vec![true; n];
            let mut dropped = 0u64;
            if let [only] = binding.key_columns.as_slice() {
                // Single-column fast path, run-aware for RLE keys.
                match &batch.columns[*only] {
                    crate::batch::ColumnSlice::Plain(values) => {
                        for (i, v) in values.iter().enumerate() {
                            if !binding.filter.might_contain_one(v) {
                                mask[i] = false;
                                dropped += 1;
                            }
                        }
                    }
                    crate::batch::ColumnSlice::Rle(runs) => {
                        let mut i = 0usize;
                        for (v, len) in runs {
                            let keep = binding.filter.might_contain_one(v);
                            if !keep {
                                dropped += u64::from(*len);
                            }
                            for _ in 0..*len {
                                mask[i] = keep;
                                i += 1;
                            }
                        }
                    }
                }
            } else {
                let key_cols: Vec<Vec<Value>> = binding
                    .key_columns
                    .iter()
                    .map(|&c| batch.columns[c].to_values())
                    .collect();
                for i in 0..n {
                    let key: Vec<&Value> = key_cols.iter().map(|col| &col[i]).collect();
                    if !binding.filter.might_contain(&key) {
                        mask[i] = false;
                        dropped += 1;
                    }
                }
            }
            if dropped > 0 {
                self.stats.lock().rows_sip_filtered += dropped;
                batch = batch.into_filtered(&mask);
            }
        }
        if let Some(pred) = &self.predicate {
            if !batch.is_empty() {
                let rows = batch.rows();
                let mut mask = Vec::with_capacity(rows.len());
                let mut all = true;
                for row in &rows {
                    let keep = pred.matches(row)?;
                    all &= keep;
                    mask.push(keep);
                }
                if !all {
                    batch = batch.into_filtered(&mask);
                }
            }
        }
        self.stats.lock().rows_after_predicate += batch.len() as u64;
        Ok(batch)
    }

    /// Project + filter the WOS rows.
    fn wos_batch(&mut self) -> DbResult<Option<Batch>> {
        let Some(rows) = self.wos_rows.take() else {
            return Ok(None);
        };
        if rows.is_empty() {
            return Ok(None);
        }
        self.stats.lock().rows_scanned += rows.len() as u64;
        let projected: Vec<Row> = rows
            .into_iter()
            .map(|r| self.output_columns.iter().map(|&c| r[c].clone()).collect())
            .collect();
        let batch = self.apply_row_filters(Batch::from_rows(projected))?;
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

impl Operator for ScanOperator {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        loop {
            if self.current.is_some() {
                if let Some(batch) = self.next_block_batch()? {
                    return Ok(Some(batch));
                }
                continue;
            }
            if self.open_next_container()? {
                continue;
            }
            // Containers exhausted: WOS tail.
            match self.wos_batch()? {
                Some(batch) => return Ok(Some(batch)),
                None => {
                    if self.wos_rows.is_none() {
                        self.done = true;
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        match &self.predicate {
            Some(p) => format!("Scan(filter: {p})"),
            None => "Scan".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_rows;
    use std::sync::Arc;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{ColumnDef, DataType, Epoch, TableSchema};

    fn make_store(rows: Vec<Row>) -> ProjectionStore {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut s = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        s.insert_direct_ros(rows, Epoch(1)).unwrap();
        s
    }

    fn scan_of(store: &ProjectionStore, pred: Option<Expr>) -> ScanOperator {
        let snap = store.scan_snapshot(Epoch(1));
        ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            pred,
            None,
            vec![],
        )
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 10)])
            .collect()
    }

    #[test]
    fn full_scan_returns_everything() {
        let store = make_store(rows(3000));
        let mut scan = scan_of(&store, None);
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn predicate_filters_rows() {
        let store = make_store(rows(3000));
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(2995));
        let mut scan = scan_of(&store, Some(pred));
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn block_pruning_skips_sorted_ranges() {
        // 3000 sorted rows = 3 blocks of 1024ish; a >= 2995 predicate must
        // prune the first two blocks.
        let store = make_store(rows(3000));
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(2995));
        let mut scan = scan_of(&store, Some(pred));
        let stats = scan.stats();
        collect_rows(&mut scan).unwrap();
        let s = stats.lock().clone();
        assert!(s.blocks_pruned >= 2, "pruned {} blocks", s.blocks_pruned);
        assert!(s.rows_scanned < 3000, "scanned {}", s.rows_scanned);
    }

    #[test]
    fn bounds_extraction() {
        let pred = Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(10)),
            Expr::and(
                Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(20)),
                Expr::eq(Expr::col(1, "b"), Expr::int(5)),
            ),
        );
        let bounds = extract_bounds(&pred);
        assert_eq!(bounds.len(), 2);
        let a = bounds.iter().find(|b| b.column == 0).unwrap();
        assert_eq!(a.low, Some(Value::Integer(10)));
        assert_eq!(a.high, Some(Value::Integer(20)));
        let b = bounds.iter().find(|b| b.column == 1).unwrap();
        assert_eq!(b.low, Some(Value::Integer(5)));
        assert_eq!(b.high, Some(Value::Integer(5)));
        // Flipped literal side.
        let flipped = Expr::binary(BinOp::Gt, Expr::int(100), Expr::col(0, "a"));
        let fb = extract_bounds(&flipped);
        assert_eq!(fb[0].high, Some(Value::Integer(100)));
        assert_eq!(fb[0].low, None);
    }

    #[test]
    fn rle_blocks_stay_encoded_without_predicate() {
        // Column b cycles over 10 values but sorted data groups them:
        // build a store sorted by b so RLE applies.
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_by_b", &[1], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(2048), Epoch(1)).unwrap();
        let snap = store.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![1], // just column b
            None,
            None,
            vec![],
        );
        let batch = scan.next_batch().unwrap().unwrap();
        assert!(
            batch.columns[0].is_rle(),
            "sorted low-cardinality column should arrive as runs"
        );
    }

    #[test]
    fn wos_rows_are_scanned_after_ros() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(10), Epoch(1)).unwrap();
        store
            .insert_wos(vec![vec![Value::Integer(99), Value::Integer(9)]], Epoch(1))
            .unwrap();
        let snap = store.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![],
        );
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(got[10][0], Value::Integer(99));
    }

    #[test]
    fn sip_filters_rows_at_scan() {
        let store = make_store(rows(100));
        let snap = store.scan_snapshot(Epoch(1));
        let filter = SipFilter::new();
        let mut keys = std::collections::HashSet::new();
        for k in [3i64, 7] {
            keys.insert(SipFilter::key_hash(&[&Value::Integer(k)]));
        }
        filter.publish(keys);
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![SipBinding {
                filter,
                key_columns: vec![0],
            }],
        );
        let stats = scan.stats();
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(stats.lock().rows_sip_filtered, 98);
    }

    #[test]
    fn deleted_rows_are_masked() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        store.insert_direct_ros(rows(10), Epoch(1)).unwrap();
        let id = store.containers().next().unwrap().id;
        store
            .mark_deleted(vdb_storage::RowLocation::Ros(id, 0), Epoch(2))
            .unwrap();
        let snap = store.scan_snapshot(Epoch(2));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![],
        );
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 9);
        assert!(got.iter().all(|r| r[0] != Value::Integer(0)));
    }
}
