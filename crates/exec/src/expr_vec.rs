//! Vectorized expression evaluation (§6.1 ExprEval, MonetDB/X100 style).
//!
//! A [`VectorizedExpr`] evaluates a bound [`Expr`] tree column-at-a-time
//! over a [`Batch`]'s [`ColumnSlice`]s: each tree node runs a typed kernel
//! over the batch's *domain* (the physical rows selected by the batch's
//! [`SelectionVector`], or all rows) and produces an intermediate vector in
//! native form — `Vec<i64>` / `Vec<f64>` buffers with validity bitmaps,
//! dictionary codes for strings, a tri-state byte vector for booleans.
//! Rows are never materialized.
//!
//! Short-circuits and folds:
//!
//! * **Constant folding** — a column-free (sub)tree evaluates once per
//!   batch and broadcasts; a constant projection output is emitted as a
//!   single-run RLE column.
//! * **RLE runs** — an expression over exactly one column that arrives
//!   run-length-encoded evaluates once per *run* and emits RLE output with
//!   the same run structure.
//! * **Dictionary codes** — an expression over exactly one
//!   dictionary-coded string column evaluates once per *distinct code*
//!   present in the domain.
//! * **Boolean logic via domain combination** — `AND`/`OR` evaluate the
//!   right side only over the rows the left side did not decide, and
//!   `CASE` evaluates each branch value only over the rows whose condition
//!   selected it, exactly mirroring row-wise short-circuit semantics
//!   (including *which* rows can raise evaluation errors).
//!
//! Nodes with no native kernel (scalar function calls, mixed-type
//! arithmetic, heterogeneous `Plain` columns) fall back to per-row
//! evaluation of that node only — child results stay vectorized, and no
//! full row is ever pivoted. Semantics are bit-for-bit those of
//! [`Expr::eval`]; `prop_expr_vec` asserts the equivalence property.

use crate::batch::{Batch, ColumnSlice};
use crate::vector::{Bitmap, RleVector, SelectionVector, TypedVector, VectorData};
use std::sync::Arc;
use vdb_types::expr::{cast_value, eval_binary, eval_func};
use vdb_types::{BinOp, DataType, DbError, DbResult, Expr, Func, StringDictionary, UnOp, Value};

/// Tri-state boolean: SQL three-valued logic, one byte per row.
const T_FALSE: u8 = 0;
const T_TRUE: u8 = 1;
const T_NULL: u8 = 2;

/// An intermediate column: the result of evaluating one expression node
/// over the current domain. All variants except `Const` are aligned with
/// the domain (`vals.len() == domain.len()`).
enum VCol {
    /// The same value for every domain row (literal or folded subtree).
    Const(Value),
    /// Native integral buffer; `ts` distinguishes TIMESTAMP from INTEGER.
    I64 {
        vals: Vec<i64>,
        valid: Option<Bitmap>,
        ts: bool,
    },
    F64 {
        vals: Vec<f64>,
        valid: Option<Bitmap>,
    },
    /// Three-valued boolean result.
    Bool(Vec<u8>),
    /// Dictionary-coded strings.
    Str {
        dict: Arc<StringDictionary>,
        codes: Vec<u32>,
        valid: Option<Bitmap>,
    },
    /// Unspecialized values (mixed-type columns, fallback results).
    Plain(Vec<Value>),
}

impl VCol {
    /// Value at domain position `i` (constructs a `Value`; used by the
    /// generic fallback kernels and result scattering).
    fn value_of(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::I64 { vals, valid, ts } => {
                if bit(valid, i) {
                    if *ts {
                        Value::Timestamp(vals[i])
                    } else {
                        Value::Integer(vals[i])
                    }
                } else {
                    Value::Null
                }
            }
            VCol::F64 { vals, valid } => {
                if bit(valid, i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            VCol::Bool(t) => match t[i] {
                T_NULL => Value::Null,
                b => Value::Boolean(b == T_TRUE),
            },
            VCol::Str { dict, codes, valid } => {
                if bit(valid, i) {
                    Value::Varchar(dict.get(codes[i]).to_string())
                } else {
                    Value::Null
                }
            }
            VCol::Plain(values) => values[i].clone(),
        }
    }
}

#[inline]
fn bit(valid: &Option<Bitmap>, i: usize) -> bool {
    valid.as_ref().is_none_or(|b| b.get(i))
}

/// AND of two validity bitmaps.
fn merge_valid(a: &Option<Bitmap>, b: &Option<Bitmap>, n: usize) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        _ => Some(Bitmap::from_bools((0..n).map(|i| bit(a, i) && bit(b, i)))),
    }
}

/// Promote materialized values to a native vector when homogeneous.
fn promote_plain(values: Vec<Value>) -> VCol {
    match TypedVector::from_owned_values(values) {
        Ok(tv) => {
            let (data, valid) = tv.into_parts();
            match data {
                VectorData::Int64(vals) => VCol::I64 {
                    vals,
                    valid,
                    ts: false,
                },
                VectorData::Timestamp(vals) => VCol::I64 {
                    vals,
                    valid,
                    ts: true,
                },
                VectorData::Float64(vals) => VCol::F64 { vals, valid },
                VectorData::Bool(bits) => VCol::Bool(
                    (0..bits.len())
                        .map(|i| {
                            if !bit(&valid, i) {
                                T_NULL
                            } else if bits.get(i) {
                                T_TRUE
                            } else {
                                T_FALSE
                            }
                        })
                        .collect(),
                ),
                VectorData::Dict { dict, codes } => VCol::Str { dict, codes, valid },
            }
        }
        Err(values) => VCol::Plain(values),
    }
}

/// Convert an evaluation result into a batch column of `n` rows.
fn vcol_to_slice(vc: VCol, n: usize) -> ColumnSlice {
    match vc {
        // Constant output stays encoded: one RLE run covers the batch.
        VCol::Const(v) => ColumnSlice::Rle(RleVector::new(if n == 0 {
            Vec::new()
        } else {
            vec![(v, u32::try_from(n).expect("batch fits u32 rows"))]
        })),
        VCol::I64 { vals, valid, ts } => {
            let data = if ts {
                VectorData::Timestamp(vals)
            } else {
                VectorData::Int64(vals)
            };
            ColumnSlice::Typed(TypedVector::new(data, valid))
        }
        VCol::F64 { vals, valid } => {
            ColumnSlice::Typed(TypedVector::new(VectorData::Float64(vals), valid))
        }
        VCol::Bool(t) => {
            let valid = t
                .contains(&T_NULL)
                .then(|| Bitmap::from_bools(t.iter().map(|&b| b != T_NULL)));
            let bits = Bitmap::from_bools(t.iter().map(|&b| b == T_TRUE));
            ColumnSlice::Typed(TypedVector::new(VectorData::Bool(bits), valid))
        }
        VCol::Str { dict, codes, valid } => {
            ColumnSlice::Typed(TypedVector::new(VectorData::Dict { dict, codes }, valid))
        }
        VCol::Plain(values) => match TypedVector::from_owned_values(values) {
            Ok(tv) => ColumnSlice::Typed(tv),
            Err(values) => ColumnSlice::Plain(values),
        },
    }
}

// ---------------------------------------------------------------------------
// Compiled expression
// ---------------------------------------------------------------------------

/// A compiled vectorized expression: the tree plus the per-batch dispatch
/// decisions (constant fold, single-column RLE/dict short-circuits)
/// resolved once at construction instead of once per batch.
pub struct VectorizedExpr {
    expr: Expr,
    /// The whole tree is column-free: evaluate once per batch.
    is_const: bool,
    /// Exactly one column feeds the tree: candidates for the per-run /
    /// per-distinct-code short-circuits.
    single_col: Option<usize>,
}

impl VectorizedExpr {
    pub fn new(expr: Expr) -> VectorizedExpr {
        let refs = expr.referenced_columns();
        VectorizedExpr {
            is_const: refs.is_empty(),
            single_col: match refs.as_slice() {
                [c] => Some(*c),
                _ => None,
            },
            expr,
        }
    }

    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluate over the batch's logical rows, producing one output column
    /// of `batch.len()` values (the batch's selection, if any, is applied
    /// during evaluation — the result carries no selection).
    pub fn eval_column(&self, batch: &Batch) -> DbResult<ColumnSlice> {
        let n = batch.len();
        if n == 0 {
            return Ok(ColumnSlice::Plain(Vec::new()));
        }
        if self.is_const {
            return Ok(vcol_to_slice(VCol::Const(self.expr.eval(&[])?), n));
        }
        if let Some(c) = self.single_col {
            if c < batch.arity() {
                match &batch.columns[c] {
                    ColumnSlice::Rle(rv) => return self.eval_rle_runs(rv, batch.selection(), c),
                    ColumnSlice::Typed(tv) => {
                        if let VectorData::Dict { dict, codes } = tv.data() {
                            return self.eval_dict_codes(tv, dict, codes, batch, c);
                        }
                    }
                    _ => {}
                }
            }
        }
        let domain = domain_of(batch);
        let vc = eval(&self.expr, &batch.columns, &domain)?;
        Ok(vcol_to_slice(vc, n))
    }

    /// Evaluate as a predicate: the physical rows (a subset of the batch's
    /// selection) where the expression is `TRUE` — SQL semantics, so NULL
    /// and non-boolean results do not select.
    pub fn eval_selection(&self, batch: &Batch) -> DbResult<SelectionVector> {
        let domain = domain_of(batch);
        if domain.is_empty() {
            return Ok(SelectionVector::default());
        }
        if self.is_const {
            return Ok(if self.expr.eval(&[])?.is_true() {
                SelectionVector::new(domain)
            } else {
                SelectionVector::default()
            });
        }
        // Per-run predicate: one evaluation per run — lazily, so runs the
        // batch's selection has fully excluded are never evaluated (they
        // could raise errors row-wise evaluation would never see).
        if let Some(c) = self.single_col {
            if let Some(ColumnSlice::Rle(rv)) = batch.columns.get(c) {
                let mut row = vec![Value::Null; c + 1];
                let mut decisions: Vec<Option<bool>> = vec![None; rv.runs().len()];
                let mut ri = 0usize;
                let mut kept = Vec::with_capacity(domain.len());
                for i in domain {
                    while rv.run_start(ri + 1) <= i as usize {
                        ri += 1;
                    }
                    let keep = match decisions[ri] {
                        Some(k) => k,
                        None => {
                            row[c] = rv.runs()[ri].0.clone();
                            let k = self.expr.matches(&row)?;
                            decisions[ri] = Some(k);
                            k
                        }
                    };
                    if keep {
                        kept.push(i);
                    }
                }
                return Ok(SelectionVector::new(kept));
            }
        }
        let vc = eval(&self.expr, &batch.columns, &domain)?;
        let kept: Vec<u32> = domain
            .iter()
            .enumerate()
            .filter_map(|(pos, &phys)| {
                let t = match &vc {
                    VCol::Bool(t) => t[pos] == T_TRUE,
                    VCol::Const(v) => v.is_true(),
                    VCol::Plain(values) => values[pos].is_true(),
                    _ => false, // non-boolean predicate result: never true
                };
                t.then_some(phys)
            })
            .collect();
        Ok(SelectionVector::new(kept))
    }

    /// Single-RLE-column short-circuit: evaluate once per run, emit RLE.
    fn eval_rle_runs(
        &self,
        rv: &RleVector,
        sel: Option<&SelectionVector>,
        c: usize,
    ) -> DbResult<ColumnSlice> {
        let filtered;
        let runs = match sel {
            None => rv.runs(),
            Some(sel) => {
                filtered = rv.filter(sel);
                filtered.runs()
            }
        };
        let mut row = vec![Value::Null; c + 1];
        let mut out = Vec::with_capacity(runs.len());
        for (v, len) in runs {
            row[c] = v.clone();
            out.push((self.expr.eval(&row)?, *len));
        }
        Ok(ColumnSlice::Rle(RleVector::new(out)))
    }

    /// Single-dict-column short-circuit: evaluate once per distinct code
    /// present in the domain (plus once for NULL if any row is NULL).
    fn eval_dict_codes(
        &self,
        tv: &TypedVector,
        dict: &Arc<StringDictionary>,
        codes: &[u32],
        batch: &Batch,
        c: usize,
    ) -> DbResult<ColumnSlice> {
        let domain = domain_of(batch);
        let mut used = vec![false; dict.len()];
        let mut any_null = false;
        for &i in &domain {
            if tv.is_valid(i as usize) {
                used[codes[i as usize] as usize] = true;
            } else {
                any_null = true;
            }
        }
        let mut row = vec![Value::Null; c + 1];
        let mut per_code: Vec<Option<Value>> = vec![None; dict.len()];
        for (code, used) in used.iter().enumerate() {
            if *used {
                row[c] = Value::Varchar(dict.get(code as u32).to_string());
                per_code[code] = Some(self.expr.eval(&row)?);
            }
        }
        let null_result = if any_null {
            row[c] = Value::Null;
            Some(self.expr.eval(&row)?)
        } else {
            None
        };
        let out: Vec<Value> = domain
            .iter()
            .map(|&i| {
                let i = i as usize;
                if tv.is_valid(i) {
                    per_code[codes[i] as usize].clone().expect("code evaluated")
                } else {
                    null_result.clone().expect("null evaluated")
                }
            })
            .collect();
        Ok(vcol_to_slice(promote_plain(out), domain.len()))
    }
}

/// The batch's evaluation domain: selected physical rows, or all rows.
fn domain_of(batch: &Batch) -> Vec<u32> {
    match batch.selection() {
        Some(sel) => sel.indices().to_vec(),
        None => (0..batch.physical_len() as u32).collect(),
    }
}

/// Evaluate an expression over a batch's logical rows (compiles on the
/// fly; operators that evaluate repeatedly should hold a [`VectorizedExpr`]).
pub fn eval_expr_column(batch: &Batch, expr: &Expr) -> DbResult<ColumnSlice> {
    VectorizedExpr::new(expr.clone()).eval_column(batch)
}

/// Evaluate a predicate over a batch, returning the selected physical rows.
pub fn eval_predicate(batch: &Batch, pred: &Expr) -> DbResult<SelectionVector> {
    VectorizedExpr::new(pred.clone()).eval_selection(batch)
}

// ---------------------------------------------------------------------------
// Node evaluation
// ---------------------------------------------------------------------------

/// Evaluate one node over `domain` (physical row indexes, ascending).
fn eval(expr: &Expr, cols: &[ColumnSlice], domain: &[u32]) -> DbResult<VCol> {
    let n = domain.len();
    if n == 0 {
        return Ok(VCol::Plain(Vec::new()));
    }
    // Fold column-free subtrees: one evaluation, broadcast to the domain.
    if expr.is_constant() {
        return Ok(VCol::Const(expr.eval(&[])?));
    }
    match expr {
        Expr::Literal(v) => Ok(VCol::Const(v.clone())),
        Expr::Column { index, name } => {
            let col = cols.get(*index).ok_or_else(|| {
                DbError::Execution(format!(
                    "column {name} (index {index}) out of bounds for batch of arity {}",
                    cols.len()
                ))
            })?;
            Ok(load_column(col, domain))
        }
        Expr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
            eval_logic(*op, left, right, cols, domain)
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = eval(left, cols, domain)?;
            let r = eval(right, cols, domain)?;
            Ok(VCol::Bool(cmp_kernel(*op, &l, &r, n)))
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, cols, domain)?;
            let r = eval(right, cols, domain)?;
            match arith_kernel(*op, &l, &r, n) {
                Some(res) => res,
                // Varchar concat, boolean operands, mixed plain columns:
                // per-row scalar kernel with exact row-wise semantics.
                None => generic_rows(n, |i| eval_binary(*op, &l.value_of(i), &r.value_of(i))),
            }
        }
        Expr::Unary { op, input } => {
            let v = eval(input, cols, domain)?;
            match (op, &v) {
                (
                    UnOp::Neg,
                    VCol::I64 {
                        vals,
                        valid,
                        ts: false,
                    },
                ) => Ok(VCol::I64 {
                    vals: vals.iter().map(|&x| x.wrapping_neg()).collect(),
                    valid: valid.clone(),
                    ts: false,
                }),
                (UnOp::Neg, VCol::F64 { vals, valid }) => Ok(VCol::F64 {
                    vals: vals.iter().map(|&x| -x).collect(),
                    valid: valid.clone(),
                }),
                (UnOp::Not, VCol::Bool(t)) => Ok(VCol::Bool(
                    t.iter()
                        .map(|&b| match b {
                            T_TRUE => T_FALSE,
                            T_FALSE => T_TRUE,
                            other => other,
                        })
                        .collect(),
                )),
                _ => generic_rows(n, |i| match (op, v.value_of(i)) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnOp::Neg, Value::Integer(x)) => Ok(Value::Integer(-x)),
                    (UnOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
                    (UnOp::Not, Value::Boolean(b)) => Ok(Value::Boolean(!b)),
                    (op, v) => Err(DbError::Execution(format!("cannot apply {op:?} to {v}"))),
                }),
            }
        }
        Expr::IsNull { input, negated } => {
            let v = eval(input, cols, domain)?;
            Ok(VCol::Bool(
                (0..n)
                    .map(|i| {
                        let is_null = match &v {
                            VCol::Const(c) => c.is_null(),
                            VCol::I64 { valid, .. }
                            | VCol::F64 { valid, .. }
                            | VCol::Str { valid, .. } => !bit(valid, i),
                            VCol::Bool(t) => t[i] == T_NULL,
                            VCol::Plain(values) => values[i].is_null(),
                        };
                        if is_null != *negated {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    })
                    .collect(),
            ))
        }
        Expr::InList {
            input,
            list,
            negated,
        } => {
            let v = eval(input, cols, domain)?;
            Ok(VCol::Bool(in_list_kernel(&v, list, *negated, n)))
        }
        Expr::Between { input, low, high } => {
            let v = eval(input, cols, domain)?;
            let lo = eval(low, cols, domain)?;
            let hi = eval(high, cols, domain)?;
            Ok(VCol::Bool(
                (0..n)
                    .map(|i| {
                        let (a, l, h) = (v.value_of(i), lo.value_of(i), hi.value_of(i));
                        if a.is_null() || l.is_null() || h.is_null() {
                            T_NULL
                        } else if a >= l && a <= h {
                            T_TRUE
                        } else {
                            T_FALSE
                        }
                    })
                    .collect(),
            ))
        }
        Expr::Case {
            branches,
            otherwise,
        } => eval_case(branches, otherwise.as_deref(), cols, domain),
        Expr::Cast { input, to } => {
            let v = eval(input, cols, domain)?;
            match (&v, to) {
                (VCol::I64 { vals, valid, .. }, DataType::Float) => Ok(VCol::F64 {
                    vals: vals.iter().map(|&x| x as f64).collect(),
                    valid: valid.clone(),
                }),
                (VCol::I64 { vals, valid, .. }, DataType::Integer) => Ok(VCol::I64 {
                    vals: vals.clone(),
                    valid: valid.clone(),
                    ts: false,
                }),
                (
                    VCol::I64 {
                        vals,
                        valid,
                        ts: false,
                    },
                    DataType::Timestamp,
                ) => Ok(VCol::I64 {
                    vals: vals.clone(),
                    valid: valid.clone(),
                    ts: true,
                }),
                (VCol::F64 { vals, valid }, DataType::Integer) => Ok(VCol::I64 {
                    vals: vals.iter().map(|&x| x as i64).collect(),
                    valid: valid.clone(),
                    ts: false,
                }),
                (VCol::F64 { .. }, DataType::Float) => Ok(v),
                _ => generic_rows(n, |i| cast_value(v.value_of(i), *to)),
            }
        }
        Expr::Call { func, args } => eval_call(*func, args, cols, domain),
    }
}

/// Gather one input column into an intermediate vector. The full-domain
/// case clones native buffers wholesale (memcpy) instead of gathering.
fn load_column(col: &ColumnSlice, domain: &[u32]) -> VCol {
    let full = domain.len() == col.len();
    match col {
        ColumnSlice::Typed(tv) => {
            let gather_valid = || -> Option<Bitmap> {
                tv.validity()
                    .map(|v| if full { v.clone() } else { v.gather(domain) })
            };
            match tv.data() {
                VectorData::Int64(xs) | VectorData::Timestamp(xs) => VCol::I64 {
                    vals: if full {
                        xs.clone()
                    } else {
                        domain.iter().map(|&i| xs[i as usize]).collect()
                    },
                    valid: gather_valid(),
                    ts: matches!(tv.data(), VectorData::Timestamp(_)),
                },
                VectorData::Float64(xs) => VCol::F64 {
                    vals: if full {
                        xs.clone()
                    } else {
                        domain.iter().map(|&i| xs[i as usize]).collect()
                    },
                    valid: gather_valid(),
                },
                VectorData::Bool(bits) => VCol::Bool(
                    domain
                        .iter()
                        .map(|&i| {
                            let i = i as usize;
                            if !tv.is_valid(i) {
                                T_NULL
                            } else if bits.get(i) {
                                T_TRUE
                            } else {
                                T_FALSE
                            }
                        })
                        .collect(),
                ),
                VectorData::Dict { dict, codes } => VCol::Str {
                    dict: dict.clone(),
                    codes: if full {
                        codes.clone()
                    } else {
                        domain.iter().map(|&i| codes[i as usize]).collect()
                    },
                    valid: gather_valid(),
                },
            }
        }
        // RLE and plain columns gather values and promote when homogeneous
        // so downstream kernels still run natively.
        ColumnSlice::Rle(rv) => promote_plain(rv.gather_values(domain)),
        ColumnSlice::Plain(values) => promote_plain(if full {
            values.clone()
        } else {
            domain.iter().map(|&i| values[i as usize].clone()).collect()
        }),
    }
}

fn generic_rows(n: usize, mut f: impl FnMut(usize) -> DbResult<Value>) -> DbResult<VCol> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(i)?);
    }
    Ok(promote_plain(out))
}

/// Convert a result to tri-state booleans with `AND`/`OR` operand
/// semantics: non-boolean non-NULL values are a type error (mirroring
/// row-wise `bool3`).
fn to_tri(vc: &VCol, n: usize) -> DbResult<Vec<u8>> {
    let type_err = |found: &Value| DbError::TypeMismatch {
        expected: "BOOLEAN".into(),
        found: found.to_string(),
    };
    match vc {
        VCol::Bool(t) => Ok(t.clone()),
        VCol::Const(Value::Null) => Ok(vec![T_NULL; n]),
        VCol::Const(Value::Boolean(b)) => Ok(vec![if *b { T_TRUE } else { T_FALSE }; n]),
        VCol::Const(other) => Err(type_err(other)),
        other => (0..n)
            .map(|i| match other.value_of(i) {
                Value::Null => Ok(T_NULL),
                Value::Boolean(true) => Ok(T_TRUE),
                Value::Boolean(false) => Ok(T_FALSE),
                v => Err(type_err(&v)),
            })
            .collect(),
    }
}

/// Kleene `AND`/`OR` with short-circuit domains: the right side is only
/// evaluated over rows the left side did not decide, so rows that would
/// not evaluate the right side row-wise cannot raise errors here either.
fn eval_logic(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    cols: &[ColumnSlice],
    domain: &[u32],
) -> DbResult<VCol> {
    let n = domain.len();
    let l = eval(left, cols, domain)?;
    let lt = to_tri(&l, n)?;
    let decisive = if op == BinOp::And { T_FALSE } else { T_TRUE };
    let need: Vec<usize> = (0..n).filter(|&i| lt[i] != decisive).collect();
    if need.is_empty() {
        return Ok(VCol::Bool(lt));
    }
    let sub: Vec<u32> = need.iter().map(|&i| domain[i]).collect();
    let r = eval(right, cols, &sub)?;
    let rt = to_tri(&r, sub.len())?;
    let mut out = lt;
    for (j, &i) in need.iter().enumerate() {
        let (a, b) = (out[i], rt[j]);
        out[i] = match op {
            BinOp::And => match (a, b) {
                (T_FALSE, _) | (_, T_FALSE) => T_FALSE,
                (T_TRUE, T_TRUE) => T_TRUE,
                _ => T_NULL,
            },
            _ => match (a, b) {
                (T_TRUE, _) | (_, T_TRUE) => T_TRUE,
                (T_FALSE, T_FALSE) => T_FALSE,
                _ => T_NULL,
            },
        };
    }
    Ok(VCol::Bool(out))
}

/// CASE: each branch's value expression is evaluated only over the rows
/// its condition selected; conditions see only rows no earlier branch took
/// (row-wise `is_true` semantics — NULL and non-boolean fall through).
fn eval_case(
    branches: &[(Expr, Expr)],
    otherwise: Option<&Expr>,
    cols: &[ColumnSlice],
    domain: &[u32],
) -> DbResult<VCol> {
    let n = domain.len();
    let mut out: Vec<Value> = vec![Value::Null; n];
    let mut rem_phys: Vec<u32> = domain.to_vec();
    let mut rem_pos: Vec<u32> = (0..n as u32).collect();
    for (cond, val) in branches {
        if rem_phys.is_empty() {
            break;
        }
        let c = eval(cond, cols, &rem_phys)?;
        let mut take_phys = Vec::new();
        let mut take_pos = Vec::new();
        let mut next_phys = Vec::new();
        let mut next_pos = Vec::new();
        for (j, (&phys, &pos)) in rem_phys.iter().zip(&rem_pos).enumerate() {
            let taken = match &c {
                VCol::Bool(t) => t[j] == T_TRUE,
                VCol::Const(v) => v.is_true(),
                other => other.value_of(j).is_true(),
            };
            if taken {
                take_phys.push(phys);
                take_pos.push(pos);
            } else {
                next_phys.push(phys);
                next_pos.push(pos);
            }
        }
        if !take_phys.is_empty() {
            let v = eval(val, cols, &take_phys)?;
            for (j, &pos) in take_pos.iter().enumerate() {
                out[pos as usize] = v.value_of(j);
            }
        }
        rem_phys = next_phys;
        rem_pos = next_pos;
    }
    if let Some(e) = otherwise {
        if !rem_phys.is_empty() {
            let v = eval(e, cols, &rem_phys)?;
            for (j, &pos) in rem_pos.iter().enumerate() {
                out[pos as usize] = v.value_of(j);
            }
        }
    }
    Ok(promote_plain(out))
}

// ---------------------------------------------------------------------------
// Comparison kernel
// ---------------------------------------------------------------------------

fn ord_matches(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Numeric operand view for the comparison kernel. Booleans are *not*
/// viewed numerically: `Value::cmp` compares `Boolean` by numeric value
/// against `Integer` only — against `Float`/`Timestamp`/`Varchar` it
/// falls back to the fixed type rank — so boolean operands take the
/// generic per-row path, which delegates to `Value::cmp` directly.
enum CmpView<'a> {
    I64C(i64),
    F64C(f64),
    I64S(&'a [i64], &'a Option<Bitmap>),
    F64S(&'a [f64], &'a Option<Bitmap>),
}

fn cmp_view(vc: &VCol) -> Option<CmpView<'_>> {
    match vc {
        VCol::Const(Value::Integer(v) | Value::Timestamp(v)) => Some(CmpView::I64C(*v)),
        VCol::Const(Value::Float(f)) => Some(CmpView::F64C(*f)),
        VCol::I64 { vals, valid, .. } => Some(CmpView::I64S(vals, valid)),
        VCol::F64 { vals, valid } => Some(CmpView::F64S(vals, valid)),
        _ => None,
    }
}

fn cmp_kernel(op: BinOp, l: &VCol, r: &VCol, n: usize) -> Vec<u8> {
    let tri = |b: bool| if b { T_TRUE } else { T_FALSE };
    // Numeric fast paths: integer-family compares by i64, anything
    // involving floats by IEEE total order — exactly `Value::cmp`.
    if let (Some(lv), Some(rv)) = (cmp_view(l), cmp_view(r)) {
        let valid_at = |v: &CmpView<'_>, i: usize| match v {
            CmpView::I64C(_) | CmpView::F64C(_) => true,
            CmpView::I64S(_, valid) | CmpView::F64S(_, valid) => bit(valid, i),
        };
        let both_int = matches!(lv, CmpView::I64C(_) | CmpView::I64S(..))
            && matches!(rv, CmpView::I64C(_) | CmpView::I64S(..));
        return (0..n)
            .map(|i| {
                if !valid_at(&lv, i) || !valid_at(&rv, i) {
                    return T_NULL;
                }
                let ord = if both_int {
                    let a = match &lv {
                        CmpView::I64C(v) => *v,
                        CmpView::I64S(vals, _) => vals[i],
                        _ => unreachable!(),
                    };
                    let b = match &rv {
                        CmpView::I64C(v) => *v,
                        CmpView::I64S(vals, _) => vals[i],
                        _ => unreachable!(),
                    };
                    a.cmp(&b)
                } else {
                    let a = match &lv {
                        CmpView::I64C(v) => *v as f64,
                        CmpView::F64C(v) => *v,
                        CmpView::I64S(vals, _) => vals[i] as f64,
                        CmpView::F64S(vals, _) => vals[i],
                    };
                    let b = match &rv {
                        CmpView::I64C(v) => *v as f64,
                        CmpView::F64C(v) => *v,
                        CmpView::I64S(vals, _) => vals[i] as f64,
                        CmpView::F64S(vals, _) => vals[i],
                    };
                    a.total_cmp(&b)
                };
                tri(ord_matches(op, ord))
            })
            .collect();
    }
    // Dictionary column vs string literal: one compare per distinct value.
    if let (VCol::Str { dict, codes, valid }, VCol::Const(Value::Varchar(s))) = (l, r) {
        let keep: Vec<u8> = dict
            .entries()
            .iter()
            .map(|e| tri(ord_matches(op, e.as_str().cmp(s.as_str()))))
            .collect();
        return (0..n)
            .map(|i| {
                if bit(valid, i) {
                    keep[codes[i] as usize]
                } else {
                    T_NULL
                }
            })
            .collect();
    }
    if let (VCol::Const(Value::Varchar(s)), VCol::Str { dict, codes, valid }) = (l, r) {
        let keep: Vec<u8> = dict
            .entries()
            .iter()
            .map(|e| tri(ord_matches(op, s.as_str().cmp(e.as_str()))))
            .collect();
        return (0..n)
            .map(|i| {
                if bit(valid, i) {
                    keep[codes[i] as usize]
                } else {
                    T_NULL
                }
            })
            .collect();
    }
    // Generic: `Value::cmp` per row with SQL NULL propagation.
    (0..n)
        .map(|i| {
            let (a, b) = (l.value_of(i), r.value_of(i));
            if a.is_null() || b.is_null() {
                T_NULL
            } else {
                tri(ord_matches(op, a.cmp(&b)))
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Arithmetic kernel
// ---------------------------------------------------------------------------

/// Numeric operand view for arithmetic (booleans and strings excluded —
/// they take the generic scalar path so type errors match row-wise).
enum NumView<'a> {
    IntC(i64),
    TsC(i64),
    F64C(f64),
    IntS(&'a [i64], &'a Option<Bitmap>),
    TsS(&'a [i64], &'a Option<Bitmap>),
    F64S(&'a [f64], &'a Option<Bitmap>),
}

impl NumView<'_> {
    fn valid(&self, i: usize) -> bool {
        match self {
            NumView::IntC(_) | NumView::TsC(_) | NumView::F64C(_) => true,
            NumView::IntS(_, v) | NumView::TsS(_, v) | NumView::F64S(_, v) => bit(v, i),
        }
    }

    fn i64_at(&self, i: usize) -> i64 {
        match self {
            NumView::IntC(v) | NumView::TsC(v) => *v,
            NumView::IntS(vals, _) | NumView::TsS(vals, _) => vals[i],
            NumView::F64S(..) | NumView::F64C(_) => unreachable!("integer path"),
        }
    }

    fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumView::IntC(v) | NumView::TsC(v) => *v as f64,
            NumView::IntS(vals, _) | NumView::TsS(vals, _) => vals[i] as f64,
            NumView::F64C(v) => *v,
            NumView::F64S(vals, _) => vals[i],
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, NumView::IntC(_) | NumView::IntS(..))
    }

    fn is_ts(&self) -> bool {
        matches!(self, NumView::TsC(_) | NumView::TsS(..))
    }

    fn validity(&self) -> &Option<Bitmap> {
        match self {
            NumView::IntS(_, v) | NumView::TsS(_, v) | NumView::F64S(_, v) => v,
            _ => &None,
        }
    }
}

fn num_view(vc: &VCol) -> Option<NumView<'_>> {
    match vc {
        VCol::Const(Value::Integer(v)) => Some(NumView::IntC(*v)),
        VCol::Const(Value::Timestamp(v)) => Some(NumView::TsC(*v)),
        VCol::Const(Value::Float(f)) => Some(NumView::F64C(*f)),
        VCol::I64 {
            vals,
            valid,
            ts: false,
        } => Some(NumView::IntS(vals, valid)),
        VCol::I64 {
            vals,
            valid,
            ts: true,
        } => Some(NumView::TsS(vals, valid)),
        VCol::F64 { vals, valid } => Some(NumView::F64S(vals, valid)),
        _ => None,
    }
}

/// Native arithmetic over numeric operands; `None` when an operand is not
/// numeric (caller falls back to the per-row scalar kernel). Matches
/// [`eval_binary`]: INTEGER⟨op⟩INTEGER stays integer, TIMESTAMP±INTEGER
/// stays timestamp, every other combination computes in f64.
fn arith_kernel(op: BinOp, l: &VCol, r: &VCol, n: usize) -> Option<DbResult<VCol>> {
    let lv = num_view(l)?;
    let rv = num_view(r)?;
    let valid = merge_valid(lv.validity(), rv.validity(), n);
    if lv.is_int() && rv.is_int() {
        let mut vals = Vec::with_capacity(n);
        for i in 0..n {
            let ok = lv.valid(i) && rv.valid(i);
            if !ok {
                vals.push(0);
                continue;
            }
            let (a, b) = (lv.i64_at(i), rv.i64_at(i));
            vals.push(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div | BinOp::Mod => {
                    if b == 0 {
                        return Some(Err(DbError::Execution("division by zero".into())));
                    }
                    if op == BinOp::Div {
                        a / b
                    } else {
                        a % b
                    }
                }
                _ => unreachable!("arithmetic op"),
            });
        }
        return Some(Ok(VCol::I64 {
            vals,
            valid,
            ts: false,
        }));
    }
    if lv.is_ts() && rv.is_int() && matches!(op, BinOp::Add | BinOp::Sub) {
        let vals = (0..n)
            .map(|i| {
                if !(lv.valid(i) && rv.valid(i)) {
                    return 0;
                }
                let (a, b) = (lv.i64_at(i), rv.i64_at(i));
                if op == BinOp::Add {
                    a.wrapping_add(b)
                } else {
                    a.wrapping_sub(b)
                }
            })
            .collect();
        return Some(Ok(VCol::I64 {
            vals,
            valid,
            ts: true,
        }));
    }
    // Everything else numeric runs in f64 (row-wise `as_f64` path).
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        if !(lv.valid(i) && rv.valid(i)) {
            vals.push(0.0);
            continue;
        }
        let (a, b) = (lv.f64_at(i), rv.f64_at(i));
        vals.push(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Some(Err(DbError::Execution("division by zero".into())));
                }
                a / b
            }
            BinOp::Mod => a % b,
            _ => unreachable!("arithmetic op"),
        });
    }
    Some(Ok(VCol::F64 { vals, valid }))
}

// ---------------------------------------------------------------------------
// IN-list kernel
// ---------------------------------------------------------------------------

/// The integral membership sets for an IN list probed by an `i64`-family
/// column: a hash set of exactly-equal integral values plus a float
/// residue to compare by `total_cmp` per row. `ts` is the column's
/// TIMESTAMP-ness: `Value::cmp` grants `Boolean` numeric equality against
/// `Integer` only, so boolean list items join the set only for non-ts
/// columns. Shared with the filter layer's conjunct vectorizer so the
/// cross-type equality rules live in one place.
pub(crate) fn in_list_int_sets(
    list: &[Value],
    ts: bool,
) -> (std::collections::HashSet<i64>, Vec<f64>) {
    let mut ints = std::collections::HashSet::new();
    let mut floats = Vec::new();
    for item in list {
        match item {
            Value::Integer(x) | Value::Timestamp(x) => {
                ints.insert(*x);
            }
            Value::Boolean(b) if !ts => {
                ints.insert(i64::from(*b));
            }
            Value::Float(f) => floats.push(*f),
            _ => {} // strings, NULL, bool-vs-timestamp: never equal
        }
    }
    (ints, floats)
}

/// Does integral value `x` belong to the sets from [`in_list_int_sets`]?
#[inline]
pub(crate) fn in_list_int_found(
    x: i64,
    ints: &std::collections::HashSet<i64>,
    floats: &[f64],
) -> bool {
    ints.contains(&x)
        || floats
            .iter()
            .any(|f| (x as f64).total_cmp(f) == std::cmp::Ordering::Equal)
}

/// Per-dictionary-entry IN membership (one test per distinct string).
pub(crate) fn in_list_dict_keep(dict: &StringDictionary, list: &[Value]) -> Vec<bool> {
    dict.entries()
        .iter()
        .map(|e| list.iter().any(|x| x.as_str() == Some(e.as_str())))
        .collect()
}

/// Membership with `Value` equality semantics (numeric cross-type equality
/// included). Integer inputs test a hash set of the integral list values
/// plus a float residue compared by `total_cmp`; dictionary inputs test
/// once per distinct code.
fn in_list_kernel(v: &VCol, list: &[Value], negated: bool, n: usize) -> Vec<u8> {
    let tri = |found: bool| {
        if found != negated {
            T_TRUE
        } else {
            T_FALSE
        }
    };
    match v {
        VCol::I64 { vals, valid, ts } => {
            let (ints, floats) = in_list_int_sets(list, *ts);
            (0..n)
                .map(|i| {
                    if !bit(valid, i) {
                        return T_NULL;
                    }
                    tri(in_list_int_found(vals[i], &ints, &floats))
                })
                .collect()
        }
        VCol::F64 { vals, valid } => {
            let nums: Vec<f64> = list.iter().filter_map(Value::as_f64).collect();
            (0..n)
                .map(|i| {
                    if !bit(valid, i) {
                        return T_NULL;
                    }
                    let x = vals[i];
                    tri(nums
                        .iter()
                        .any(|f| x.total_cmp(f) == std::cmp::Ordering::Equal))
                })
                .collect()
        }
        VCol::Str { dict, codes, valid } => {
            let keep = in_list_dict_keep(dict, list);
            (0..n)
                .map(|i| {
                    if !bit(valid, i) {
                        T_NULL
                    } else {
                        tri(keep[codes[i] as usize])
                    }
                })
                .collect()
        }
        other => (0..n)
            .map(|i| {
                let x = other.value_of(i);
                if x.is_null() {
                    T_NULL
                } else {
                    tri(list.iter().any(|item| item == &x))
                }
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Function-call kernels
// ---------------------------------------------------------------------------

fn eval_call(func: Func, args: &[Expr], cols: &[ColumnSlice], domain: &[u32]) -> DbResult<VCol> {
    let n = domain.len();
    let vargs: Vec<VCol> = args
        .iter()
        .map(|a| eval(a, cols, domain))
        .collect::<DbResult<Vec<_>>>()?;
    // Native date-part extraction and ABS over integral buffers.
    if let [VCol::I64 { vals, valid, ts }] = vargs.as_slice() {
        match func {
            Func::ExtractYear | Func::ExtractMonth | Func::ExtractDay | Func::YearMonth => {
                let vals = vals
                    .iter()
                    .map(|&t| match func {
                        Func::ExtractYear => vdb_types::date::year(t),
                        Func::ExtractMonth => vdb_types::date::month(t),
                        Func::ExtractDay => vdb_types::date::day(t),
                        _ => vdb_types::date::year_month(t),
                    })
                    .collect();
                return Ok(VCol::I64 {
                    vals,
                    valid: valid.clone(),
                    ts: false,
                });
            }
            Func::Abs if !ts => {
                return Ok(VCol::I64 {
                    vals: vals.iter().map(|&x| x.abs()).collect(),
                    valid: valid.clone(),
                    ts: false,
                });
            }
            _ => {}
        }
    }
    if let ([VCol::F64 { vals, valid }], Func::Abs) = (vargs.as_slice(), func) {
        return Ok(VCol::F64 {
            vals: vals.iter().map(|&x| x.abs()).collect(),
            valid: valid.clone(),
        });
    }
    // String functions over dictionary codes: once per distinct value.
    if let ([VCol::Str { dict, codes, valid }], Func::Length | Func::Lower | Func::Upper) =
        (vargs.as_slice(), func)
    {
        let per_code: Vec<Value> = dict
            .entries()
            .iter()
            .map(|e| match func {
                Func::Length => Value::Integer(e.chars().count() as i64),
                Func::Lower => Value::Varchar(e.to_lowercase()),
                _ => Value::Varchar(e.to_uppercase()),
            })
            .collect();
        let out: Vec<Value> = (0..n)
            .map(|i| {
                if bit(valid, i) {
                    per_code[codes[i] as usize].clone()
                } else {
                    Value::Null
                }
            })
            .collect();
        return Ok(promote_plain(out));
    }
    // Generic scalar call: per-row argument assembly, shared kernels.
    let mut row_args = vec![Value::Null; vargs.len()];
    generic_rows(n, |i| {
        for (slot, a) in row_args.iter_mut().zip(&vargs) {
            *slot = a.value_of(i);
        }
        eval_func(func, &row_args)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::date;

    fn typed(values: &[Value]) -> ColumnSlice {
        ColumnSlice::Typed(TypedVector::from_values(values).expect("homogeneous"))
    }

    fn ints(xs: &[i64]) -> ColumnSlice {
        typed(&xs.iter().copied().map(Value::Integer).collect::<Vec<_>>())
    }

    /// Row-wise reference over the batch's logical rows.
    fn reference(batch: &Batch, e: &Expr) -> Vec<Value> {
        batch.rows().iter().map(|r| e.eval(r).unwrap()).collect()
    }

    fn assert_agrees(batch: &Batch, e: &Expr) {
        let col = eval_expr_column(batch, e).unwrap();
        assert_eq!(col.to_values(), reference(batch, e), "expr {e}");
    }

    #[test]
    fn native_arithmetic_with_nulls() {
        let batch = Batch::new(vec![
            typed(&[Value::Integer(1), Value::Null, Value::Integer(3)]),
            typed(&[Value::Integer(10), Value::Integer(20), Value::Null]),
        ]);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul] {
            assert_agrees(
                &batch,
                &Expr::binary(op, Expr::col(0, "a"), Expr::col(1, "b")),
            );
            assert_agrees(&batch, &Expr::binary(op, Expr::col(0, "a"), Expr::int(7)));
        }
        let col = eval_expr_column(
            &batch,
            &Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::col(1, "b")),
        )
        .unwrap();
        assert!(col.is_typed(), "native output");
    }

    #[test]
    fn float_and_mixed_arithmetic() {
        let batch = Batch::new(vec![
            typed(&[Value::Float(1.5), Value::Float(-2.0), Value::Null]),
            ints(&[2, 3, 4]),
        ]);
        for op in [BinOp::Add, BinOp::Mul, BinOp::Sub] {
            assert_agrees(
                &batch,
                &Expr::binary(op, Expr::col(0, "f"), Expr::col(1, "i")),
            );
        }
        assert_agrees(
            &batch,
            &Expr::binary(BinOp::Div, Expr::col(0, "f"), Expr::lit(Value::Float(2.0))),
        );
    }

    #[test]
    fn division_by_zero_errors_only_when_a_row_hits_it() {
        let batch = Batch::new(vec![ints(&[1, 2, 3])]);
        let div = Expr::binary(BinOp::Div, Expr::int(10), Expr::col(0, "a"));
        assert_agrees(&batch, &div);
        let zero = Batch::new(vec![ints(&[1, 0])]);
        assert!(eval_expr_column(&zero, &div).is_err());
        // Guarded by CASE: the zero row never evaluates the division.
        let guarded = Expr::case(
            vec![(
                Expr::binary(BinOp::Ne, Expr::col(0, "a"), Expr::int(0)),
                div.clone(),
            )],
            Some(Expr::int(-1)),
        );
        assert_agrees(&zero, &guarded);
    }

    #[test]
    fn case_and_boolean_logic_match_row_semantics() {
        let batch = Batch::new(vec![
            typed(&[
                Value::Integer(1),
                Value::Integer(5),
                Value::Null,
                Value::Integer(9),
            ]),
            typed(&[
                Value::Varchar("a".into()),
                Value::Varchar("b".into()),
                Value::Varchar("a".into()),
                Value::Null,
            ]),
        ]);
        let case = Expr::case(
            vec![
                (
                    Expr::binary(BinOp::Gt, Expr::col(0, "a"), Expr::int(4)),
                    Expr::lit(Value::Varchar("big".into())),
                ),
                (
                    Expr::eq(Expr::col(1, "s"), Expr::lit(Value::Varchar("a".into()))),
                    Expr::lit(Value::Varchar("is-a".into())),
                ),
            ],
            Some(Expr::lit(Value::Varchar("other".into()))),
        );
        assert_agrees(&batch, &case);
        let logic = Expr::or(
            Expr::and(
                Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(5)),
                Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(9)),
            ),
            Expr::eq(Expr::col(1, "s"), Expr::lit(Value::Varchar("a".into()))),
        );
        assert_agrees(&batch, &logic);
    }

    #[test]
    fn constant_projection_emits_single_run_rle() {
        let batch = Batch::new(vec![ints(&[1, 2, 3, 4])]);
        let col = eval_expr_column(
            &batch,
            &Expr::binary(BinOp::Mul, Expr::int(6), Expr::int(7)),
        )
        .unwrap();
        let ColumnSlice::Rle(rv) = &col else {
            panic!("constant must stay encoded, got {col:?}");
        };
        assert_eq!(rv.runs(), &[(Value::Integer(42), 4)]);
    }

    #[test]
    fn rle_input_evaluates_per_run() {
        let batch = Batch::new(vec![ColumnSlice::rle(vec![
            (Value::Integer(2), 500),
            (Value::Integer(3), 250),
            (Value::Null, 3),
        ])]);
        let e = Expr::binary(BinOp::Mul, Expr::col(0, "a"), Expr::int(10));
        let col = eval_expr_column(&batch, &e).unwrap();
        let ColumnSlice::Rle(rv) = &col else {
            panic!("RLE in, RLE out; got {col:?}");
        };
        assert_eq!(
            rv.runs(),
            &[
                (Value::Integer(20), 500),
                (Value::Integer(30), 250),
                (Value::Null, 3),
            ]
        );
        // And through a selection the runs shorten but stay runs.
        let mask: Vec<bool> = (0..753).map(|i| i < 650).collect();
        let filtered = batch.into_filtered(&mask);
        let col = eval_expr_column(&filtered, &e).unwrap();
        assert_eq!(col.len(), 650);
        assert!(col.is_rle());
    }

    #[test]
    fn dict_input_evaluates_per_distinct_code() {
        let values: Vec<Value> = (0..100)
            .map(|i| {
                if i % 10 == 0 {
                    Value::Null
                } else {
                    Value::Varchar(format!("s{}", i % 3))
                }
            })
            .collect();
        let batch = Batch::new(vec![typed(&values)]);
        let e = Expr::call(Func::Upper, vec![Expr::col(0, "s")]);
        assert_agrees(&batch, &e);
        let e = Expr::call(Func::Length, vec![Expr::col(0, "s")]);
        assert_agrees(&batch, &e);
    }

    #[test]
    fn in_between_isnull_cast_agree() {
        let batch = Batch::new(vec![
            typed(&[
                Value::Integer(1),
                Value::Null,
                Value::Integer(5),
                Value::Integer(7),
            ]),
            typed(&[
                Value::Float(1.0),
                Value::Float(5.5),
                Value::Null,
                Value::Float(7.0),
            ]),
        ]);
        assert_agrees(
            &batch,
            &Expr::in_list(
                Expr::col(0, "a"),
                vec![
                    Value::Integer(5),
                    Value::Float(7.0),
                    Value::Varchar("x".into()),
                ],
                false,
            ),
        );
        assert_agrees(
            &batch,
            &Expr::in_list(
                Expr::col(1, "f"),
                vec![Value::Integer(1), Value::Float(5.5)],
                true,
            ),
        );
        assert_agrees(
            &batch,
            &Expr::between(Expr::col(0, "a"), Expr::int(2), Expr::int(6)),
        );
        assert_agrees(&batch, &Expr::is_null(Expr::col(1, "f"), false));
        assert_agrees(&batch, &Expr::is_null(Expr::col(0, "a"), true));
        assert_agrees(
            &batch,
            &Expr::Cast {
                input: Box::new(Expr::col(0, "a")),
                to: DataType::Float,
            },
        );
        assert_agrees(
            &batch,
            &Expr::Cast {
                input: Box::new(Expr::col(1, "f")),
                to: DataType::Integer,
            },
        );
    }

    #[test]
    fn date_extraction_native() {
        let ts = date::timestamp_from_civil(2012, 5, 17, 10, 30, 0);
        let batch = Batch::new(vec![typed(&[Value::Timestamp(ts), Value::Null])]);
        for f in [
            Func::ExtractYear,
            Func::ExtractMonth,
            Func::ExtractDay,
            Func::YearMonth,
        ] {
            assert_agrees(&batch, &Expr::call(f, vec![Expr::col(0, "ts")]));
        }
    }

    #[test]
    fn boolean_literals_compare_by_rank_outside_the_integer_family() {
        // `Value::cmp` treats Boolean numerically against Integer only;
        // against Float and Timestamp it falls back to the type rank. The
        // kernels must agree with row-wise evaluation on all three.
        let batch = Batch::new(vec![
            typed(&[Value::Float(0.5), Value::Float(1.5)]),
            typed(&[Value::Timestamp(0), Value::Timestamp(1)]),
            ints(&[0, 1]),
        ]);
        for col in 0..3 {
            for op in [BinOp::Lt, BinOp::Eq, BinOp::Ge] {
                assert_agrees(
                    &batch,
                    &Expr::binary(op, Expr::col(col, "c"), Expr::lit(Value::Boolean(true))),
                );
            }
            assert_agrees(
                &batch,
                &Expr::in_list(Expr::col(col, "c"), vec![Value::Boolean(true)], false),
            );
        }
    }

    #[test]
    fn rle_predicate_skips_selection_excluded_runs() {
        // A run the selection removed entirely must never be evaluated:
        // the cat=0 run would divide by zero, but no surviving row
        // touches it (mirroring row-wise evaluation exactly).
        let batch = Batch::new(vec![ColumnSlice::rle(vec![
            (Value::Integer(0), 4),
            (Value::Integer(2), 4),
        ])]);
        let mask: Vec<bool> = (0..8).map(|i| i >= 4).collect();
        let filtered = batch.into_filtered(&mask);
        let pred = Expr::binary(
            BinOp::Gt,
            Expr::binary(BinOp::Div, Expr::int(100), Expr::col(0, "cat")),
            Expr::int(3),
        );
        let sel = eval_predicate(&filtered, &pred).expect("excluded run never evaluated");
        assert_eq!(sel.indices(), &[4, 5, 6, 7]);
        // With the zero run selected, the error must surface.
        let full = Batch::new(vec![ColumnSlice::rle(vec![
            (Value::Integer(0), 2),
            (Value::Integer(2), 2),
        ])]);
        assert!(eval_predicate(&full, &pred).is_err());
    }

    #[test]
    fn predicate_selection_respects_existing_selection() {
        let batch = Batch::new(vec![ints(&[0, 1, 2, 3, 4, 5, 6, 7])])
            .with_selection(SelectionVector::new(vec![1, 3, 5, 7]));
        let pred = Expr::or(
            Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(3)),
            Expr::binary(BinOp::Gt, Expr::col(0, "a"), Expr::int(6)),
        );
        let sel = eval_predicate(&batch, &pred).unwrap();
        assert_eq!(sel.indices(), &[1, 7]);
    }

    #[test]
    fn timestamp_plus_integer_stays_timestamp() {
        let batch = Batch::new(vec![typed(&[Value::Timestamp(100), Value::Timestamp(200)])]);
        let e = Expr::binary(BinOp::Add, Expr::col(0, "ts"), Expr::int(50));
        let col = eval_expr_column(&batch, &e).unwrap();
        assert_eq!(
            col.to_values(),
            vec![Value::Timestamp(150), Value::Timestamp(250)]
        );
        assert_agrees(&batch, &e);
        // Multiplying a timestamp falls into the float path, like row-wise.
        assert_agrees(
            &batch,
            &Expr::binary(BinOp::Mul, Expr::col(0, "ts"), Expr::int(2)),
        );
    }
}
