//! GroupBy operators (§6.1 #2).
//!
//! "We have several different hash based algorithms depending on what is
//! needed for maximal performance, how much memory is allotted, and if the
//! operator must produce unique groups. Vertica also implements classic
//! pipelined (one-pass) aggregates, with a choice to keep the incoming data
//! encoded or not."
//!
//! * [`HashGroupByOp`] — hash aggregation with spill-to-disk partitioning
//!   when the memory budget is exceeded.
//! * [`PipelinedGroupByOp`] — one-pass aggregation over input sorted by the
//!   group columns; consumes RLE runs without expansion (encoded execution).
//! * [`PrepassGroupByOp`] — the §6.1 "prepass" operator: an L1-cache-sized
//!   hash table that aggregates immediately after the scan, emits partial
//!   results whenever it fills, and turns itself off at runtime if it is
//!   not actually reducing the row count.
//!
//! Two-phase (prepass → final) plans are assembled via [`two_phase_aggs`],
//! which is also how distributed aggregation merges per-node partials.

use crate::aggregate::{AggCall, AggFunc, AggState};
use crate::batch::{Batch, ColumnSlice, BATCH_SIZE};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator};
use crate::vector::{Bitmap, SelectionVector, TypedVector, VectorData};
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DataType, DbError, DbResult, Expr, Row, Value};

// ---------------------------------------------------------------------------
// Hash GroupBy with spill partitions
// ---------------------------------------------------------------------------

/// Number of spill partitions (keys are hash-partitioned so each partition
/// fits in a fraction of the budget at finalize time).
const SPILL_PARTITIONS: usize = 16;

/// Group hash table specialized for single-column keys (no per-row
/// `Vec<Value>` allocation on the hot path).
enum GroupTable {
    One(HashMap<Value, Vec<AggState>>),
    Many(HashMap<Vec<Value>, Vec<AggState>>),
}

impl GroupTable {
    fn new(key_arity: usize) -> GroupTable {
        if key_arity == 1 {
            GroupTable::One(HashMap::new())
        } else {
            GroupTable::Many(HashMap::new())
        }
    }

    /// Get-or-insert the state vector for an owned single-column key;
    /// `new_group` is set when a fresh group was created (memory
    /// accounting).
    fn state_for_one(
        &mut self,
        key: Value,
        make: impl FnOnce() -> Vec<AggState>,
        new_group: &mut bool,
    ) -> &mut Vec<AggState> {
        let GroupTable::One(m) = self else {
            unreachable!("single-column table")
        };
        match m.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                *new_group = true;
                e.insert(make())
            }
        }
    }

    /// Multi-column variant of [`GroupTable::state_for_one`].
    fn state_for_many(
        &mut self,
        key: Vec<Value>,
        make: impl FnOnce() -> Vec<AggState>,
        new_group: &mut bool,
    ) -> &mut Vec<AggState> {
        let GroupTable::Many(m) = self else {
            unreachable!("multi-column table")
        };
        match m.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                *new_group = true;
                e.insert(make())
            }
        }
    }

    fn drain_entries(&mut self) -> Vec<(Vec<Value>, Vec<AggState>)> {
        match self {
            GroupTable::One(m) => m.drain().map(|(k, v)| (vec![k], v)).collect(),
            GroupTable::Many(m) => m.drain().collect(),
        }
    }
}

pub struct HashGroupByOp {
    input: Option<BoxedOperator>,
    group_columns: Vec<usize>,
    aggs: Vec<AggCall>,
    budget: MemoryBudget,
    /// Finished groups waiting to be emitted.
    output: Vec<Row>,
    emitted: usize,
    spill_files: Vec<Option<std::fs::File>>,
    spill_dir: Option<std::path::PathBuf>,
    spilled: bool,
    /// Running states for the no-GROUP-BY (global aggregate) fast path.
    global: Option<Vec<AggState>>,
}

impl HashGroupByOp {
    pub fn new(
        input: BoxedOperator,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
        budget: MemoryBudget,
    ) -> HashGroupByOp {
        HashGroupByOp {
            input: Some(input),
            group_columns,
            aggs,
            budget,
            output: Vec::new(),
            emitted: 0,
            spill_files: (0..SPILL_PARTITIONS).map(|_| None).collect(),
            spill_dir: None,
            spilled: false,
            global: None,
        }
    }

    /// Global-aggregate path: COUNT(*) consumes whole batches by length;
    /// other aggregates fold per column — typed vectors natively, RLE by
    /// whole runs (SUM over a run is one multiply), honoring the batch's
    /// selection vector — without row materialization.
    fn consume_global(&mut self, batch: Batch) -> DbResult<()> {
        let states = self
            .global
            .get_or_insert_with(|| self.aggs.iter().map(|a| AggState::new(a.func)).collect());
        let n = batch.len() as u64;
        // Pure COUNT(*): no value access at all.
        if self.aggs.iter().all(|a| a.func == AggFunc::CountStar) {
            for s in states.iter_mut() {
                s.update_n(AggFunc::CountStar, &Value::Null, n)?;
            }
            return Ok(());
        }
        let sel = batch.selection();
        for (a, s) in self.aggs.iter().zip(states.iter_mut()) {
            if a.func == AggFunc::CountStar {
                s.update_n(AggFunc::CountStar, &Value::Null, n)?;
                continue;
            }
            match &batch.columns[a.input] {
                ColumnSlice::Plain(values) => match sel {
                    None => {
                        for v in values {
                            s.update(a.func, v)?;
                        }
                    }
                    Some(sel) => {
                        for i in sel.iter() {
                            s.update(a.func, &values[i])?;
                        }
                    }
                },
                ColumnSlice::Rle(rv) => {
                    let filtered;
                    let runs = match sel {
                        None => rv.runs(),
                        Some(sel) => {
                            filtered = rv.filter(sel);
                            filtered.runs()
                        }
                    };
                    for (v, len) in runs {
                        s.update_n(a.func, v, u64::from(*len))?;
                    }
                }
                ColumnSlice::Typed(tv) => update_global_typed(s, a.func, tv, sel)?,
            }
        }
        Ok(())
    }

    pub fn did_spill(&self) -> bool {
        self.spilled
    }

    fn key_partition(key: &[Value]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in key {
            h = h.rotate_left(19) ^ v.hash64();
        }
        (h as usize) % SPILL_PARTITIONS
    }

    fn spill_table(&mut self, table: &mut GroupTable) -> DbResult<()> {
        self.spilled = true;
        if self.spill_dir.is_none() {
            let dir = std::env::temp_dir().join(format!(
                "vdb-spill-{}-{:p}",
                std::process::id(),
                self as *const _
            ));
            std::fs::create_dir_all(&dir)?;
            self.spill_dir = Some(dir);
        }
        let dir = self.spill_dir.clone().unwrap();
        let mut buffers: Vec<Writer> = (0..SPILL_PARTITIONS).map(|_| Writer::new()).collect();
        for (key, states) in table.drain_entries() {
            let p = Self::key_partition(&key);
            let w = &mut buffers[p];
            w.put_uvarint(key.len() as u64);
            for v in &key {
                w.put_value(v);
            }
            for s in &states {
                encode_agg_state(s, w);
            }
        }
        for (p, w) in buffers.into_iter().enumerate() {
            if w.is_empty() {
                continue;
            }
            if self.spill_files[p].is_none() {
                let f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(format!("part{p}.spill")))?;
                self.spill_files[p] = Some(f);
            }
            let bytes = w.into_bytes();
            let f = self.spill_files[p].as_mut().unwrap();
            f.write_all(&(bytes.len() as u64).to_le_bytes())?;
            f.write_all(&bytes)?;
        }
        Ok(())
    }

    fn consume_input(&mut self) -> DbResult<()> {
        let Some(mut input) = self.input.take() else {
            return Ok(());
        };
        let mut table = GroupTable::new(self.group_columns.len());
        let mut approx = 0usize;
        let per_group = self.aggs.len() * 24 + 48;
        while let Some(batch) = input.next_batch()? {
            // Global aggregates (no GROUP BY): fold without any hashing.
            if self.group_columns.is_empty() {
                self.consume_global(batch)?;
                continue;
            }
            // Grouped path: iterate logical rows through column accessors —
            // no row vector is ever materialized, and typed aggregate
            // inputs fold natively.
            let accessors: Vec<ColAccess<'_>> = self
                .aggs
                .iter()
                .map(|a| ColAccess::new(&batch.columns, a))
                .collect();
            let single_key = self.group_columns.len() == 1;
            let key_col = self.group_columns[0];
            // Compressed-domain fast paths for single-column keys: the hot
            // loop never constructs (or hashes) a key `Value` per row.
            if single_key {
                match &batch.columns[key_col] {
                    // Dictionary-coded keys aggregate per *code* into a
                    // code-indexed local table; each distinct key's string
                    // is materialized once per batch at merge time.
                    ColumnSlice::Typed(tv) => {
                        if let VectorData::Dict { dict, codes } = tv.data() {
                            let mut local: Vec<Option<Vec<AggState>>> =
                                (0..dict.len()).map(|_| None).collect();
                            let mut null_partial: Option<Vec<AggState>> = None;
                            for li in 0..batch.len() {
                                let pi = batch.physical_index(li);
                                let slot = if tv.is_valid(pi) {
                                    &mut local[codes[pi] as usize]
                                } else {
                                    &mut null_partial
                                };
                                let states = slot.get_or_insert_with(|| {
                                    self.aggs.iter().map(|a| AggState::new(a.func)).collect()
                                });
                                for (acc, s) in accessors.iter().zip(states.iter_mut()) {
                                    acc.update(s, pi)?;
                                }
                            }
                            let merged = local
                                .into_iter()
                                .enumerate()
                                .filter_map(|(code, p)| {
                                    p.map(|p| {
                                        (Value::Varchar(dict.get(code as u32).to_string()), p)
                                    })
                                })
                                .chain(null_partial.map(|p| (Value::Null, p)));
                            for (key, partial) in merged {
                                let mut new_group = false;
                                let states = table.state_for_one(key, Vec::new, &mut new_group);
                                if new_group {
                                    *states = partial;
                                    approx += per_group + 16;
                                } else {
                                    for (e, s) in states.iter_mut().zip(partial) {
                                        e.merge(s)?;
                                    }
                                }
                                if self.budget.exceeded_by(approx) {
                                    self.spill_table(&mut table)?;
                                    approx = 0;
                                }
                            }
                            continue;
                        }
                    }
                    // RLE keys probe the table once per *run*, not per row.
                    ColumnSlice::Rle(rv) => {
                        let filtered;
                        let runs = match batch.selection() {
                            None => rv.runs(),
                            Some(sel) => {
                                filtered = rv.filter(sel);
                                filtered.runs()
                            }
                        };
                        let mut li = 0usize;
                        for (v, n) in runs {
                            let mut new_group = false;
                            let states = table.state_for_one(
                                v.clone(),
                                || self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                                &mut new_group,
                            );
                            if new_group {
                                approx += per_group + 16;
                            }
                            for _ in 0..*n {
                                let pi = batch.physical_index(li);
                                li += 1;
                                for (acc, s) in accessors.iter().zip(states.iter_mut()) {
                                    acc.update(s, pi)?;
                                }
                            }
                            if self.budget.exceeded_by(approx) {
                                self.spill_table(&mut table)?;
                                approx = 0;
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            for li in 0..batch.len() {
                let pi = batch.physical_index(li);
                let mut new_group = false;
                let states = if single_key {
                    table.state_for_one(
                        batch.columns[key_col].value_at(pi),
                        || self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                        &mut new_group,
                    )
                } else {
                    let key: Vec<Value> = self
                        .group_columns
                        .iter()
                        .map(|&c| batch.columns[c].value_at(pi))
                        .collect();
                    table.state_for_many(
                        key,
                        || self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                        &mut new_group,
                    )
                };
                if new_group {
                    approx += per_group + 16 * self.group_columns.len();
                }
                for (acc, s) in accessors.iter().zip(states.iter_mut()) {
                    acc.update(s, pi)?;
                }
                if self.budget.exceeded_by(approx) {
                    self.spill_table(&mut table)?;
                    approx = 0;
                }
            }
        }
        if self.group_columns.is_empty() {
            let states = self
                .global
                .take()
                .unwrap_or_else(|| self.aggs.iter().map(|a| AggState::new(a.func)).collect());
            self.output = vec![finish_group(Vec::new(), states)];
            return Ok(());
        }
        if !self.spilled {
            self.output = table
                .drain_entries()
                .into_iter()
                .map(|(key, states)| finish_group(key, states))
                .collect();
            // Deterministic output order helps tests; real engines do not
            // guarantee one.
            self.output.sort();
            return Ok(());
        }
        // Spill path: flush the tail table, then merge partition by
        // partition (each partition's key set is disjoint).
        self.spill_table(&mut table)?;
        drop(table);
        let dir = self.spill_dir.clone().unwrap();
        for p in 0..SPILL_PARTITIONS {
            self.spill_files[p] = None; // close for reading
            let path = dir.join(format!("part{p}.spill"));
            let Ok(mut f) = std::fs::File::open(&path) else {
                continue;
            };
            let mut merged: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            loop {
                let mut len_buf = [0u8; 8];
                match f.read_exact(&mut len_buf) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => return Err(e.into()),
                }
                let len = u64::from_le_bytes(len_buf) as usize;
                let mut chunk = vec![0u8; len];
                f.read_exact(&mut chunk)?;
                let mut r = Reader::new(&chunk);
                while !r.is_empty() {
                    let klen = r.get_uvarint()? as usize;
                    let mut key = Vec::with_capacity(klen);
                    for _ in 0..klen {
                        key.push(r.get_value()?);
                    }
                    let mut states = Vec::with_capacity(self.aggs.len());
                    for _ in 0..self.aggs.len() {
                        states.push(decode_agg_state(&mut r)?);
                    }
                    match merged.get_mut(&key) {
                        Some(existing) => {
                            for (e, s) in existing.iter_mut().zip(states) {
                                e.merge(s)?;
                            }
                        }
                        None => {
                            merged.insert(key, states);
                        }
                    }
                }
            }
            self.output.extend(
                merged
                    .into_iter()
                    .map(|(key, states)| finish_group(key, states)),
            );
            let _ = std::fs::remove_file(&path);
        }
        let _ = std::fs::remove_dir(&dir);
        self.output.sort();
        Ok(())
    }
}

/// Per-aggregate view of an input column, letting the grouped hash path
/// fold values straight from the column representation.
struct ColAccess<'a> {
    func: AggFunc,
    kind: ColAccessKind<'a>,
}

enum ColAccessKind<'a> {
    /// COUNT(*) touches no column.
    CountStar,
    /// Native integral buffer (`Integer`/`Timestamp`).
    I64(&'a [i64], Option<&'a Bitmap>, DataType),
    /// Native float buffer.
    F64(&'a [f64], Option<&'a Bitmap>),
    /// Plain values, folded by reference (no clone).
    PlainRef(&'a [Value]),
    /// Anything else (RLE, bool/dict vectors): point access.
    Generic(&'a ColumnSlice),
}

impl<'a> ColAccess<'a> {
    fn new(columns: &'a [ColumnSlice], a: &AggCall) -> ColAccess<'a> {
        let kind = if a.func == AggFunc::CountStar {
            ColAccessKind::CountStar
        } else {
            match &columns[a.input] {
                ColumnSlice::Plain(values) => ColAccessKind::PlainRef(values),
                ColumnSlice::Typed(tv) => match tv.data() {
                    VectorData::Int64(xs) => {
                        ColAccessKind::I64(xs, tv.validity(), DataType::Integer)
                    }
                    VectorData::Timestamp(xs) => {
                        ColAccessKind::I64(xs, tv.validity(), DataType::Timestamp)
                    }
                    VectorData::Float64(xs) => ColAccessKind::F64(xs, tv.validity()),
                    _ => ColAccessKind::Generic(&columns[a.input]),
                },
                other => ColAccessKind::Generic(other),
            }
        };
        ColAccess { func: a.func, kind }
    }

    /// Fold physical row `pi` into `s`.
    #[inline]
    fn update(&self, s: &mut AggState, pi: usize) -> DbResult<()> {
        match &self.kind {
            ColAccessKind::CountStar => s.update(self.func, &Value::Null),
            ColAccessKind::I64(xs, validity, ty) => {
                if validity.is_none_or(|v| v.get(pi)) {
                    s.update_i64(self.func, xs[pi], *ty)
                } else {
                    Ok(()) // NULL: every aggregate but COUNT(*) skips it
                }
            }
            ColAccessKind::F64(xs, validity) => {
                if validity.is_none_or(|v| v.get(pi)) {
                    s.update_f64(self.func, xs[pi])
                } else {
                    Ok(())
                }
            }
            ColAccessKind::PlainRef(values) => s.update(self.func, &values[pi]),
            ColAccessKind::Generic(col) => s.update(self.func, &col.value_at(pi)),
        }
    }
}

/// Fold a whole typed vector (optionally through a selection) into one
/// aggregate state — the global-aggregate typed fast path.
fn update_global_typed(
    s: &mut AggState,
    func: AggFunc,
    tv: &TypedVector,
    sel: Option<&SelectionVector>,
) -> DbResult<()> {
    let mut fold = |i: usize| -> DbResult<()> {
        if !tv.is_valid(i) {
            return Ok(());
        }
        match tv.data() {
            VectorData::Int64(xs) => s.update_i64(func, xs[i], DataType::Integer),
            VectorData::Timestamp(xs) => s.update_i64(func, xs[i], DataType::Timestamp),
            VectorData::Float64(xs) => s.update_f64(func, xs[i]),
            _ => s.update(func, &tv.value_at(i)),
        }
    };
    match sel {
        None => {
            for i in 0..tv.len() {
                fold(i)?;
            }
        }
        Some(sel) => {
            for i in sel.iter() {
                fold(i)?;
            }
        }
    }
    Ok(())
}

fn finish_group(key: Vec<Value>, states: Vec<AggState>) -> Row {
    let mut row = key;
    for s in states {
        row.push(s.finish());
    }
    row
}

impl Operator for HashGroupByOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.input.is_some() {
            self.consume_input()?;
        }
        if self.emitted >= self.output.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.output.len());
        let rows: Vec<Row> = self.output[self.emitted..end].to_vec();
        self.emitted = end;
        // Finished groups go back out as typed columns so downstream
        // operators (projection, sort, HAVING) stay on the native paths.
        Ok(Some(crate::batch::typed_batch_from_rows(rows)))
    }

    fn name(&self) -> String {
        format!(
            "GroupByHash(keys={:?}, aggs={})",
            self.group_columns,
            self.aggs.len()
        )
    }
}

fn encode_agg_state(s: &AggState, w: &mut Writer) {
    match s {
        AggState::Count(c) => {
            w.put_u8(0);
            w.put_uvarint(*c);
        }
        AggState::CountDistinct(set) => {
            w.put_u8(1);
            w.put_uvarint(set.len() as u64);
            for v in set {
                w.put_value(v);
            }
        }
        AggState::SumInt(v, seen) => {
            w.put_u8(2);
            w.put_ivarint(*v);
            w.put_u8(u8::from(*seen));
        }
        AggState::SumFloat(v, seen) => {
            w.put_u8(3);
            w.put_f64(*v);
            w.put_u8(u8::from(*seen));
        }
        AggState::Min(v) => {
            w.put_u8(4);
            w.put_value(&v.clone().unwrap_or(Value::Null));
            w.put_u8(u8::from(v.is_some()));
        }
        AggState::Max(v) => {
            w.put_u8(5);
            w.put_value(&v.clone().unwrap_or(Value::Null));
            w.put_u8(u8::from(v.is_some()));
        }
        AggState::Avg(sum, count) => {
            w.put_u8(6);
            w.put_f64(*sum);
            w.put_uvarint(*count);
        }
    }
}

fn decode_agg_state(r: &mut Reader<'_>) -> DbResult<AggState> {
    Ok(match r.get_u8()? {
        0 => AggState::Count(r.get_uvarint()?),
        1 => {
            let n = r.get_uvarint()? as usize;
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..n {
                set.insert(r.get_value()?);
            }
            AggState::CountDistinct(set)
        }
        2 => AggState::SumInt(r.get_ivarint()?, r.get_u8()? != 0),
        3 => AggState::SumFloat(r.get_f64()?, r.get_u8()? != 0),
        4 => {
            let v = r.get_value()?;
            let some = r.get_u8()? != 0;
            AggState::Min(some.then_some(v))
        }
        5 => {
            let v = r.get_value()?;
            let some = r.get_u8()? != 0;
            AggState::Max(some.then_some(v))
        }
        6 => AggState::Avg(r.get_f64()?, r.get_uvarint()?),
        t => return Err(DbError::Corrupt(format!("bad agg state tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Pipelined (one-pass) GroupBy over sorted input
// ---------------------------------------------------------------------------

/// One-pass aggregation: input must arrive sorted by the group columns
/// (projection sort order). Emits each group as soon as the key changes, so
/// memory is O(1) groups. When the (single) group column arrives as RLE
/// runs and the aggregates only need run-level math, runs are consumed
/// without expansion.
pub struct PipelinedGroupByOp {
    input: BoxedOperator,
    group_columns: Vec<usize>,
    aggs: Vec<AggCall>,
    current: Option<(Vec<Value>, Vec<AggState>)>,
    pending: Vec<Row>,
    done: bool,
    /// Count of values aggregated via whole-run updates (encoded-exec
    /// telemetry for the ablation bench).
    run_aggregated_rows: u64,
}

impl PipelinedGroupByOp {
    pub fn new(
        input: BoxedOperator,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    ) -> PipelinedGroupByOp {
        PipelinedGroupByOp {
            input,
            group_columns,
            aggs,
            current: None,
            pending: Vec::new(),
            done: false,
            run_aggregated_rows: 0,
        }
    }

    pub fn run_aggregated_rows(&self) -> u64 {
        self.run_aggregated_rows
    }

    fn flush_current(&mut self) {
        if let Some((key, states)) = self.current.take() {
            self.pending.push(finish_group(key, states));
        }
    }

    fn update_group(&mut self, key: Vec<Value>, row_values: RunOrRow<'_>) -> DbResult<()> {
        let switch = match &self.current {
            Some((cur, _)) => cur != &key,
            None => true,
        };
        if switch {
            self.flush_current();
            self.current = Some((
                key,
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            ));
        }
        let (_, states) = self.current.as_mut().unwrap();
        match row_values {
            RunOrRow::Row { value_of } => {
                for (a, s) in self.aggs.iter().zip(states.iter_mut()) {
                    let v = if a.func == AggFunc::CountStar {
                        Value::Null
                    } else {
                        value_of(a.input)
                    };
                    s.update(a.func, &v)?;
                }
            }
            RunOrRow::Run { value_of, n } => {
                self.run_aggregated_rows += u64::from(n);
                for (a, s) in self.aggs.iter().zip(states.iter_mut()) {
                    let v = if a.func == AggFunc::CountStar {
                        Value::Null
                    } else {
                        value_of(a.input)
                    };
                    s.update_n(a.func, &v, u64::from(n))?;
                }
            }
        }
        Ok(())
    }

    /// Can this batch use the run fast path? Single group column arriving
    /// as RLE, and every aggregate input is either the group column itself
    /// or COUNT(*) — i.e. constant within a run.
    fn run_fast_path(&self, batch: &Batch) -> bool {
        if self.group_columns.len() != 1 {
            return false;
        }
        let gc = self.group_columns[0];
        if !batch.columns[gc].is_rle() {
            return false;
        }
        self.aggs
            .iter()
            .all(|a| a.func == AggFunc::CountStar || a.input == gc)
    }

    fn consume_batch(&mut self, batch: &Batch) -> DbResult<()> {
        if self.run_fast_path(batch) {
            let gc = self.group_columns[0];
            let ColumnSlice::Rle(rv) = &batch.columns[gc] else {
                unreachable!()
            };
            // A selection (from a filter or visibility) shortens runs but
            // never expands them.
            let filtered;
            let runs = match batch.selection() {
                None => rv.runs(),
                Some(sel) => {
                    filtered = rv.filter(sel);
                    filtered.runs()
                }
            };
            for (v, n) in runs {
                let key = vec![v.clone()];
                let vv = v.clone();
                self.update_group(
                    key,
                    RunOrRow::Run {
                        value_of: &|_| vv.clone(),
                        n: *n,
                    },
                )?;
            }
            return Ok(());
        }
        // Columnar path: walk logical rows through column accessors — the
        // group key and each aggregate input construct one `Value` per
        // row, never a full row vector.
        for li in 0..batch.len() {
            let pi = batch.physical_index(li);
            let key: Vec<Value> = self
                .group_columns
                .iter()
                .map(|&c| batch.columns[c].value_at(pi))
                .collect();
            let value_of = |c: usize| batch.columns[c].value_at(pi);
            self.update_group(
                key,
                RunOrRow::Row {
                    value_of: &value_of,
                },
            )?;
        }
        Ok(())
    }
}

enum RunOrRow<'a> {
    Row {
        value_of: &'a dyn Fn(usize) -> Value,
    },
    Run {
        value_of: &'a dyn Fn(usize) -> Value,
        n: u32,
    },
}

impl Operator for PipelinedGroupByOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            if self.pending.len() >= BATCH_SIZE || (self.done && !self.pending.is_empty()) {
                let rows = std::mem::take(&mut self.pending);
                return Ok(Some(crate::batch::typed_batch_from_rows(rows)));
            }
            if self.done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                Some(batch) => self.consume_batch(&batch)?,
                None => {
                    self.flush_current();
                    self.done = true;
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("GroupByPipelined(keys={:?})", self.group_columns)
    }
}

// ---------------------------------------------------------------------------
// Prepass GroupBy (§6.1): bounded hash table, adaptive shutoff
// ---------------------------------------------------------------------------

/// Default prepass table size: "an L1 cache sized hash table".
pub const PREPASS_GROUPS: usize = 1024;

/// Aggregates eagerly with a bounded table; emits partial rows whenever the
/// table fills; disables itself if it is not reducing cardinality ("the EE
/// will decide at runtime to stop if it is not actually reducing the number
/// of rows which pass").
pub struct PrepassGroupByOp {
    input: BoxedOperator,
    group_columns: Vec<usize>,
    /// Partial-form aggregates (see [`two_phase_aggs`]).
    aggs: Vec<AggCall>,
    max_groups: usize,
    table: HashMap<Vec<Value>, Vec<AggState>>,
    pending: Vec<Row>,
    rows_in: u64,
    rows_out: u64,
    disabled: bool,
    done: bool,
}

impl PrepassGroupByOp {
    pub fn new(
        input: BoxedOperator,
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
        max_groups: usize,
    ) -> PrepassGroupByOp {
        PrepassGroupByOp {
            input,
            group_columns,
            aggs,
            max_groups,
            table: HashMap::new(),
            pending: Vec::new(),
            rows_in: 0,
            rows_out: 0,
            disabled: false,
            done: false,
        }
    }

    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    fn flush_table(&mut self) {
        for (key, states) in self.table.drain() {
            let mut row = key;
            for s in states {
                row.push(partial_value(s));
            }
            self.pending.push(row);
            self.rows_out += 1;
        }
    }

    /// A row passed through unaggregated, converted to partial layout.
    /// `key` is the already-gathered group key; `agg_value` yields each
    /// aggregate's input (column accessor — no row is materialized).
    fn passthrough_row(
        &mut self,
        key: Vec<Value>,
        agg_value: &dyn Fn(usize) -> Value,
    ) -> DbResult<()> {
        let mut out = key;
        for a in &self.aggs {
            let mut s = AggState::new(a.func);
            let v = if a.func == AggFunc::CountStar {
                Value::Null
            } else {
                agg_value(a.input)
            };
            s.update(a.func, &v)?;
            out.push(partial_value(s));
        }
        self.pending.push(out);
        self.rows_out += 1;
        Ok(())
    }
}

/// Partial state rendered as a value for transport between prepass and
/// final GroupBy (Avg is pre-split into SUM and COUNT by `two_phase_aggs`,
/// so every remaining state is single-valued).
fn partial_value(s: AggState) -> Value {
    s.finish()
}

impl Operator for PrepassGroupByOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            if !self.pending.is_empty() {
                let take = self.pending.len().min(BATCH_SIZE);
                let rows: Vec<Row> = self.pending.drain(..take).collect();
                return Ok(Some(crate::batch::typed_batch_from_rows(rows)));
            }
            if self.done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                None => {
                    self.flush_table();
                    self.done = true;
                }
                Some(batch) => {
                    // Columnar consume: group keys and aggregate inputs
                    // come from column accessors, not pivoted rows.
                    for li in 0..batch.len() {
                        let pi = batch.physical_index(li);
                        self.rows_in += 1;
                        let key: Vec<Value> = self
                            .group_columns
                            .iter()
                            .map(|&c| batch.columns[c].value_at(pi))
                            .collect();
                        let agg_value = |c: usize| batch.columns[c].value_at(pi);
                        if self.disabled {
                            self.passthrough_row(key, &agg_value)?;
                            continue;
                        }
                        if !self.table.contains_key(&key) && self.table.len() >= self.max_groups {
                            // Table full: emit current contents and start
                            // afresh with the next input (§6.1).
                            self.flush_table();
                            // Adaptive shutoff: if we are not reducing rows,
                            // stop paying the hashing cost.
                            if self.rows_in > 4096 && self.rows_out * 10 > self.rows_in * 9 {
                                self.disabled = true;
                                self.passthrough_row(key, &agg_value)?;
                                continue;
                            }
                        }
                        let states = self.table.entry(key).or_insert_with(|| {
                            self.aggs.iter().map(|a| AggState::new(a.func)).collect()
                        });
                        for (a, s) in self.aggs.iter().zip(states.iter_mut()) {
                            let v = if a.func == AggFunc::CountStar {
                                Value::Null
                            } else {
                                agg_value(a.input)
                            };
                            s.update(a.func, &v)?;
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("GroupByPrepass(max_groups={})", self.max_groups)
    }
}

// ---------------------------------------------------------------------------
// Two-phase plan helper
// ---------------------------------------------------------------------------

/// Split aggregate calls into a `(partial, final, projection)` triple:
///
/// * `partial` — what the prepass (or each node) computes over raw input;
/// * `final` — what the final GroupBy computes over the partial rows
///   (column indexes refer to the partial layout: group columns first);
/// * `projection` — expressions over the final GroupBy's output producing
///   the user-visible columns (AVG = SUM/COUNT happens here).
///
/// Returns `None` when any aggregate is not decomposable (COUNT DISTINCT).
pub fn two_phase_aggs(
    group_arity: usize,
    aggs: &[AggCall],
) -> Option<(Vec<AggCall>, Vec<AggCall>, Vec<Expr>)> {
    let mut partial = Vec::new();
    let mut final_aggs = Vec::new();
    let mut project = Vec::new();
    // Final projection first lists the group columns unchanged.
    for g in 0..group_arity {
        project.push(Expr::col(g, format!("g{g}")));
    }
    for a in aggs {
        match a.func {
            AggFunc::CountDistinct => return None,
            AggFunc::CountStar | AggFunc::Count => {
                let pcol = group_arity + partial.len();
                partial.push(AggCall::new(
                    a.func,
                    a.input,
                    format!("p_{}", a.output_name),
                ));
                final_aggs.push(AggCall::new(AggFunc::Sum, pcol, a.output_name.clone()));
                project.push(Expr::col(
                    group_arity + final_aggs.len() - 1,
                    a.output_name.clone(),
                ));
            }
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let pcol = group_arity + partial.len();
                partial.push(AggCall::new(
                    a.func,
                    a.input,
                    format!("p_{}", a.output_name),
                ));
                final_aggs.push(AggCall::new(a.func, pcol, a.output_name.clone()));
                project.push(Expr::col(
                    group_arity + final_aggs.len() - 1,
                    a.output_name.clone(),
                ));
            }
            AggFunc::Avg => {
                let sum_col = group_arity + partial.len();
                partial.push(AggCall::new(
                    AggFunc::Sum,
                    a.input,
                    format!("p_sum_{}", a.output_name),
                ));
                let cnt_col = group_arity + partial.len();
                partial.push(AggCall::new(
                    AggFunc::Count,
                    a.input,
                    format!("p_cnt_{}", a.output_name),
                ));
                let fsum = group_arity + final_aggs.len();
                final_aggs.push(AggCall::new(
                    AggFunc::Sum,
                    sum_col,
                    format!("f_sum_{}", a.output_name),
                ));
                let fcnt = group_arity + final_aggs.len();
                final_aggs.push(AggCall::new(
                    AggFunc::Sum,
                    cnt_col,
                    format!("f_cnt_{}", a.output_name),
                ));
                project.push(Expr::binary(
                    vdb_types::BinOp::Div,
                    Expr::Cast {
                        input: Box::new(Expr::col(fsum, "sum")),
                        to: vdb_types::DataType::Float,
                    },
                    Expr::Cast {
                        input: Box::new(Expr::col(fcnt, "cnt")),
                        to: vdb_types::DataType::Float,
                    },
                ));
            }
        }
    }
    Some((partial, final_aggs, project))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::ProjectOp;
    use crate::operator::{collect_rows, ValuesOp};

    fn source_rows(n: i64, groups: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i % groups), Value::Integer(i)])
            .collect()
    }

    fn expected_counts(n: i64, groups: i64) -> Vec<Row> {
        (0..groups)
            .map(|g| {
                let count = (n / groups) + i64::from(g < n % groups);
                vec![Value::Integer(g), Value::Integer(count)]
            })
            .collect()
    }

    #[test]
    fn hash_groupby_counts() {
        let mut op = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(source_rows(10_000, 7))),
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
            MemoryBudget::unlimited(),
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows, expected_counts(10_000, 7));
        assert!(!op.did_spill());
    }

    #[test]
    fn hash_groupby_spills_and_stays_correct() {
        let mut op = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(source_rows(20_000, 5_000))),
            vec![0],
            vec![
                AggCall::new(AggFunc::CountStar, 0, "cnt"),
                AggCall::new(AggFunc::Sum, 1, "sum"),
                AggCall::new(AggFunc::Avg, 1, "avg"),
            ],
            MemoryBudget::new(64 * 1024),
        );
        let rows = collect_rows(&mut op).unwrap();
        assert!(op.did_spill(), "64KB budget must force a spill");
        assert_eq!(rows.len(), 5_000);
        // Spot-check group 0: members 0, 5000, 10000, 15000.
        let g0 = rows.iter().find(|r| r[0] == Value::Integer(0)).unwrap();
        assert_eq!(g0[1], Value::Integer(4));
        assert_eq!(g0[2], Value::Integer(30_000));
        assert_eq!(g0[3], Value::Float(7_500.0));
    }

    #[test]
    fn pipelined_matches_hash_on_sorted_input() {
        let mut rows = source_rows(5_000, 13);
        rows.sort();
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Min, 1, "min"),
            AggCall::new(AggFunc::Max, 1, "max"),
        ];
        let mut hash = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(rows.clone())),
            vec![0],
            aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let mut pipe = PipelinedGroupByOp::new(Box::new(ValuesOp::from_rows(rows)), vec![0], aggs);
        let mut h = collect_rows(&mut hash).unwrap();
        let mut p = collect_rows(&mut pipe).unwrap();
        h.sort();
        p.sort();
        assert_eq!(h, p);
    }

    #[test]
    fn pipelined_consumes_rle_runs_without_expansion() {
        // Feed RLE batches directly: 3 runs over one column.
        let batch = Batch::new(vec![ColumnSlice::rle(vec![
            (Value::Integer(1), 1000),
            (Value::Integer(2), 500),
            (Value::Integer(3), 1),
        ])]);
        let mut op = PipelinedGroupByOp::new(
            Box::new(crate::operator::ValuesOp::new(vec![batch])),
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Integer(1), Value::Integer(1000)],
                vec![Value::Integer(2), Value::Integer(500)],
                vec![Value::Integer(3), Value::Integer(1)],
            ]
        );
        assert_eq!(op.run_aggregated_rows(), 1501, "all rows via run math");
    }

    #[test]
    fn rle_run_spanning_batches_merges() {
        // The same group value continuing across batch boundaries must not
        // produce two output groups.
        let b1 = Batch::new(vec![ColumnSlice::rle(vec![(Value::Integer(7), 100)])]);
        let b2 = Batch::new(vec![ColumnSlice::rle(vec![(Value::Integer(7), 50)])]);
        let mut op = PipelinedGroupByOp::new(
            Box::new(crate::operator::ValuesOp::new(vec![b1, b2])),
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows, vec![vec![Value::Integer(7), Value::Integer(150)]]);
    }

    #[test]
    fn two_phase_prepass_final_matches_single_phase() {
        let input_rows = source_rows(8_000, 11);
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
            AggCall::new(AggFunc::Avg, 1, "avg"),
        ];
        // Single phase reference.
        let mut single = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(input_rows.clone())),
            vec![0],
            aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let reference = collect_rows(&mut single).unwrap();
        // Two-phase: prepass (tiny table to force partials) → final → proj.
        let (partial, final_aggs, project) = two_phase_aggs(1, &aggs).unwrap();
        let prepass = PrepassGroupByOp::new(
            Box::new(ValuesOp::from_rows(input_rows)),
            vec![0],
            partial,
            4, // pathological table size: lots of partial flushes
        );
        let final_gb = HashGroupByOp::new(
            Box::new(prepass),
            vec![0],
            final_aggs,
            MemoryBudget::unlimited(),
        );
        let mut proj = ProjectOp::new(Box::new(final_gb), project);
        let mut got = collect_rows(&mut proj).unwrap();
        got.sort();
        assert_eq!(got, reference);
    }

    #[test]
    fn prepass_disables_itself_on_high_cardinality() {
        // Every row is its own group: prepass cannot reduce and must give up.
        let rows: Vec<Row> = (0..20_000).map(|i| vec![Value::Integer(i)]).collect();
        let mut prepass = PrepassGroupByOp::new(
            Box::new(ValuesOp::from_rows(rows)),
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
            PREPASS_GROUPS,
        );
        let out = collect_rows(&mut prepass).unwrap();
        assert!(prepass.is_disabled(), "adaptive shutoff should trigger");
        assert_eq!(out.len(), 20_000);
    }

    #[test]
    fn dict_coded_keys_match_plain_keys() {
        // Dictionary-coded group keys (with NULLs and a selection) must
        // produce exactly the groups the plain value path produces.
        let n = 4000usize;
        let keys: Vec<Value> = (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    Value::Null
                } else {
                    Value::Varchar(format!("k{}", i % 7))
                }
            })
            .collect();
        let vals: Vec<Value> = (0..n).map(|i| Value::Integer(i as i64)).collect();
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
            AggCall::new(AggFunc::Min, 1, "min"),
        ];
        let sel = SelectionVector::new((0..n as u32).filter(|i| i % 3 != 0).collect());
        let dict_batch = Batch::new(vec![
            ColumnSlice::Typed(TypedVector::from_values(&keys).unwrap()),
            ColumnSlice::Typed(TypedVector::from_values(&vals).unwrap()),
        ])
        .with_selection(sel.clone());
        assert!(matches!(
            &dict_batch.columns[0],
            ColumnSlice::Typed(tv) if matches!(tv.data(), VectorData::Dict { .. })
        ));
        let plain_batch = Batch::new(vec![ColumnSlice::Plain(keys), ColumnSlice::Plain(vals)])
            .with_selection(sel);
        let mut fast = HashGroupByOp::new(
            Box::new(ValuesOp::new(vec![dict_batch])),
            vec![0],
            aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let mut reference = HashGroupByOp::new(
            Box::new(ValuesOp::new(vec![plain_batch])),
            vec![0],
            aggs,
            MemoryBudget::unlimited(),
        );
        assert_eq!(
            collect_rows(&mut fast).unwrap(),
            collect_rows(&mut reference).unwrap()
        );
    }

    #[test]
    fn rle_keys_match_plain_keys_in_hash_groupby() {
        let runs = vec![
            (Value::Integer(1), 1000u32),
            (Value::Integer(2), 500),
            (Value::Integer(1), 250),
            (Value::Null, 10),
        ];
        let expanded: Vec<Value> = runs
            .iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n as usize))
            .collect();
        let vals: Vec<Value> = (0..expanded.len())
            .map(|i| Value::Integer(i as i64))
            .collect();
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
        ];
        let rle_batch = Batch::new(vec![
            ColumnSlice::rle(runs),
            ColumnSlice::Typed(TypedVector::from_values(&vals).unwrap()),
        ]);
        let plain_batch = Batch::new(vec![
            ColumnSlice::Plain(expanded),
            ColumnSlice::Typed(TypedVector::from_values(&vals).unwrap()),
        ]);
        let mut fast = HashGroupByOp::new(
            Box::new(ValuesOp::new(vec![rle_batch])),
            vec![0],
            aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let mut reference = HashGroupByOp::new(
            Box::new(ValuesOp::new(vec![plain_batch])),
            vec![0],
            aggs,
            MemoryBudget::unlimited(),
        );
        assert_eq!(
            collect_rows(&mut fast).unwrap(),
            collect_rows(&mut reference).unwrap()
        );
    }

    #[test]
    fn count_distinct_single_phase_only() {
        assert!(two_phase_aggs(1, &[AggCall::new(AggFunc::CountDistinct, 0, "d")]).is_none());
        let rows: Vec<Row> = (0..1000)
            .map(|i| vec![Value::Integer(i % 3), Value::Integer(i % 50)])
            .collect();
        let mut op = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(rows)),
            vec![0],
            vec![AggCall::new(AggFunc::CountDistinct, 1, "d")],
            MemoryBudget::unlimited(),
        );
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r[1] == Value::Integer(50)));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let mut op = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(vec![])),
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
            MemoryBudget::unlimited(),
        );
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }
}
