//! ExprEval (§6.1 #4) and Filter: predicate application and expression
//! projection over batches.
//!
//! [`FilterOp`] first tries the hand-specialized conjunct/disjunct path:
//! AND/OR combinations of `column ⟨cmp⟩ literal`, `BETWEEN`, `IS NULL` and
//! `IN (literal list)` are evaluated column-at-a-time against typed
//! vectors, RLE runs (one test per run), and dictionary-coded strings (one
//! test per distinct value) — survivors are recorded in a
//! [`SelectionVector`] with no row materialization. Predicates outside
//! that shape (computed operands, CASE, function calls, ...) are handed to
//! the vectorized expression engine ([`crate::expr_vec`]); row-wise
//! evaluation survives only as the error-reporting fallback.
//!
//! [`ProjectOp`] evaluates its select-list through the same engine,
//! emitting computed [`ColumnSlice`]s — the executor pipeline stays
//! columnar end to end.

use crate::batch::{Batch, ColumnSlice};
use crate::expr_vec::{self, VectorizedExpr};
use crate::operator::{BoxedOperator, Operator};
use crate::vector::{SelectionVector, VectorData};
use std::cmp::Ordering;
use vdb_types::{BinOp, DbResult, Expr, Value};

/// Does `ord` satisfy the comparison operator?
fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// SQL comparison semantics for one value: NULL never matches.
pub(crate) fn value_matches(op: BinOp, v: &Value, lit: &Value) -> bool {
    if v.is_null() || lit.is_null() {
        return false;
    }
    ord_matches(op, v.cmp(lit))
}

/// One vectorizable conjunct.
enum Conjunct<'a> {
    Cmp {
        col: usize,
        op: BinOp,
        lit: &'a Value,
    },
    IsNull {
        col: usize,
        negated: bool,
    },
    /// `col [NOT] IN (literal list)`.
    In {
        col: usize,
        list: &'a [Value],
        negated: bool,
    },
}

impl Conjunct<'_> {
    fn col(&self) -> usize {
        match self {
            Conjunct::Cmp { col, .. } | Conjunct::IsNull { col, .. } | Conjunct::In { col, .. } => {
                *col
            }
        }
    }
}

/// Flatten a predicate into vectorizable conjuncts; `false` when any part
/// is outside the supported shape.
fn collect_conjuncts<'a>(e: &'a Expr, out: &mut Vec<Conjunct<'a>>) -> bool {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => collect_conjuncts(left, out) && collect_conjuncts(right, out),
        Expr::Binary { op, left, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column { index, .. }, Expr::Literal(v)) => {
                    out.push(Conjunct::Cmp {
                        col: *index,
                        op: *op,
                        lit: v,
                    });
                    true
                }
                (Expr::Literal(v), Expr::Column { index, .. }) => {
                    let flipped = match *op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => other,
                    };
                    out.push(Conjunct::Cmp {
                        col: *index,
                        op: flipped,
                        lit: v,
                    });
                    true
                }
                _ => false,
            }
        }
        Expr::Between { input, low, high } => match (input.as_ref(), low.as_ref(), high.as_ref()) {
            (Expr::Column { index, .. }, Expr::Literal(lo), Expr::Literal(hi)) => {
                out.push(Conjunct::Cmp {
                    col: *index,
                    op: BinOp::Ge,
                    lit: lo,
                });
                out.push(Conjunct::Cmp {
                    col: *index,
                    op: BinOp::Le,
                    lit: hi,
                });
                true
            }
            _ => false,
        },
        Expr::IsNull { input, negated } => match input.as_ref() {
            Expr::Column { index, .. } => {
                out.push(Conjunct::IsNull {
                    col: *index,
                    negated: *negated,
                });
                true
            }
            _ => false,
        },
        Expr::InList {
            input,
            list,
            negated,
        } => match input.as_ref() {
            Expr::Column { index, .. } => {
                out.push(Conjunct::In {
                    col: *index,
                    list,
                    negated: *negated,
                });
                true
            }
            _ => false,
        },
        _ => false,
    }
}

/// Flatten the top-level `OR` tree into its disjunct groups.
fn split_disjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            split_disjuncts(left, out);
            split_disjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Evaluate `pred` column-at-a-time over the batch's candidate rows,
/// returning the surviving *physical* positions (a subset of the batch's
/// current selection).
///
/// The hand-specialized path covers `OR` disjunctions of `AND` conjunct
/// groups over `col ⟨cmp⟩ literal`, `BETWEEN`, `IS [NOT] NULL` and
/// `col [NOT] IN (literal list)`. Everything else delegates to the
/// vectorized expression engine ([`crate::expr_vec`]), so computed
/// operands, CASE predicates and function calls also evaluate without row
/// materialization. `None` is returned only when evaluation *fails* (the
/// row-wise fallback then reproduces and reports the error).
pub fn eval_predicate_selection(batch: &Batch, pred: &Expr) -> Option<SelectionVector> {
    let cands: Vec<u32> = match batch.selection() {
        Some(sel) => sel.indices().to_vec(),
        None => (0..batch.physical_len() as u32).collect(),
    };
    let mut groups = Vec::new();
    split_disjuncts(pred, &mut groups);
    if let Some(sel) = eval_disjunct_groups(batch, &groups, &cands) {
        return Some(sel);
    }
    expr_vec::eval_predicate(batch, pred).ok()
}

/// Specialized disjunction evaluation: each group refines the shared
/// candidate set independently; survivors are the (sorted, deduplicated)
/// union. `None` when any group is outside the specialized shape.
fn eval_disjunct_groups(batch: &Batch, groups: &[&Expr], cands: &[u32]) -> Option<SelectionVector> {
    let mut survivors: Vec<u32> = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let mut conjs = Vec::new();
        if !collect_conjuncts(group, &mut conjs) {
            return None;
        }
        if conjs.iter().any(|c| c.col() >= batch.arity()) {
            return None;
        }
        let mut group_cands = cands.to_vec();
        for c in &conjs {
            group_cands = match c {
                Conjunct::IsNull { col, negated } => {
                    filter_is_null(&batch.columns[*col], *negated, group_cands)
                }
                Conjunct::Cmp { col, op, lit } => {
                    filter_cmp(&batch.columns[*col], *op, lit, group_cands)?
                }
                Conjunct::In { col, list, negated } => {
                    filter_in(&batch.columns[*col], list, *negated, group_cands)?
                }
            };
            if group_cands.is_empty() {
                break;
            }
        }
        if gi == 0 {
            survivors = group_cands;
        } else {
            survivors = merge_sorted(survivors, group_cands);
        }
    }
    Some(SelectionVector::new(survivors))
}

/// Union of two sorted position lists, deduplicated.
fn merge_sorted(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
    }
    out
}

fn filter_is_null(col: &ColumnSlice, negated: bool, cands: Vec<u32>) -> Vec<u32> {
    match col {
        ColumnSlice::Plain(values) => cands
            .into_iter()
            .filter(|&i| values[i as usize].is_null() != negated)
            .collect(),
        ColumnSlice::Typed(tv) => cands
            .into_iter()
            .filter(|&i| tv.is_valid(i as usize) == negated)
            .collect(),
        ColumnSlice::Rle(rv) => retain_by_run(rv, cands, |v| v.is_null() != negated),
    }
}

/// Retain candidates via a per-run decision (one test per run, not per row).
pub(crate) fn retain_by_run(
    rv: &crate::vector::RleVector,
    cands: Vec<u32>,
    keep: impl Fn(&Value) -> bool,
) -> Vec<u32> {
    let decisions: Vec<bool> = rv.runs().iter().map(|(v, _)| keep(v)).collect();
    let mut ri = 0usize;
    cands
        .into_iter()
        .filter(|&i| {
            while rv.run_start(ri + 1) <= i as usize {
                ri += 1;
            }
            decisions[ri]
        })
        .collect()
}

pub(crate) fn filter_cmp(
    col: &ColumnSlice,
    op: BinOp,
    lit: &Value,
    cands: Vec<u32>,
) -> Option<Vec<u32>> {
    if lit.is_null() {
        // `x ⟨cmp⟩ NULL` is NULL — never true.
        return Some(Vec::new());
    }
    match col {
        ColumnSlice::Plain(values) => Some(
            cands
                .into_iter()
                .filter(|&i| value_matches(op, &values[i as usize], lit))
                .collect(),
        ),
        ColumnSlice::Rle(rv) => Some(retain_by_run(rv, cands, |v| value_matches(op, v, lit))),
        ColumnSlice::Typed(tv) => {
            let valid = |i: u32| tv.is_valid(i as usize);
            match (tv.data(), lit) {
                (VectorData::Int64(xs), Value::Integer(k) | Value::Timestamp(k))
                | (VectorData::Timestamp(xs), Value::Integer(k) | Value::Timestamp(k)) => Some(
                    cands
                        .into_iter()
                        .filter(|&i| valid(i) && ord_matches(op, xs[i as usize].cmp(k)))
                        .collect(),
                ),
                (VectorData::Int64(xs), Value::Boolean(b)) => {
                    let k = i64::from(*b);
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| valid(i) && ord_matches(op, xs[i as usize].cmp(&k)))
                            .collect(),
                    )
                }
                (VectorData::Int64(xs) | VectorData::Timestamp(xs), Value::Float(f)) => Some(
                    cands
                        .into_iter()
                        .filter(|&i| {
                            valid(i) && ord_matches(op, (xs[i as usize] as f64).total_cmp(f))
                        })
                        .collect(),
                ),
                (VectorData::Float64(xs), lit) => {
                    let k = match lit {
                        Value::Float(f) => *f,
                        Value::Integer(v) | Value::Timestamp(v) => *v as f64,
                        _ => return None,
                    };
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| valid(i) && ord_matches(op, xs[i as usize].total_cmp(&k)))
                            .collect(),
                    )
                }
                (VectorData::Bool(bits), Value::Boolean(k)) => Some(
                    cands
                        .into_iter()
                        .filter(|&i| valid(i) && ord_matches(op, bits.get(i as usize).cmp(k)))
                        .collect(),
                ),
                (VectorData::Dict { dict, codes }, Value::Varchar(s)) => {
                    // One comparison per *distinct* value, then a code test
                    // per row.
                    let keep: Vec<bool> = dict
                        .entries()
                        .iter()
                        .map(|e| ord_matches(op, e.as_str().cmp(s.as_str())))
                        .collect();
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| valid(i) && keep[codes[i as usize] as usize])
                            .collect(),
                    )
                }
                _ => None,
            }
        }
    }
}

/// Retain candidates where `col [NOT] IN (list)` holds. NULL inputs never
/// match (SQL: `NULL IN (...)` is NULL), regardless of negation. Typed
/// columns test natively: integral columns probe a hash set (plus a float
/// residue compared by `total_cmp` for cross-type equality), dictionary
/// columns test once per distinct value, RLE once per run.
fn filter_in(
    col: &ColumnSlice,
    list: &[Value],
    negated: bool,
    cands: Vec<u32>,
) -> Option<Vec<u32>> {
    let value_found = |v: &Value| list.iter().any(|x| x == v);
    match col {
        ColumnSlice::Plain(values) => Some(
            cands
                .into_iter()
                .filter(|&i| {
                    let v = &values[i as usize];
                    !v.is_null() && (value_found(v) != negated)
                })
                .collect(),
        ),
        ColumnSlice::Rle(rv) => Some(retain_by_run(rv, cands, |v| {
            !v.is_null() && (value_found(v) != negated)
        })),
        ColumnSlice::Typed(tv) => {
            let valid = |i: u32| tv.is_valid(i as usize);
            match tv.data() {
                // The cross-type equality rules (integral hash set,
                // float residue, boolean-vs-integer only) are shared with
                // the expression engine's IN kernel.
                VectorData::Int64(xs) | VectorData::Timestamp(xs) => {
                    let ts = matches!(tv.data(), VectorData::Timestamp(_));
                    let (ints, floats) = expr_vec::in_list_int_sets(list, ts);
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| {
                                valid(i)
                                    && (expr_vec::in_list_int_found(xs[i as usize], &ints, &floats)
                                        != negated)
                            })
                            .collect(),
                    )
                }
                VectorData::Float64(xs) => {
                    let nums: Vec<f64> = list.iter().filter_map(Value::as_f64).collect();
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| {
                                if !valid(i) {
                                    return false;
                                }
                                let x = xs[i as usize];
                                let found = nums.iter().any(|f| x.total_cmp(f) == Ordering::Equal);
                                found != negated
                            })
                            .collect(),
                    )
                }
                VectorData::Dict { dict, codes } => {
                    let keep: Vec<bool> = expr_vec::in_list_dict_keep(dict, list)
                        .into_iter()
                        .map(|found| found != negated)
                        .collect();
                    Some(
                        cands
                            .into_iter()
                            .filter(|&i| valid(i) && keep[codes[i as usize] as usize])
                            .collect(),
                    )
                }
                VectorData::Bool(bits) => Some(
                    cands
                        .into_iter()
                        .filter(|&i| {
                            valid(i)
                                && (value_found(&Value::Boolean(bits.get(i as usize))) != negated)
                        })
                        .collect(),
                ),
            }
        }
    }
}

/// Applies a predicate, keeping matching rows (used for HAVING and for
/// residual predicates that could not be pushed into a Scan).
pub struct FilterOp {
    input: BoxedOperator,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(input: BoxedOperator, predicate: Expr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while let Some(batch) = self.input.next_batch()? {
            if batch.is_empty() {
                continue;
            }
            // Vectorized path: survivors become a selection vector; no
            // value is touched beyond the compared column(s).
            if let Some(sel) = eval_predicate_selection(&batch, &self.predicate) {
                if sel.is_empty() {
                    continue;
                }
                return Ok(Some(batch.with_selection(sel)));
            }
            // Row-wise fallback.
            let rows = batch.rows();
            let mut mask = Vec::with_capacity(rows.len());
            let mut any = false;
            for row in &rows {
                let keep = self.predicate.matches(row)?;
                any |= keep;
                mask.push(keep);
            }
            if !any {
                continue;
            }
            if mask.iter().all(|&b| b) {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.into_filtered(&mask)));
        }
        Ok(None)
    }

    fn name(&self) -> String {
        format!("Filter({})", self.predicate)
    }
}

/// Evaluates a list of expressions over each input batch (ExprEval):
/// projection, computed columns, select-list expressions. Expressions are
/// compiled once into [`VectorizedExpr`]s and evaluated column-at-a-time —
/// the output batch is assembled from computed [`ColumnSlice`]s with no
/// row pivot.
pub struct ProjectOp {
    input: BoxedOperator,
    exprs: Vec<VectorizedExpr>,
}

impl ProjectOp {
    pub fn new(input: BoxedOperator, exprs: Vec<Expr>) -> ProjectOp {
        ProjectOp {
            input,
            exprs: exprs.into_iter().map(VectorizedExpr::new).collect(),
        }
    }

    /// Column indexes when every expression is a bare column reference.
    fn column_only(&self) -> Option<Vec<usize>> {
        self.exprs
            .iter()
            .map(|e| match e.expr() {
                Expr::Column { index, .. } => Some(*index),
                _ => None,
            })
            .collect()
    }
}

impl Operator for ProjectOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                // Pure-projection fast path: reorder columns, keep the
                // representation (and selection) intact.
                if let Some(cols) = self.column_only() {
                    if cols.iter().all(|&c| c < batch.arity()) {
                        let columns: Vec<ColumnSlice> =
                            cols.iter().map(|&c| batch.columns[c].clone()).collect();
                        let mut out = Batch::new(columns);
                        if let Some(sel) = batch.selection() {
                            out = out.with_selection(sel.clone());
                        }
                        return Ok(Some(out));
                    }
                }
                // Vectorized expression evaluation: one computed column
                // per expression, batch selection applied during eval.
                let columns = self
                    .exprs
                    .iter()
                    .map(|e| e.eval_column(&batch))
                    .collect::<DbResult<Vec<_>>>()?;
                Ok(Some(Batch::new(columns)))
            }
        }
    }

    fn name(&self) -> String {
        let list: Vec<String> = self.exprs.iter().map(|e| e.expr().to_string()).collect();
        format!("ExprEval({})", list.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use crate::vector::TypedVector;
    use vdb_types::{BinOp, Value};

    fn source(n: i64) -> BoxedOperator {
        Box::new(ValuesOp::from_rows(
            (0..n)
                .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
                .collect(),
        ))
    }

    #[test]
    fn filter_keeps_matching() {
        let pred = Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(3));
        let mut op = FilterOp::new(source(10), pred);
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn filter_skips_empty_batches() {
        let pred = Expr::eq(Expr::col(0, "a"), Expr::int(-1));
        let mut op = FilterOp::new(source(5000), pred);
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn vectorized_filter_emits_selection_not_copies() {
        let tv =
            TypedVector::from_values(&(0..100).map(Value::Integer).collect::<Vec<_>>()).unwrap();
        let batch = Batch::new(vec![ColumnSlice::Typed(tv)]);
        let pred = Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(90));
        let mut op = FilterOp::new(Box::new(ValuesOp::new(vec![batch])), pred);
        let out = op.next_batch().unwrap().unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out.physical_len(), 100, "no materialization");
        assert!(out.selection().is_some());
        assert!(out.columns[0].is_typed());
    }

    #[test]
    fn vectorized_matches_row_path_on_nulls_and_types() {
        // Mixed NULLs, RLE, dict strings and floats: every supported shape
        // must agree with Expr::matches row-by-row.
        let col_int = TypedVector::from_values(&[
            Value::Integer(1),
            Value::Null,
            Value::Integer(3),
            Value::Integer(4),
        ])
        .unwrap();
        let col_str = TypedVector::from_values(&[
            Value::Varchar("a".into()),
            Value::Varchar("b".into()),
            Value::Null,
            Value::Varchar("a".into()),
        ])
        .unwrap();
        let col_rle = ColumnSlice::rle(vec![(Value::Integer(7), 2), (Value::Null, 2)]);
        let batch = Batch::new(vec![
            ColumnSlice::Typed(col_int),
            ColumnSlice::Typed(col_str),
            col_rle,
        ]);
        let preds = vec![
            Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(3)),
            Expr::binary(BinOp::Lt, Expr::int(2), Expr::col(0, "a")),
            Expr::eq(Expr::col(1, "s"), Expr::lit(Value::Varchar("a".into()))),
            Expr::binary(BinOp::Ne, Expr::col(2, "r"), Expr::int(7)),
            Expr::and(
                Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(1)),
                Expr::eq(Expr::col(2, "r"), Expr::int(7)),
            ),
            Expr::binary(BinOp::Le, Expr::col(0, "a"), Expr::lit(Value::Float(3.5))),
            Expr::IsNull {
                input: Box::new(Expr::col(1, "s")),
                negated: false,
            },
            Expr::IsNull {
                input: Box::new(Expr::col(0, "a")),
                negated: true,
            },
        ];
        let rows = batch.rows();
        for pred in preds {
            let sel = eval_predicate_selection(&batch, &pred)
                .unwrap_or_else(|| panic!("{pred} should vectorize"));
            let expect: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| pred.matches(r).unwrap().then_some(i as u32))
                .collect();
            assert_eq!(sel.indices(), expect.as_slice(), "pred {pred}");
        }
    }

    #[test]
    fn or_and_in_predicates_vectorize() {
        let col = TypedVector::from_values(
            &(0..100)
                .map(|i| {
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Integer(i)
                    }
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let strs = TypedVector::from_values(
            &(0..100)
                .map(|i| Value::Varchar(format!("s{}", i % 5)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let batch = Batch::new(vec![ColumnSlice::Typed(col), ColumnSlice::Typed(strs)]);
        let rows = batch.rows();
        let preds = vec![
            // OR of conjunct groups.
            Expr::or(
                Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(10)),
                Expr::and(
                    Expr::binary(BinOp::Ge, Expr::col(0, "a"), Expr::int(90)),
                    Expr::binary(BinOp::Ne, Expr::col(0, "a"), Expr::int(95)),
                ),
            ),
            // IN / NOT IN over int and dict columns.
            Expr::in_list(
                Expr::col(0, "a"),
                vec![Value::Integer(3), Value::Integer(97), Value::Float(50.0)],
                false,
            ),
            Expr::in_list(
                Expr::col(1, "s"),
                vec![Value::Varchar("s1".into()), Value::Varchar("s4".into())],
                true,
            ),
            // Disjunction mixing IN with IS NULL.
            Expr::or(
                Expr::in_list(Expr::col(1, "s"), vec![Value::Varchar("s0".into())], false),
                Expr::is_null(Expr::col(0, "a"), false),
            ),
        ];
        for pred in preds {
            let sel = eval_predicate_selection(&batch, &pred)
                .unwrap_or_else(|| panic!("{pred} should vectorize"));
            let expect: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| pred.matches(r).unwrap().then_some(i as u32))
                .collect();
            assert_eq!(sel.indices(), expect.as_slice(), "pred {pred}");
        }
    }

    #[test]
    fn computed_operand_predicates_use_the_engine() {
        // `a + b > 25` has no column-vs-literal shape; the expression
        // engine evaluates it without row materialization.
        let batch = Batch::new(vec![
            ColumnSlice::Typed(
                TypedVector::from_values(&(0..50).map(Value::Integer).collect::<Vec<_>>()).unwrap(),
            ),
            ColumnSlice::Typed(
                TypedVector::from_values(
                    &(0..50).map(|i| Value::Integer(i * 2)).collect::<Vec<_>>(),
                )
                .unwrap(),
            ),
        ]);
        let pred = Expr::binary(
            BinOp::Gt,
            Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::col(1, "b")),
            Expr::int(25),
        );
        let sel = eval_predicate_selection(&batch, &pred).expect("engine path");
        let expect: Vec<u32> = batch
            .rows()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| pred.matches(r).unwrap().then_some(i as u32))
            .collect();
        assert_eq!(sel.indices(), expect.as_slice());
    }

    #[test]
    fn erroring_predicates_fall_back_to_row_path() {
        // Dividing by a zero column value errors; the vectorized path
        // declines (None) and FilterOp's row fallback surfaces the error.
        let batch = Batch::from_rows(vec![vec![Value::Integer(1), Value::Integer(0)]]);
        let pred = Expr::binary(
            BinOp::Gt,
            Expr::binary(BinOp::Div, Expr::col(0, "a"), Expr::col(1, "b")),
            Expr::int(0),
        );
        assert!(eval_predicate_selection(&batch, &pred).is_none());
        let mut op = FilterOp::new(Box::new(ValuesOp::new(vec![batch])), pred);
        assert!(op.next_batch().is_err(), "division by zero must surface");
    }

    #[test]
    fn project_computes_expressions() {
        let exprs = vec![
            Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::col(1, "b")),
            Expr::lit(Value::Varchar("k".into())),
        ];
        let mut op = ProjectOp::new(source(3), exprs);
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Integer(0), Value::Varchar("k".into())],
                vec![Value::Integer(11), Value::Varchar("k".into())],
                vec![Value::Integer(22), Value::Varchar("k".into())],
            ]
        );
    }

    #[test]
    fn project_column_only_keeps_columns_typed() {
        let tv = TypedVector::from_values(&[Value::Integer(1), Value::Integer(2)]).unwrap();
        let batch = Batch::new(vec![
            ColumnSlice::Typed(tv.clone()),
            ColumnSlice::Plain(vec![Value::Varchar("x".into()), Value::Varchar("y".into())]),
        ]);
        let exprs = vec![Expr::col(1, "b"), Expr::col(0, "a")];
        let mut op = ProjectOp::new(Box::new(ValuesOp::new(vec![batch])), exprs);
        let out = op.next_batch().unwrap().unwrap();
        assert!(out.columns[1].is_typed(), "representation preserved");
        assert_eq!(
            out.rows(),
            vec![
                vec![Value::Varchar("x".into()), Value::Integer(1)],
                vec![Value::Varchar("y".into()), Value::Integer(2)],
            ]
        );
    }
}
