//! ExprEval (§6.1 #4) and Filter: row-wise expression projection and
//! predicate application over batches.

use crate::batch::Batch;
use crate::operator::{BoxedOperator, Operator};
use vdb_types::{DbResult, Expr};

/// Applies a predicate, keeping matching rows (used for HAVING and for
/// residual predicates that could not be pushed into a Scan).
pub struct FilterOp {
    input: BoxedOperator,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(input: BoxedOperator, predicate: Expr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while let Some(batch) = self.input.next_batch()? {
            let rows = batch.rows();
            let mut mask = Vec::with_capacity(rows.len());
            let mut any = false;
            for row in &rows {
                let keep = self.predicate.matches(row)?;
                any |= keep;
                mask.push(keep);
            }
            if !any {
                continue;
            }
            if mask.iter().all(|&b| b) {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.filter_by_mask(&mask)));
        }
        Ok(None)
    }

    fn name(&self) -> String {
        format!("Filter({})", self.predicate)
    }
}

/// Evaluates a list of expressions per input row (ExprEval): projection,
/// computed columns, select-list expressions.
pub struct ProjectOp {
    input: BoxedOperator,
    exprs: Vec<Expr>,
}

impl ProjectOp {
    pub fn new(input: BoxedOperator, exprs: Vec<Expr>) -> ProjectOp {
        ProjectOp { input, exprs }
    }
}

impl Operator for ProjectOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                let rows = batch.into_rows();
                let mut out = Vec::with_capacity(rows.len());
                for row in &rows {
                    let mut projected = Vec::with_capacity(self.exprs.len());
                    for e in &self.exprs {
                        projected.push(e.eval(row)?);
                    }
                    out.push(projected);
                }
                Ok(Some(Batch::from_rows(out)))
            }
        }
    }

    fn name(&self) -> String {
        let list: Vec<String> = self.exprs.iter().map(|e| e.to_string()).collect();
        format!("ExprEval({})", list.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use vdb_types::{BinOp, Value};

    fn source(n: i64) -> BoxedOperator {
        Box::new(ValuesOp::from_rows(
            (0..n)
                .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
                .collect(),
        ))
    }

    #[test]
    fn filter_keeps_matching() {
        let pred = Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(3));
        let mut op = FilterOp::new(source(10), pred);
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn filter_skips_empty_batches() {
        let pred = Expr::eq(Expr::col(0, "a"), Expr::int(-1));
        let mut op = FilterOp::new(source(5000), pred);
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn project_computes_expressions() {
        let exprs = vec![
            Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::col(1, "b")),
            Expr::lit(Value::Varchar("k".into())),
        ];
        let mut op = ProjectOp::new(source(3), exprs);
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Integer(0), Value::Varchar("k".into())],
                vec![Value::Integer(11), Value::Varchar("k".into())],
                vec![Value::Integer(22), Value::Varchar("k".into())],
            ]
        );
    }
}
