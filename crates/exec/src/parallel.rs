//! Morsel-driven parallel execution over ROS containers.
//!
//! §5 of the paper: "many operations, such as loading data or executing
//! queries, are executed with multiple threads" — ROS containers are
//! independently stored and independently readable, so a scan decomposes
//! into **morsels** (one per container, plus the WOS tail) that a pool of
//! workers pulls from a shared queue:
//!
//! ```text
//!            ┌────────────── morsel queue (shared) ──────────────┐
//!            │ ros1 │ ros2 │ ros3 │ ... │ rosN │ WOS tail        │
//!            └──┬──────┬──────┬───────────────┬──────────────────┘
//!        worker 0  worker 1  worker 2   ...   (pull on demand)
//!   scan→visibility→SIP/predicate→[partial GroupBy | sort run | collect]
//!            └──────┴──────┴───────────────┴───────┘
//!                     single merge barrier
//!          (merge hash tables | k-way merge runs | concat)
//! ```
//!
//! Each worker runs the full scan pipeline — block decode into typed/RLE
//! vectors, delete-vector visibility, SIP probes and predicate evaluation
//! as selection vectors — plus an optional per-worker stage, entirely on
//! its own data. Worker states meet exactly once, at the barrier:
//!
//! * [`ParallelStage::GroupBy`] — per-worker partial aggregation (own hash
//!   table, no sharing); the barrier re-aggregates the partials.
//! * [`ParallelStage::Sort`] — per-worker sorted runs; the barrier k-way
//!   merges them.
//! * [`ParallelStage::Collect`] — scan/filter only; per-morsel outputs are
//!   concatenated **in morsel order**, so the result equals the serial
//!   scan row for row.
//!
//! Worker lanes are tasks on the process-wide shared pool
//! ([`crate::pool`]) — N concurrent queries multiplex one set of
//! persistent workers instead of each spawning their own. Workers never
//! `unwrap()`: every failure travels through the worker's `DbResult`
//! return value and the task set's result slots, surfacing as
//! `DbResult::Err` from the operator. `threads = 1` is the serial
//! degenerate case — the pipeline runs inline on the calling thread, no
//! pool round-trip.

use crate::aggregate::AggCall;
use crate::batch::{Batch, BATCH_SIZE};
use crate::filter::ProjectOp;
use crate::groupby::{two_phase_aggs, HashGroupByOp};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator, ValuesOp};
use crate::scan::{ScanOperator, ScanStats, SipBinding};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use vdb_storage::store::ScanMorsel;
use vdb_storage::StorageBackend;
use vdb_types::schema::{compare_rows, SortKey};
use vdb_types::{DbResult, Expr, Row};

/// Environment knob overriding the executor's per-operator lane count
/// (CI's thread-stress job runs the suite at 1 and at 2× the core count).
/// Also the fallback size for the shared worker pool ([`crate::pool`])
/// when `VDB_POOL_WORKERS` is unset.
pub const THREADS_ENV: &str = "VDB_EXEC_THREADS";

/// Executor-wide tuning the query path plumbs from `Database` down to the
/// planner (which picks a degree of parallelism per scan from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Upper bound on worker threads per parallel operator. `1` = serial.
    pub threads: usize,
}

impl ExecOptions {
    /// Strictly serial execution (the `threads = 1` degenerate case).
    pub fn serial() -> ExecOptions {
        ExecOptions { threads: 1 }
    }

    pub fn with_threads(threads: usize) -> ExecOptions {
        ExecOptions {
            threads: threads.max(1),
        }
    }

    /// Resolve from `VDB_EXEC_THREADS`, falling back to the shared worker
    /// pool's capacity when unset (or unparseable) — the planner's degree
    /// of parallelism tracks the pool all queries actually multiplex, not
    /// the raw core count. A set value is clamped like
    /// [`ExecOptions::with_threads`], so `VDB_EXEC_THREADS=0` means
    /// serial, not "pick for me".
    pub fn from_env() -> ExecOptions {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(threads) => ExecOptions::with_threads(threads),
            None => ExecOptions {
                threads: crate::pool::shared().workers(),
            },
        }
    }
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions::from_env()
    }
}

/// Scan parameters shared by every worker (cheap to clone: the backend and
/// SIP filters are `Arc`s).
#[derive(Clone)]
pub struct ParallelScanSpec {
    pub backend: Arc<dyn StorageBackend>,
    /// Projection column indexes to output, in order.
    pub output_columns: Vec<usize>,
    /// Residual predicate over the output columns.
    pub predicate: Option<Expr>,
    /// Predicate over the single-value row `[partition_key]`.
    pub partition_predicate: Option<Expr>,
    pub sip: Vec<SipBinding>,
}

impl ParallelScanSpec {
    pub fn new(backend: Arc<dyn StorageBackend>, output_columns: Vec<usize>) -> ParallelScanSpec {
        ParallelScanSpec {
            backend,
            output_columns,
            predicate: None,
            partition_predicate: None,
            sip: Vec::new(),
        }
    }

    /// Open the scan pipeline for one morsel, folding counters into the
    /// shared whole-scan stats.
    pub(crate) fn open(&self, morsel: ScanMorsel, stats: &Arc<Mutex<ScanStats>>) -> ScanOperator {
        ScanOperator::with_stats(
            self.backend.clone(),
            morsel.containers,
            morsel.wos_rows,
            self.output_columns.clone(),
            self.predicate.clone(),
            self.partition_predicate.clone(),
            self.sip.clone(),
            stats.clone(),
        )
    }
}

/// Per-worker stage between the scan and the merge barrier.
#[derive(Debug, Clone)]
pub enum ParallelStage {
    /// Scan + filter only; outputs concatenate in morsel order (equal to
    /// the serial scan). The barrier materializes the surviving batches —
    /// unlike the serial scan, which streams — so this stage counts as
    /// stateful for the §6.1 memory split; streaming morsel-ordered
    /// emission is future work.
    Collect,
    /// Per-worker partial aggregation; hash tables merge at the barrier.
    /// Non-decomposable aggregates (COUNT DISTINCT) parallelize the scan
    /// and aggregate once at the barrier instead — that fallback buffers
    /// the filtered scan output at the barrier (like a serial plan whose
    /// results are collected), so the planner only emits parallel
    /// group-bys for decomposable aggregates.
    GroupBy {
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    /// Per-worker sorted runs; the barrier k-way merges them. Rows that
    /// compare equal on `keys` may interleave differently than a serial
    /// (stable) sort.
    Sort { keys: Vec<SortKey> },
}

/// Shared work queue: workers pull `(morsel index, morsel)` units until it
/// drains, which balances skewed container sizes automatically. Morsels
/// are dispensed heaviest-first (by [`ScanMorsel::rows`], the
/// longest-processing-time heuristic) so a huge container isn't picked up
/// last to run alone after every other worker has drained the queue; the
/// index tag preserves each morsel's snapshot position for
/// order-sensitive merges.
pub struct MorselQueue {
    morsels: Mutex<VecDeque<(usize, ScanMorsel)>>,
}

impl MorselQueue {
    pub fn new(morsels: Vec<ScanMorsel>) -> MorselQueue {
        let mut tagged: Vec<(usize, ScanMorsel)> = morsels.into_iter().enumerate().collect();
        tagged.sort_by_key(|(_, m)| std::cmp::Reverse(m.rows));
        MorselQueue {
            morsels: Mutex::new(tagged.into()),
        }
    }

    pub fn pop(&self) -> Option<(usize, ScanMorsel)> {
        self.morsels.lock().pop_front()
    }
}

/// Pull-model operator over the shared morsel queue: drains the current
/// morsel's scan, then pops the next. One instance per worker; the queue is
/// the only shared state.
pub struct MorselScanOp {
    queue: Arc<MorselQueue>,
    spec: ParallelScanSpec,
    stats: Arc<Mutex<ScanStats>>,
    current: Option<ScanOperator>,
}

impl MorselScanOp {
    pub fn new(
        queue: Arc<MorselQueue>,
        spec: ParallelScanSpec,
        stats: Arc<Mutex<ScanStats>>,
    ) -> MorselScanOp {
        MorselScanOp {
            queue,
            spec,
            stats,
            current: None,
        }
    }
}

impl Operator for MorselScanOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            if let Some(scan) = &mut self.current {
                if let Some(batch) = scan.next_batch()? {
                    return Ok(Some(batch));
                }
                self.current = None;
            }
            match self.queue.pop() {
                Some((_, morsel)) => self.current = Some(self.spec.open(morsel, &self.stats)),
                None => return Ok(None),
            }
        }
    }

    fn name(&self) -> String {
        "MorselScan".into()
    }
}

/// What one worker hands the barrier.
enum WorkerOutput {
    /// `(morsel index, its batches)` pairs for order-preserving concat.
    Collected(Vec<(usize, Vec<Batch>)>),
    /// Partial-aggregate rows (group columns first).
    Partials(Vec<Row>),
    /// One sorted run.
    Run(Vec<Row>),
}

/// The resolved per-worker job (stage after aggregate decomposition).
#[derive(Clone)]
enum WorkerJob {
    Collect,
    GroupBy {
        group_columns: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    Sort {
        keys: Vec<SortKey>,
    },
}

/// What the barrier does with the worker outputs.
enum BarrierMerge {
    Concat,
    /// Re-aggregate rows with `aggs` grouped on `keys`, then optionally
    /// project (AVG reconstitution).
    GroupBy {
        keys: Vec<usize>,
        aggs: Vec<AggCall>,
        project: Option<Vec<Expr>>,
    },
    KWayMerge {
        keys: Vec<SortKey>,
    },
}

/// The morsel-driven parallel table operator: scan → visibility →
/// SIP/predicate → per-worker stage on `threads` workers, merged at one
/// barrier. Blocking (the barrier makes it a plan zone boundary, like
/// Sort); output then streams in [`BATCH_SIZE`] batches.
pub struct ParallelScanOp {
    pending: Option<Pending>,
    output: std::vec::IntoIter<Batch>,
    stats: Arc<Mutex<ScanStats>>,
    threads_used: usize,
}

struct Pending {
    spec: ParallelScanSpec,
    stage: ParallelStage,
    morsels: Vec<ScanMorsel>,
    threads: usize,
    budget: MemoryBudget,
}

impl ParallelScanOp {
    pub fn new(
        spec: ParallelScanSpec,
        stage: ParallelStage,
        morsels: Vec<ScanMorsel>,
        threads: usize,
        budget: MemoryBudget,
    ) -> ParallelScanOp {
        ParallelScanOp {
            pending: Some(Pending {
                spec,
                stage,
                morsels,
                threads,
                budget,
            }),
            output: Vec::new().into_iter(),
            stats: Arc::new(Mutex::new(ScanStats::default())),
            threads_used: 0,
        }
    }

    /// Whole-scan stats handle (aggregated across all workers; inspect
    /// after draining).
    pub fn stats(&self) -> Arc<Mutex<ScanStats>> {
        self.stats.clone()
    }

    /// Workers actually launched (after clamping to the morsel count);
    /// 1 means the pipeline ran inline, with no threads spawned.
    pub fn threads_used(&self) -> usize {
        self.threads_used
    }

    fn run(&mut self, p: Pending) -> DbResult<()> {
        let threads = p.threads.clamp(1, p.morsels.len().max(1));
        self.threads_used = threads;
        let (job, merge) = resolve_stage(p.stage)?;
        let queue = Arc::new(MorselQueue::new(p.morsels));
        // The operator's budget covers all its workers together: each
        // worker's group-by/sort state gets an equal slice, so N lanes
        // spill at the same total footprint the serial plan would.
        let worker_budget = MemoryBudget::new(p.budget.bytes / threads);
        let outputs: Vec<WorkerOutput> = if threads <= 1 {
            // Serial degenerate case: same pipeline, calling thread, no
            // spawn.
            vec![run_worker(
                &queue,
                &p.spec,
                &job,
                worker_budget,
                &self.stats,
            )?]
        } else {
            // Lanes come from the shared process-wide pool ([`crate::pool`])
            // — no per-query thread spawning. Each job is one worker lane
            // pulling from the shared morsel queue; errors come home
            // through the task set's result slots, never a panic.
            let jobs: Vec<crate::pool::Job<WorkerOutput>> = (0..threads)
                .map(|_| {
                    let queue = queue.clone();
                    let spec = p.spec.clone();
                    let job = job.clone();
                    let stats = self.stats.clone();
                    let budget = worker_budget;
                    Box::new(move || run_worker(&queue, &spec, &job, budget, &stats))
                        as crate::pool::Job<WorkerOutput>
                })
                .collect();
            crate::pool::shared().run_tasks(jobs, "parallel scan worker")?
        };
        self.output = merge_outputs(outputs, merge, p.budget)?.into_iter();
        Ok(())
    }
}

impl Operator for ParallelScanOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if let Some(p) = self.pending.take() {
            self.run(p)?;
        }
        Ok(self.output.next())
    }

    fn name(&self) -> String {
        "ParallelScan".into()
    }
}

/// Decompose the stage into the per-worker job and the barrier merge.
fn resolve_stage(stage: ParallelStage) -> DbResult<(WorkerJob, BarrierMerge)> {
    Ok(match stage {
        ParallelStage::Collect => (WorkerJob::Collect, BarrierMerge::Concat),
        ParallelStage::Sort { keys } => (
            WorkerJob::Sort { keys: keys.clone() },
            BarrierMerge::KWayMerge { keys },
        ),
        ParallelStage::GroupBy {
            group_columns,
            aggs,
        } => match two_phase_aggs(group_columns.len(), &aggs) {
            Some((partial, final_aggs, project)) => (
                WorkerJob::GroupBy {
                    group_columns: group_columns.clone(),
                    aggs: partial,
                },
                BarrierMerge::GroupBy {
                    keys: (0..group_columns.len()).collect(),
                    aggs: final_aggs,
                    project: Some(project),
                },
            ),
            // Non-decomposable (COUNT DISTINCT): parallelize the scan only
            // and aggregate once at the barrier.
            None => (
                WorkerJob::Collect,
                BarrierMerge::GroupBy {
                    keys: group_columns,
                    aggs,
                    project: None,
                },
            ),
        },
    })
}

/// One worker: pull morsels until the queue drains, applying the job.
/// Plain `DbResult` all the way down — no `unwrap`/`expect`.
fn run_worker(
    queue: &Arc<MorselQueue>,
    spec: &ParallelScanSpec,
    job: &WorkerJob,
    budget: MemoryBudget,
    stats: &Arc<Mutex<ScanStats>>,
) -> DbResult<WorkerOutput> {
    match job {
        WorkerJob::Collect => {
            let mut out = Vec::new();
            while let Some((idx, morsel)) = queue.pop() {
                let mut scan = spec.open(morsel, stats);
                let mut batches = Vec::new();
                while let Some(b) = scan.next_batch()? {
                    batches.push(b);
                }
                out.push((idx, batches));
            }
            Ok(WorkerOutput::Collected(out))
        }
        WorkerJob::GroupBy {
            group_columns,
            aggs,
        } => {
            // One hash table per worker across all its morsels ("partial
            // aggregation per worker", not per morsel).
            let source = MorselScanOp::new(queue.clone(), spec.clone(), stats.clone());
            let mut gb = HashGroupByOp::new(
                Box::new(source),
                group_columns.clone(),
                aggs.clone(),
                budget,
            );
            Ok(WorkerOutput::Partials(crate::operator::collect_rows(
                &mut gb,
            )?))
        }
        WorkerJob::Sort { keys } => {
            let source = MorselScanOp::new(queue.clone(), spec.clone(), stats.clone());
            let mut sort = crate::sort::SortOp::new(Box::new(source), keys.clone(), budget);
            Ok(WorkerOutput::Run(crate::operator::collect_rows(&mut sort)?))
        }
    }
}

/// The single barrier: merge per-worker states into the final batch stream.
fn merge_outputs(
    outputs: Vec<WorkerOutput>,
    merge: BarrierMerge,
    budget: MemoryBudget,
) -> DbResult<Vec<Batch>> {
    match merge {
        BarrierMerge::Concat => {
            let mut tagged: Vec<(usize, Vec<Batch>)> = Vec::new();
            for out in outputs {
                if let WorkerOutput::Collected(pairs) = out {
                    tagged.extend(pairs);
                }
            }
            // Morsel order == serial container order (+ WOS tail last).
            tagged.sort_by_key(|&(idx, _)| idx);
            Ok(tagged.into_iter().flat_map(|(_, b)| b).collect())
        }
        BarrierMerge::GroupBy {
            keys,
            aggs,
            project,
        } => {
            let source: BoxedOperator = {
                let mut batches: Vec<Batch> = Vec::new();
                let mut rows: Vec<Row> = Vec::new();
                for out in outputs {
                    match out {
                        WorkerOutput::Partials(r) => rows.extend(r),
                        WorkerOutput::Collected(pairs) => {
                            batches.extend(pairs.into_iter().flat_map(|(_, b)| b))
                        }
                        WorkerOutput::Run(r) => rows.extend(r),
                    }
                }
                if batches.is_empty() {
                    Box::new(ValuesOp::from_rows(rows))
                } else {
                    batches.extend(
                        rows.chunks(BATCH_SIZE)
                            .map(|c| Batch::from_rows(c.to_vec())),
                    );
                    Box::new(ValuesOp::new(batches))
                }
            };
            let gb = HashGroupByOp::new(source, keys, aggs, budget);
            let mut op: BoxedOperator = match project {
                Some(exprs) => Box::new(ProjectOp::new(Box::new(gb), exprs)),
                None => Box::new(gb),
            };
            drain(op.as_mut())
        }
        BarrierMerge::KWayMerge { keys } => {
            let runs: Vec<Vec<Row>> = outputs
                .into_iter()
                .map(|out| match out {
                    WorkerOutput::Run(r) => r,
                    _ => Vec::new(),
                })
                .collect();
            Ok(kway_merge(runs, &keys))
        }
    }
}

fn drain(op: &mut dyn Operator) -> DbResult<Vec<Batch>> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch()? {
        out.push(b);
    }
    Ok(out)
}

/// K-way merge of per-worker sorted runs (ties broken by run index).
fn kway_merge(runs: Vec<Vec<Row>>, keys: &[SortKey]) -> Vec<Batch> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut cursors: Vec<(std::vec::IntoIter<Row>, Option<Row>)> = runs
        .into_iter()
        .map(|r| {
            let mut it = r.into_iter();
            let head = it.next();
            (it, head)
        })
        .collect();
    let mut merged = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for i in 0..cursors.len() {
            let Some(candidate) = &cursors[i].1 else {
                continue;
            };
            best = Some(match best {
                None => i,
                Some(j) => {
                    let current = cursors[j].1.as_ref().map_or(candidate, |r| r);
                    if compare_rows(candidate, current, keys) == std::cmp::Ordering::Less {
                        i
                    } else {
                        j
                    }
                }
            });
        }
        let Some(i) = best else { break };
        let next = cursors[i].0.next();
        if let Some(row) = std::mem::replace(&mut cursors[i].1, next) {
            merged.push(row);
        }
    }
    merged
        .chunks(BATCH_SIZE)
        .map(|c| Batch::from_rows(c.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::operator::collect_rows;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{BinOp, ColumnDef, DataType, Epoch, TableSchema, Value};

    /// `chunks` containers of `(g, v)` rows, `g = v % 13`, plus a small WOS
    /// tail.
    fn make_store(rows: i64, chunks: usize) -> ProjectionStore {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("g", DataType::Integer),
                ColumnDef::new("v", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[1], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        let all: Vec<Row> = (0..rows)
            .map(|i| vec![Value::Integer(i % 13), Value::Integer(i)])
            .collect();
        for chunk in all.chunks((rows as usize).div_ceil(chunks.max(1))) {
            store.insert_direct_ros(chunk.to_vec(), Epoch(1)).unwrap();
        }
        store
            .insert_wos(
                vec![vec![Value::Integer(99), Value::Integer(rows)]],
                Epoch(1),
            )
            .unwrap();
        store
    }

    fn spec_of(store: &ProjectionStore) -> ParallelScanSpec {
        ParallelScanSpec::new(store.backend().clone(), vec![0, 1])
    }

    fn morsels_of(store: &ProjectionStore) -> Vec<ScanMorsel> {
        store.scan_snapshot(Epoch(1)).into_morsels()
    }

    fn serial_scan(store: &ProjectionStore) -> Vec<Row> {
        let snap = store.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            store.backend().clone(),
            snap.containers,
            snap.wos_rows,
            vec![0, 1],
            None,
            None,
            vec![],
        );
        collect_rows(&mut scan).unwrap()
    }

    #[test]
    fn collect_reproduces_serial_scan_order() {
        let store = make_store(5000, 4);
        let expected = serial_scan(&store);
        for threads in [1, 2, 7] {
            let mut op = ParallelScanOp::new(
                spec_of(&store),
                ParallelStage::Collect,
                morsels_of(&store),
                threads,
                MemoryBudget::unlimited(),
            );
            let got = collect_rows(&mut op).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_groupby_matches_serial() {
        let store = make_store(20_000, 5);
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
            AggCall::new(AggFunc::Avg, 1, "avg"),
            AggCall::new(AggFunc::Min, 1, "min"),
            AggCall::new(AggFunc::Max, 1, "max"),
        ];
        let snap = store.scan_snapshot(Epoch(1));
        let mut serial = HashGroupByOp::new(
            Box::new(ScanOperator::new(
                store.backend().clone(),
                snap.containers,
                snap.wos_rows,
                vec![0, 1],
                None,
                None,
                vec![],
            )),
            vec![0],
            aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let expected = collect_rows(&mut serial).unwrap();
        for threads in [1, 2, 7] {
            let mut op = ParallelScanOp::new(
                spec_of(&store),
                ParallelStage::GroupBy {
                    group_columns: vec![0],
                    aggs: aggs.clone(),
                },
                morsels_of(&store),
                threads,
                MemoryBudget::unlimited(),
            );
            let got = collect_rows(&mut op).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn count_distinct_falls_back_to_barrier_aggregation() {
        let store = make_store(3000, 3);
        let aggs = vec![AggCall::new(AggFunc::CountDistinct, 1, "d")];
        let mut op = ParallelScanOp::new(
            spec_of(&store),
            ParallelStage::GroupBy {
                group_columns: vec![0],
                aggs,
            },
            morsels_of(&store),
            4,
            MemoryBudget::unlimited(),
        );
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got.len(), 14, "13 cyclic groups + the WOS group");
    }

    #[test]
    fn parallel_sort_merges_runs() {
        let store = make_store(8000, 4);
        let keys = vec![SortKey::asc(0), SortKey::desc(1)];
        for threads in [1, 3] {
            let mut op = ParallelScanOp::new(
                spec_of(&store),
                ParallelStage::Sort { keys: keys.clone() },
                morsels_of(&store),
                threads,
                MemoryBudget::unlimited(),
            );
            let got = collect_rows(&mut op).unwrap();
            assert_eq!(got.len(), 8001);
            assert!(got
                .windows(2)
                .all(|w| compare_rows(&w[0], &w[1], &keys) != std::cmp::Ordering::Greater));
        }
    }

    #[test]
    fn predicate_and_stats_shared_across_workers() {
        let store = make_store(10_000, 5);
        let mut spec = spec_of(&store);
        spec.predicate = Some(Expr::binary(BinOp::Ge, Expr::col(1, "v"), Expr::int(5000)));
        let mut op = ParallelScanOp::new(
            spec,
            ParallelStage::Collect,
            morsels_of(&store),
            4,
            MemoryBudget::unlimited(),
        );
        let stats = op.stats();
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got.len(), 5001, "5000..9999 plus the WOS row");
        let s = stats.lock().clone();
        assert_eq!(s.containers_total, 5);
        assert!(s.rows_scanned >= 5001);
        assert!(op.threads_used() > 1);
    }

    #[test]
    fn worker_errors_surface_as_dbresult() {
        let store = make_store(2000, 4);
        let mut spec = spec_of(&store);
        // Type error at eval time: v + 'x' fails inside the workers.
        spec.predicate = Some(Expr::binary(
            BinOp::Add,
            Expr::col(1, "v"),
            Expr::lit(Value::Varchar("x".into())),
        ));
        let mut op = ParallelScanOp::new(
            spec,
            ParallelStage::Collect,
            morsels_of(&store),
            4,
            MemoryBudget::unlimited(),
        );
        let err = collect_rows(&mut op);
        assert!(err.is_err(), "worker failure must propagate: {err:?}");
    }

    #[test]
    fn threads_clamp_to_morsel_count() {
        let store = make_store(100, 1);
        let mut op = ParallelScanOp::new(
            spec_of(&store),
            ParallelStage::Collect,
            morsels_of(&store),
            64,
            MemoryBudget::unlimited(),
        );
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got.len(), 101);
        assert_eq!(op.threads_used(), 2, "1 container + WOS tail = 2 morsels");
    }

    #[test]
    fn morsel_queue_dispenses_heaviest_first() {
        let store = make_store(100, 1);
        let snap = store.scan_snapshot(Epoch(1));
        let template = snap.into_morsels().remove(0);
        let weighted = |rows: u64| ScanMorsel {
            rows,
            ..template.clone()
        };
        let queue = MorselQueue::new(vec![weighted(1), weighted(5), weighted(3)]);
        let order: Vec<(usize, u64)> = std::iter::from_fn(|| queue.pop())
            .map(|(idx, m)| (idx, m.rows))
            .collect();
        assert_eq!(order, vec![(1, 5), (2, 3), (0, 1)], "LPT with index tags");
    }

    #[test]
    fn worker_budget_splits_across_lanes() {
        // A budget that fits one serial hash table but not four workers'
        // worth each: the split budget forces spills, results stay exact.
        let store = make_store(20_000, 5);
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
        ];
        let mut op = ParallelScanOp::new(
            spec_of(&store),
            ParallelStage::GroupBy {
                group_columns: vec![1], // v is unique: 20k groups
                aggs: aggs.clone(),
            },
            morsels_of(&store),
            4,
            MemoryBudget::new(256 * 1024),
        );
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got.len(), 20_001, "unique v groups + WOS row");
    }

    #[test]
    fn exec_options_env_round_trip() {
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(0).threads, 1);
        assert!(ExecOptions::from_env().threads >= 1);
    }
}
