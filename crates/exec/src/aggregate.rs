//! Aggregate functions with decomposable partial states.
//!
//! Partial states make three §6.1 techniques possible: the L1-sized
//! *prepass* GroupBy (partials merged by the final GroupBy), parallel
//! GroupBys under a ParallelUnion, and distributed aggregation where
//! per-node partials are merged after a Send/Recv.

use vdb_types::{DataType, DbError, DbResult, Value};

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT DISTINCT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Can partial states be merged? (COUNT DISTINCT partials must carry
    /// the distinct set, which `AggState::merge` does — so yes for all.)
    pub fn parse(name: &str, distinct: bool) -> Option<AggFunc> {
        Some(match (name.to_ascii_uppercase().as_str(), distinct) {
            ("COUNT", false) => AggFunc::Count,
            ("COUNT", true) => AggFunc::CountDistinct,
            ("SUM", false) => AggFunc::Sum,
            ("MIN", false) => AggFunc::Min,
            ("MAX", false) => AggFunc::Max,
            ("AVG", false) => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// One aggregate call: function + input column (of the operator's input).
/// `input` is ignored for `CountStar`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    pub input: usize,
    pub output_name: String,
}

impl AggCall {
    pub fn new(func: AggFunc, input: usize, output_name: impl Into<String>) -> AggCall {
        AggCall {
            func,
            input,
            output_name: output_name.into(),
        }
    }
}

/// Running state of one aggregate within one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(u64),
    /// Distinct values seen (hash of value → kept small by hashing; exact
    /// values retained for correctness).
    CountDistinct(std::collections::BTreeSet<Value>),
    /// SUM with integer/float duality: stays integer until a float arrives.
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    /// (sum, count) for AVG.
    Avg(f64, u64),
}

impl AggState {
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            AggFunc::Sum => AggState::SumInt(0, false),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    /// Fold in one value (`Value::Null` for CountStar's placeholder). SQL
    /// semantics: NULLs are ignored by every aggregate except COUNT(*).
    pub fn update(&mut self, func: AggFunc, v: &Value) -> DbResult<()> {
        self.update_n(func, v, 1)
    }

    /// Fold in `n` copies of one value — the RLE fast path: a run of
    /// identical values updates the state once (§6.1 "operate directly on
    /// encoded data").
    pub fn update_n(&mut self, func: AggFunc, v: &Value, n: u64) -> DbResult<()> {
        if n == 0 {
            return Ok(());
        }
        match self {
            AggState::Count(c) => {
                if func == AggFunc::CountStar || !v.is_null() {
                    *c += n;
                }
            }
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(v.clone());
                }
            }
            AggState::SumInt(acc, seen) => match v {
                Value::Null => {}
                Value::Integer(i) => {
                    *acc = acc.wrapping_add(i.wrapping_mul(n as i64));
                    *seen = true;
                }
                Value::Float(f) => {
                    let new = *acc as f64 + f * n as f64;
                    *self = AggState::SumFloat(new, true);
                }
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "numeric for SUM".into(),
                        found: other.to_string(),
                    })
                }
            },
            AggState::SumFloat(acc, seen) => match v {
                Value::Null => {}
                other => {
                    let f = other.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric for SUM".into(),
                        found: other.to_string(),
                    })?;
                    *acc += f * n as f64;
                    *seen = true;
                }
            },
            AggState::Min(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            AggState::Max(m) => {
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            AggState::Avg(sum, count) => {
                if !v.is_null() {
                    let f = v.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric for AVG".into(),
                        found: v.to_string(),
                    })?;
                    *sum += f * n as f64;
                    *count += n;
                }
            }
        }
        Ok(())
    }

    /// Fold one non-NULL native `i64` (the typed-vector fast path; no
    /// `Value` is constructed except where a state must *store* one). `ty`
    /// distinguishes `Integer`/`Timestamp`/`Boolean` payloads so stored
    /// values and type errors match the row path exactly.
    pub fn update_i64(&mut self, func: AggFunc, v: i64, ty: DataType) -> DbResult<()> {
        // SUM of non-Integer integral types errors in the row path; take it
        // for identical diagnostics.
        if ty != DataType::Integer && matches!(self, AggState::SumInt(..) | AggState::SumFloat(..))
        {
            return self.update(func, &make_integral(ty, v));
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::CountDistinct(set) => {
                set.insert(make_integral(ty, v));
            }
            AggState::SumInt(acc, seen) => {
                *acc = acc.wrapping_add(v);
                *seen = true;
            }
            AggState::SumFloat(acc, seen) => {
                *acc += v as f64;
                *seen = true;
            }
            AggState::Min(m) => {
                let val = make_integral(ty, v);
                if m.as_ref().is_none_or(|cur| &val < cur) {
                    *m = Some(val);
                }
            }
            AggState::Max(m) => {
                let val = make_integral(ty, v);
                if m.as_ref().is_none_or(|cur| &val > cur) {
                    *m = Some(val);
                }
            }
            AggState::Avg(sum, count) => {
                if ty == DataType::Boolean {
                    // Row path: as_f64 on Boolean is None → type error.
                    return self.update(func, &Value::Boolean(v != 0));
                }
                *sum += v as f64;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Fold one non-NULL native `f64` (typed-vector fast path).
    pub fn update_f64(&mut self, _func: AggFunc, v: f64) -> DbResult<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::CountDistinct(set) => {
                set.insert(Value::Float(v));
            }
            AggState::SumInt(acc, _) => {
                *self = AggState::SumFloat(*acc as f64 + v, true);
            }
            AggState::SumFloat(acc, seen) => {
                *acc += v;
                *seen = true;
            }
            AggState::Min(m) => {
                let val = Value::Float(v);
                if m.as_ref().is_none_or(|cur| &val < cur) {
                    *m = Some(val);
                }
            }
            AggState::Max(m) => {
                let val = Value::Float(v);
                if m.as_ref().is_none_or(|cur| &val > cur) {
                    *m = Some(val);
                }
            }
            AggState::Avg(sum, count) => {
                *sum += v;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Merge another partial state (prepass → final, node → coordinator).
    pub fn merge(&mut self, other: AggState) -> DbResult<()> {
        match (&mut *self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (AggState::SumInt(a, sa), AggState::SumInt(b, sb)) => {
                *a = a.wrapping_add(b);
                *sa |= sb;
            }
            (AggState::SumInt(a, sa), AggState::SumFloat(b, sb)) => {
                *self = AggState::SumFloat(*a as f64 + b, *sa || sb);
            }
            (AggState::SumFloat(a, sa), AggState::SumInt(b, sb)) => {
                *a += b as f64;
                *sa |= sb;
            }
            (AggState::SumFloat(a, sa), AggState::SumFloat(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| &bv < av) {
                        *a = Some(bv);
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| &bv > av) {
                        *a = Some(bv);
                    }
                }
            }
            (AggState::Avg(s, c), AggState::Avg(s2, c2)) => {
                *s += s2;
                *c += c2;
            }
            (a, b) => {
                return Err(DbError::Execution(format!(
                    "cannot merge aggregate states {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Final SQL value.
    pub fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Integer(c as i64),
            AggState::CountDistinct(set) => Value::Integer(set.len() as i64),
            AggState::SumInt(v, seen) => {
                if seen {
                    Value::Integer(v)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(v, seen) => {
                if seen {
                    Value::Float(v)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg(sum, count) => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }

    /// Approximate bytes held (memory budgeting; only CountDistinct grows).
    pub fn approx_bytes(&self) -> usize {
        match self {
            AggState::CountDistinct(set) => {
                32 + set
                    .iter()
                    .map(crate::batch::approx_value_bytes)
                    .sum::<usize>()
            }
            _ => 24,
        }
    }
}

/// Construct the `Value` for a native integral payload.
fn make_integral(ty: DataType, v: i64) -> Value {
    match ty {
        DataType::Timestamp => Value::Timestamp(v),
        DataType::Boolean => Value::Boolean(v != 0),
        _ => Value::Integer(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_updates_match_value_updates() {
        for func in [
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let mut typed = AggState::new(func);
            let mut row = AggState::new(func);
            for v in [5i64, -3, 5, 9] {
                typed.update_i64(func, v, DataType::Integer).unwrap();
                row.update(func, &Value::Integer(v)).unwrap();
            }
            assert_eq!(typed.clone().finish(), row.clone().finish(), "{func:?} i64");
            let mut typed = AggState::new(func);
            let mut row = AggState::new(func);
            for v in [1.5f64, -0.25, 1.5] {
                typed.update_f64(func, v).unwrap();
                row.update(func, &Value::Float(v)).unwrap();
            }
            assert_eq!(typed.finish(), row.finish(), "{func:?} f64");
        }
    }

    #[test]
    fn typed_sum_of_timestamp_errors_like_row_path() {
        let mut s = AggState::new(AggFunc::Sum);
        assert!(s
            .update_i64(AggFunc::Sum, 100, DataType::Timestamp)
            .is_err());
        // And AVG over timestamps works in both paths.
        let mut a = AggState::new(AggFunc::Avg);
        a.update_i64(AggFunc::Avg, 100, DataType::Timestamp)
            .unwrap();
        a.update_i64(AggFunc::Avg, 200, DataType::Timestamp)
            .unwrap();
        assert_eq!(a.finish(), Value::Float(150.0));
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let mut c = AggState::new(AggFunc::Count);
        c.update(AggFunc::Count, &Value::Null).unwrap();
        c.update(AggFunc::Count, &Value::Integer(1)).unwrap();
        assert_eq!(c.finish(), Value::Integer(1));
        let mut cs = AggState::new(AggFunc::CountStar);
        cs.update(AggFunc::CountStar, &Value::Null).unwrap();
        cs.update(AggFunc::CountStar, &Value::Null).unwrap();
        assert_eq!(cs.finish(), Value::Integer(2));
    }

    #[test]
    fn sum_integer_until_float_appears() {
        let mut s = AggState::new(AggFunc::Sum);
        s.update(AggFunc::Sum, &Value::Integer(5)).unwrap();
        s.update(AggFunc::Sum, &Value::Integer(7)).unwrap();
        assert_eq!(s.clone().finish(), Value::Integer(12));
        s.update(AggFunc::Sum, &Value::Float(0.5)).unwrap();
        assert_eq!(s.finish(), Value::Float(12.5));
        // Empty SUM is NULL.
        assert_eq!(AggState::new(AggFunc::Sum).finish(), Value::Null);
    }

    #[test]
    fn min_max_avg() {
        let mut mn = AggState::new(AggFunc::Min);
        let mut mx = AggState::new(AggFunc::Max);
        let mut av = AggState::new(AggFunc::Avg);
        for v in [3i64, 1, 4, 1, 5] {
            mn.update(AggFunc::Min, &Value::Integer(v)).unwrap();
            mx.update(AggFunc::Max, &Value::Integer(v)).unwrap();
            av.update(AggFunc::Avg, &Value::Integer(v)).unwrap();
        }
        assert_eq!(mn.finish(), Value::Integer(1));
        assert_eq!(mx.finish(), Value::Integer(5));
        assert_eq!(av.finish(), Value::Float(2.8));
    }

    #[test]
    fn count_distinct_dedups_across_merge() {
        let mut a = AggState::new(AggFunc::CountDistinct);
        let mut b = AggState::new(AggFunc::CountDistinct);
        for v in [1i64, 2, 2] {
            a.update(AggFunc::CountDistinct, &Value::Integer(v))
                .unwrap();
        }
        for v in [2i64, 3] {
            b.update(AggFunc::CountDistinct, &Value::Integer(v))
                .unwrap();
        }
        a.merge(b).unwrap();
        assert_eq!(a.finish(), Value::Integer(3));
    }

    #[test]
    fn rle_update_n_equals_n_updates() {
        let mut bulk = AggState::new(AggFunc::Avg);
        bulk.update_n(AggFunc::Avg, &Value::Integer(10), 1000)
            .unwrap();
        bulk.update_n(AggFunc::Avg, &Value::Integer(20), 1000)
            .unwrap();
        let mut single = AggState::new(AggFunc::Avg);
        for _ in 0..1000 {
            single.update(AggFunc::Avg, &Value::Integer(10)).unwrap();
            single.update(AggFunc::Avg, &Value::Integer(20)).unwrap();
        }
        assert_eq!(bulk.finish(), single.finish());
        let mut c = AggState::new(AggFunc::CountStar);
        c.update_n(AggFunc::CountStar, &Value::Null, 42).unwrap();
        assert_eq!(c.finish(), Value::Integer(42));
    }

    #[test]
    fn partial_merge_matches_single_pass() {
        let values: Vec<i64> = (0..100).collect();
        let mut single = AggState::new(AggFunc::Sum);
        for v in &values {
            single.update(AggFunc::Sum, &Value::Integer(*v)).unwrap();
        }
        let mut p1 = AggState::new(AggFunc::Sum);
        let mut p2 = AggState::new(AggFunc::Sum);
        for v in &values[..50] {
            p1.update(AggFunc::Sum, &Value::Integer(*v)).unwrap();
        }
        for v in &values[50..] {
            p2.update(AggFunc::Sum, &Value::Integer(*v)).unwrap();
        }
        p1.merge(p2).unwrap();
        assert_eq!(p1.finish(), single.finish());
    }

    #[test]
    fn sum_rejects_strings() {
        let mut s = AggState::new(AggFunc::Sum);
        assert!(s.update(AggFunc::Sum, &Value::Varchar("x".into())).is_err());
    }
}
