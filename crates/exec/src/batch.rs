//! Column-oriented row batches.
//!
//! The engine is vectorized: operators exchange [`Batch`]es of ~[`BATCH_SIZE`]
//! rows rather than single tuples. A batch is column-major; a column arrives
//! from the scan as a [`TypedVector`] (native buffers, §6.1's "operate
//! directly on encoded data"), an [`RleVector`] (unexpanded runs), or plain
//! `Value`s. Filters, SIP and visibility record survivors in a
//! [`SelectionVector`] instead of materializing; operators that cannot
//! exploit columns call [`Batch::rows`]/[`Batch::into_rows`] — the row-pivot
//! compatibility edge — which applies the selection on the way out.

use crate::vector::{RleVector, SelectionVector, TypedVector};
use std::cell::Cell;
use vdb_encoding::NativeBlock;
use vdb_types::{Row, Value};

/// Target rows per batch.
pub const BATCH_SIZE: usize = 1024;

thread_local! {
    /// Per-thread count of row pivots ([`Batch::rows`] /
    /// [`Batch::into_rows`] calls). The executor's goal is that a typed
    /// scan→filter→project→group-by pipeline performs **zero** pivots
    /// until the `Database` result edge; this counter lets tests (and the
    /// repro bench) assert it on the driving thread.
    static ROW_PIVOTS: Cell<u64> = const { Cell::new(0) };
}

/// Row pivots performed by the *current thread* so far.
pub fn row_pivot_count() -> u64 {
    ROW_PIVOTS.with(Cell::get)
}

#[inline]
fn note_pivot() {
    // Debugging aid: `VDB_TRACE_PIVOTS=1` prints a backtrace per pivot so
    // a stray pivot inside a supposedly columnar pipeline is easy to find.
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *TRACE.get_or_init(|| std::env::var_os("VDB_TRACE_PIVOTS").is_some()) {
        eprintln!("pivot at:\n{}", std::backtrace::Backtrace::force_capture());
    }
    ROW_PIVOTS.with(|c| c.set(c.get() + 1));
}

/// One column of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSlice {
    /// Expanded `Value`s (the compatibility representation).
    Plain(Vec<Value>),
    /// Unexpanded RLE runs with cached prefix offsets.
    Rle(RleVector),
    /// Type-native buffers with a validity bitmap.
    Typed(TypedVector),
}

impl ColumnSlice {
    /// Construct an RLE column from `(value, run_length)` pairs.
    pub fn rle(runs: Vec<(Value, u32)>) -> ColumnSlice {
        ColumnSlice::Rle(RleVector::new(runs))
    }

    /// Lower a decoded storage block into a column slice: native buffers
    /// stay native, runs stay runs, and homogeneous plain values are
    /// promoted to a typed vector.
    pub fn from_native(block: NativeBlock) -> ColumnSlice {
        use crate::vector::{validity_from_null_bitmap, VectorData};
        use vdb_types::DataType;
        match block {
            NativeBlock::I64 { ty, values, nulls } => {
                let validity = validity_from_null_bitmap(nulls.as_deref(), values.len());
                let data = match ty {
                    DataType::Timestamp => VectorData::Timestamp(values),
                    DataType::Boolean => VectorData::Bool(crate::vector::Bitmap::from_bools(
                        values.iter().map(|&v| v != 0),
                    )),
                    _ => VectorData::Int64(values),
                };
                ColumnSlice::Typed(TypedVector::new(data, validity))
            }
            NativeBlock::F64 { values, nulls } => {
                let validity = validity_from_null_bitmap(nulls.as_deref(), values.len());
                ColumnSlice::Typed(TypedVector::new(VectorData::Float64(values), validity))
            }
            NativeBlock::Str { dict, codes, nulls } => {
                let validity = validity_from_null_bitmap(nulls.as_deref(), codes.len());
                // Intern positionally: interning dedups, so remap each
                // on-disk dictionary position to its interned code (a
                // corrupt block with duplicate entries must not shift
                // codes or leave them dangling).
                let mut interned = vdb_types::StringDictionary::new();
                let remap: Vec<u32> = dict.into_iter().map(|s| interned.intern_owned(s)).collect();
                let codes = codes.into_iter().map(|c| remap[c as usize]).collect();
                let dict = std::sync::Arc::new(interned);
                ColumnSlice::Typed(TypedVector::new(VectorData::Dict { dict, codes }, validity))
            }
            NativeBlock::Runs(runs) => ColumnSlice::Rle(RleVector::new(runs)),
            NativeBlock::Values(values) => match TypedVector::from_owned_values(values) {
                Ok(tv) => ColumnSlice::Typed(tv),
                Err(values) => ColumnSlice::Plain(values),
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::Plain(v) => v.len(),
            ColumnSlice::Rle(rv) => rv.len(),
            ColumnSlice::Typed(tv) => tv.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_rle(&self) -> bool {
        matches!(self, ColumnSlice::Rle(_))
    }

    pub fn is_typed(&self) -> bool {
        matches!(self, ColumnSlice::Typed(_))
    }

    /// Expand to plain values (cloning run values).
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            ColumnSlice::Plain(v) => v.clone(),
            ColumnSlice::Rle(rv) => rv.to_values(),
            ColumnSlice::Typed(tv) => tv.to_values(),
        }
    }

    /// Value at *physical* row index (O(1) for plain/typed, O(log runs)
    /// for RLE).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnSlice::Plain(v) => v[i].clone(),
            ColumnSlice::Rle(rv) => rv.value_at(i).clone(),
            ColumnSlice::Typed(tv) => tv.value_at(i),
        }
    }

    /// Gather values at sorted physical `indices`.
    pub fn gather_values(&self, indices: &[u32]) -> Vec<Value> {
        match self {
            ColumnSlice::Plain(v) => indices.iter().map(|&i| v[i as usize].clone()).collect(),
            ColumnSlice::Rle(rv) => rv.gather_values(indices),
            ColumnSlice::Typed(tv) => tv.gather_values(indices),
        }
    }

    /// Materialize the rows in `sel`, preserving the representation (runs
    /// stay runs with shortened lengths, typed stays typed).
    pub fn filter_sel(&self, sel: &SelectionVector) -> ColumnSlice {
        match self {
            ColumnSlice::Plain(v) => ColumnSlice::Plain(sel.iter().map(|i| v[i].clone()).collect()),
            ColumnSlice::Rle(rv) => ColumnSlice::Rle(rv.filter(sel)),
            ColumnSlice::Typed(tv) => ColumnSlice::Typed(tv.filter(sel)),
        }
    }
}

/// Chunk rows into batches of `chunk` rows, *moving* each chunk (no row is
/// cloned). Shared by `ValuesOp::from_rows` and the parallel join's output
/// batching — callers hand over ownership of what can be a fully
/// materialized operator input.
pub(crate) fn rows_into_batches(rows: Vec<Row>, chunk: usize) -> Vec<Batch> {
    let mut batches = Vec::with_capacity(rows.len().div_ceil(chunk).max(1));
    let mut it = rows.into_iter();
    loop {
        let piece: Vec<Row> = it.by_ref().take(chunk).collect();
        if piece.is_empty() {
            break;
        }
        batches.push(Batch::from_rows(piece));
    }
    batches
}

/// Assemble a hash-join output batch without pivoting a probe row:
/// probe-side columns are gathered at the match positions (`probe_idx` —
/// non-decreasing physical indices, duplicated per multi-match), and the
/// matched build-side rows are transposed into output columns, with NULL
/// padding for outer-join misses (`None` entries). Shared by the serial
/// and morsel-parallel hash joins.
pub(crate) fn gather_join_output(
    probe: &Batch,
    probe_idx: &[u32],
    build_side: Vec<Option<Row>>,
    right_arity: usize,
) -> Batch {
    debug_assert_eq!(probe_idx.len(), build_side.len());
    let mut columns: Vec<ColumnSlice> = probe
        .columns
        .iter()
        .map(|c| ColumnSlice::Plain(c.gather_values(probe_idx)))
        .collect();
    let mut right_cols: Vec<Vec<Value>> = (0..right_arity)
        .map(|_| Vec::with_capacity(build_side.len()))
        .collect();
    for entry in build_side {
        match entry {
            Some(row) => {
                for (c, v) in row.into_iter().enumerate() {
                    right_cols[c].push(v);
                }
            }
            None => {
                for col in right_cols.iter_mut() {
                    col.push(Value::Null);
                }
            }
        }
    }
    columns.extend(right_cols.into_iter().map(ColumnSlice::Plain));
    Batch::new(columns)
}

/// Build a batch from rows an operator materialized internally (group-by
/// results, sorted output, unmatched-build emission), promoting each
/// homogeneous column to a [`TypedVector`] so downstream operators keep the
/// typed fast paths. Values are *moved* (rows are consumed column by
/// column), so this costs one transpose, not a copy.
pub(crate) fn typed_batch_from_rows(rows: Vec<Row>) -> Batch {
    if rows.is_empty() {
        return Batch::default();
    }
    let arity = rows[0].len();
    let len = rows.len();
    let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
    for row in rows {
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    let columns = cols
        .into_iter()
        .map(|values| match TypedVector::from_owned_values(values) {
            Ok(tv) => ColumnSlice::Typed(tv),
            Err(values) => ColumnSlice::Plain(values),
        })
        .collect();
    Batch::new(columns)
}

/// A column-major batch of rows with an optional selection vector.
///
/// `columns` hold *physical* rows; when `selection` is present only the
/// listed positions are logically in the batch. [`Batch::len`] and all
/// row-producing accessors honor the selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    pub columns: Vec<ColumnSlice>,
    physical_len: usize,
    selection: Option<SelectionVector>,
}

impl Batch {
    pub fn new(columns: Vec<ColumnSlice>) -> Batch {
        let physical_len = columns.first().map_or(0, ColumnSlice::len);
        debug_assert!(columns.iter().all(|c| c.len() == physical_len));
        Batch {
            columns,
            physical_len,
            selection: None,
        }
    }

    pub fn from_rows(rows: Vec<Row>) -> Batch {
        if rows.is_empty() {
            return Batch::default();
        }
        let arity = rows[0].len();
        let len = rows.len();
        let mut columns: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        Batch {
            columns: columns.into_iter().map(ColumnSlice::Plain).collect(),
            physical_len: len,
            selection: None,
        }
    }

    /// Logical row count (after selection).
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.physical_len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows physically present in the columns (ignoring selection).
    pub fn physical_len(&self) -> usize {
        self.physical_len
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The active selection, if any.
    pub fn selection(&self) -> Option<&SelectionVector> {
        self.selection.as_ref()
    }

    /// Replace the selection (positions are physical row indexes).
    pub fn with_selection(mut self, sel: SelectionVector) -> Batch {
        debug_assert!(sel
            .indices()
            .iter()
            .all(|&i| (i as usize) < self.physical_len));
        self.selection = Some(sel);
        self
    }

    /// Physical index of logical row `i` (maps through the selection).
    #[inline]
    pub fn physical_index(&self, i: usize) -> usize {
        match &self.selection {
            Some(sel) => sel.get(i),
            None => i,
        }
    }

    /// Expand into row-major form (applies the selection).
    pub fn rows(&self) -> Vec<Row> {
        note_pivot();
        match &self.selection {
            None => {
                let cols: Vec<Vec<Value>> =
                    self.columns.iter().map(ColumnSlice::to_values).collect();
                (0..self.physical_len)
                    .map(|i| cols.iter().map(|c| c[i].clone()).collect())
                    .collect()
            }
            Some(sel) => {
                let cols: Vec<Vec<Value>> = self
                    .columns
                    .iter()
                    .map(|c| c.gather_values(sel.indices()))
                    .collect();
                (0..sel.len())
                    .map(|i| cols.iter().map(|c| c[i].clone()).collect())
                    .collect()
            }
        }
    }

    /// Expand into row-major form, consuming the batch (plain column
    /// values are *moved*, not cloned — the hot path for joins and
    /// aggregation over wide rows).
    pub fn into_rows(self) -> Vec<Row> {
        note_pivot();
        let Batch {
            columns,
            physical_len,
            selection,
        } = self;
        if let Some(sel) = selection {
            let mut rows: Vec<Row> = (0..sel.len())
                .map(|_| Vec::with_capacity(columns.len()))
                .collect();
            for col in &columns {
                let vals = col.gather_values(sel.indices());
                for (row, v) in rows.iter_mut().zip(vals) {
                    row.push(v);
                }
            }
            return rows;
        }
        let mut rows: Vec<Row> = (0..physical_len)
            .map(|_| Vec::with_capacity(columns.len()))
            .collect();
        for col in columns {
            match col {
                ColumnSlice::Plain(values) => {
                    for (row, v) in rows.iter_mut().zip(values) {
                        row.push(v);
                    }
                }
                ColumnSlice::Rle(rv) => {
                    let mut i = 0usize;
                    for (v, n) in rv.runs() {
                        for _ in 0..*n {
                            rows[i].push(v.clone());
                            i += 1;
                        }
                    }
                }
                ColumnSlice::Typed(tv) => {
                    for (i, row) in rows.iter_mut().enumerate() {
                        row.push(tv.value_at(i));
                    }
                }
            }
        }
        rows
    }

    /// Row at *logical* index (clones).
    pub fn row_at(&self, i: usize) -> Row {
        let p = self.physical_index(i);
        self.columns.iter().map(|c| c.value_at(p)).collect()
    }

    /// Keep only logical rows where `mask[i]` — zero-copy: the result
    /// shares the columns and carries a refined [`SelectionVector`]; no
    /// value is cloned and no run is expanded.
    pub fn into_filtered(self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len());
        let sel = match &self.selection {
            Some(sel) => sel.refine_by_mask(mask),
            None => SelectionVector::from_mask(mask),
        };
        Batch {
            columns: self.columns,
            physical_len: self.physical_len,
            selection: Some(sel),
        }
    }

    /// Materialize the physical rows in `sel` into a new selection-free
    /// batch, preserving each column's representation (the exchange router
    /// uses this to slice per-lane sub-batches).
    pub(crate) fn materialized(&self, sel: &SelectionVector) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.filter_sel(sel)).collect(),
            physical_len: sel.len(),
            selection: None,
        }
    }

    /// Keep only logical rows where `mask[i]`, materializing new columns.
    /// Representations are preserved: RLE runs survive with shortened
    /// lengths instead of being expanded to plain values.
    pub fn filter_by_mask(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len());
        let sel = match &self.selection {
            Some(sel) => sel.refine_by_mask(mask),
            None => SelectionVector::from_mask(mask),
        };
        self.materialized(&sel)
    }

    /// Apply the selection (if any), materializing compact columns with
    /// their representations preserved.
    pub fn compact(self) -> Batch {
        match &self.selection {
            None => self,
            Some(sel) => self.materialized(sel),
        }
    }

    /// Approximate in-memory bytes (for memory budgeting).
    pub fn approx_bytes(&self) -> usize {
        use crate::vector::VectorData;
        self.columns
            .iter()
            .map(|c| match c {
                ColumnSlice::Plain(v) => v.iter().map(approx_value_bytes).sum::<usize>(),
                ColumnSlice::Rle(rv) => rv
                    .runs()
                    .iter()
                    .map(|(v, _)| approx_value_bytes(v) + 4)
                    .sum::<usize>(),
                ColumnSlice::Typed(tv) => match tv.data() {
                    VectorData::Int64(v) | VectorData::Timestamp(v) => v.len() * 8,
                    VectorData::Float64(v) => v.len() * 8,
                    VectorData::Bool(b) => b.len().div_ceil(8),
                    VectorData::Dict { dict, codes } => {
                        codes.len() * 4 + dict.entries().iter().map(|s| 24 + s.len()).sum::<usize>()
                    }
                },
            })
            .sum()
    }
}

pub(crate) fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Null | Value::Boolean(_) => 1,
        Value::Integer(_) | Value::Float(_) | Value::Timestamp(_) => 8,
        Value::Varchar(s) => 24 + s.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![
            vec![Value::Integer(1), Value::Varchar("a".into())],
            vec![Value::Integer(2), Value::Varchar("b".into())],
        ];
        let b = Batch::from_rows(rows.clone());
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.rows(), rows);
        assert_eq!(b.row_at(1), rows[1]);
    }

    #[test]
    fn rle_column_expansion_and_access() {
        let b = Batch::new(vec![
            ColumnSlice::rle(vec![(Value::Integer(7), 3), (Value::Integer(9), 2)]),
            ColumnSlice::Plain((0..5).map(Value::Integer).collect()),
        ]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.columns[0].value_at(2), Value::Integer(7));
        assert_eq!(b.columns[0].value_at(3), Value::Integer(9));
        assert_eq!(b.row_at(4), vec![Value::Integer(9), Value::Integer(4)]);
        assert!(b.columns[0].is_rle());
    }

    #[test]
    fn filter_by_mask() {
        let b = Batch::from_rows((0..6).map(|i| vec![Value::Integer(i)]).collect());
        let mask = [true, false, true, false, true, false];
        let f = b.filter_by_mask(&mask);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.rows(),
            vec![
                vec![Value::Integer(0)],
                vec![Value::Integer(2)],
                vec![Value::Integer(4)]
            ]
        );
    }

    #[test]
    fn filter_by_mask_preserves_rle_runs() {
        let b = Batch::new(vec![ColumnSlice::rle(vec![
            (Value::Integer(1), 3),
            (Value::Integer(2), 3),
        ])]);
        // Drop one row of the first run and the entire second run.
        let f = b.filter_by_mask(&[true, true, false, false, false, false]);
        assert_eq!(f.len(), 2);
        let ColumnSlice::Rle(rv) = &f.columns[0] else {
            panic!("RLE must be preserved, got {:?}", f.columns[0]);
        };
        assert_eq!(rv.runs(), &[(Value::Integer(1), 2)]);
    }

    #[test]
    fn into_filtered_is_zero_copy_selection() {
        let b = Batch::from_rows((0..6).map(|i| vec![Value::Integer(i)]).collect());
        let f = b.into_filtered(&[true, false, true, false, true, false]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.physical_len(), 6, "columns untouched");
        assert!(f.selection().is_some());
        assert_eq!(
            f.rows(),
            vec![
                vec![Value::Integer(0)],
                vec![Value::Integer(2)],
                vec![Value::Integer(4)]
            ]
        );
        // Selections compose.
        let g = f.into_filtered(&[false, true, true]);
        assert_eq!(
            g.rows(),
            vec![vec![Value::Integer(2)], vec![Value::Integer(4)]]
        );
        assert_eq!(g.row_at(1), vec![Value::Integer(4)]);
        // Compaction materializes and drops the selection.
        let c = g.compact();
        assert_eq!(c.physical_len(), 2);
        assert!(c.selection().is_none());
        assert_eq!(
            c.rows(),
            vec![vec![Value::Integer(2)], vec![Value::Integer(4)]]
        );
    }

    #[test]
    fn typed_column_round_trips_through_rows() {
        let tv =
            TypedVector::from_values(&[Value::Integer(1), Value::Null, Value::Integer(3)]).unwrap();
        let b = Batch::new(vec![ColumnSlice::Typed(tv)]);
        assert_eq!(
            b.rows(),
            vec![
                vec![Value::Integer(1)],
                vec![Value::Null],
                vec![Value::Integer(3)]
            ]
        );
        assert_eq!(b.clone().into_rows(), b.rows());
    }

    #[test]
    fn duplicate_dict_entries_remap_codes() {
        // A (corrupt or redundant) block dictionary with duplicate entries
        // must not shift or orphan codes when interning dedups it.
        let col = ColumnSlice::from_native(NativeBlock::Str {
            dict: vec!["a".into(), "a".into(), "b".into()],
            codes: vec![0, 1, 2],
            nulls: None,
        });
        assert_eq!(
            col.to_values(),
            vec![
                Value::Varchar("a".into()),
                Value::Varchar("a".into()),
                Value::Varchar("b".into()),
            ]
        );
    }

    #[test]
    fn empty_batch() {
        let b = Batch::from_rows(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.rows(), Vec::<Row>::new());
    }
}
