//! Column-oriented row batches.
//!
//! The engine is vectorized: operators exchange [`Batch`]es of ~[`BATCH_SIZE`]
//! rows rather than single tuples. A batch is column-major, and a column may
//! arrive as unexpanded RLE runs straight off the storage layer — the §6.1
//! "operate directly on encoded data" path. Operators that cannot exploit
//! runs call [`Batch::rows`] to expand.

use vdb_types::{Row, Value};

/// Target rows per batch.
pub const BATCH_SIZE: usize = 1024;

/// One column of a batch: plain values or RLE runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSlice {
    Plain(Vec<Value>),
    /// `(value, run_length)` pairs; total run length equals the batch len.
    Rle(Vec<(Value, u32)>),
}

impl ColumnSlice {
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::Plain(v) => v.len(),
            ColumnSlice::Rle(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_rle(&self) -> bool {
        matches!(self, ColumnSlice::Rle(_))
    }

    /// Expand to plain values (cloning run values).
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            ColumnSlice::Plain(v) => v.clone(),
            ColumnSlice::Rle(runs) => {
                let mut out = Vec::with_capacity(self.len());
                for (v, n) in runs {
                    for _ in 0..*n {
                        out.push(v.clone());
                    }
                }
                out
            }
        }
    }

    /// Value at row index (O(1) for plain, O(runs) for RLE).
    pub fn value_at(&self, i: usize) -> &Value {
        match self {
            ColumnSlice::Plain(v) => &v[i],
            ColumnSlice::Rle(runs) => {
                let mut remaining = i;
                for (v, n) in runs {
                    if remaining < *n as usize {
                        return v;
                    }
                    remaining -= *n as usize;
                }
                panic!("row {i} out of bounds for rle slice");
            }
        }
    }
}

/// A column-major batch of rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    pub columns: Vec<ColumnSlice>,
    len: usize,
}

impl Batch {
    pub fn new(columns: Vec<ColumnSlice>) -> Batch {
        let len = columns.first().map_or(0, ColumnSlice::len);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Batch { columns, len }
    }

    pub fn from_rows(rows: Vec<Row>) -> Batch {
        if rows.is_empty() {
            return Batch::default();
        }
        let arity = rows[0].len();
        let len = rows.len();
        let mut columns: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        Batch {
            columns: columns.into_iter().map(ColumnSlice::Plain).collect(),
            len,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Expand into row-major form.
    pub fn rows(&self) -> Vec<Row> {
        let cols: Vec<Vec<Value>> = self.columns.iter().map(ColumnSlice::to_values).collect();
        (0..self.len)
            .map(|i| cols.iter().map(|c| c[i].clone()).collect())
            .collect()
    }

    /// Expand into row-major form, consuming the batch (plain column
    /// values are *moved*, not cloned — the hot path for joins and
    /// aggregation over wide rows).
    pub fn into_rows(self) -> Vec<Row> {
        let len = self.len;
        let mut rows: Vec<Row> = (0..len)
            .map(|_| Vec::with_capacity(self.columns.len()))
            .collect();
        for col in self.columns {
            match col {
                ColumnSlice::Plain(values) => {
                    for (row, v) in rows.iter_mut().zip(values) {
                        row.push(v);
                    }
                }
                ColumnSlice::Rle(runs) => {
                    let mut i = 0usize;
                    for (v, n) in runs {
                        for _ in 0..n {
                            rows[i].push(v.clone());
                            i += 1;
                        }
                    }
                }
            }
        }
        rows
    }

    /// Row at index (clones).
    pub fn row_at(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value_at(i).clone()).collect()
    }

    /// Keep only rows where `mask[i]`, consuming the batch (plain values
    /// move instead of cloning — the scan's post-SIP/visibility path).
    pub fn into_filtered(self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len);
        let kept = mask.iter().filter(|&&b| b).count();
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in self.columns {
            let vals = match col {
                ColumnSlice::Plain(v) => v,
                rle @ ColumnSlice::Rle(_) => rle.to_values(),
            };
            let mut out = Vec::with_capacity(kept);
            for (v, &keep) in vals.into_iter().zip(mask) {
                if keep {
                    out.push(v);
                }
            }
            columns.push(ColumnSlice::Plain(out));
        }
        Batch { columns, len: kept }
    }

    /// Keep only rows where `mask[i]` (expands RLE).
    pub fn filter_by_mask(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.len);
        let kept = mask.iter().filter(|&&b| b).count();
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            let vals = col.to_values();
            let mut out = Vec::with_capacity(kept);
            for (v, &keep) in vals.into_iter().zip(mask) {
                if keep {
                    out.push(v);
                }
            }
            columns.push(ColumnSlice::Plain(out));
        }
        Batch { columns, len: kept }
    }

    /// Approximate in-memory bytes (for memory budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                ColumnSlice::Plain(v) => v.iter().map(approx_value_bytes).sum::<usize>(),
                ColumnSlice::Rle(runs) => runs
                    .iter()
                    .map(|(v, _)| approx_value_bytes(v) + 4)
                    .sum::<usize>(),
            })
            .sum()
    }
}

pub(crate) fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Null | Value::Boolean(_) => 1,
        Value::Integer(_) | Value::Float(_) | Value::Timestamp(_) => 8,
        Value::Varchar(s) => 24 + s.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![
            vec![Value::Integer(1), Value::Varchar("a".into())],
            vec![Value::Integer(2), Value::Varchar("b".into())],
        ];
        let b = Batch::from_rows(rows.clone());
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.rows(), rows);
        assert_eq!(b.row_at(1), rows[1]);
    }

    #[test]
    fn rle_column_expansion_and_access() {
        let b = Batch::new(vec![
            ColumnSlice::Rle(vec![(Value::Integer(7), 3), (Value::Integer(9), 2)]),
            ColumnSlice::Plain((0..5).map(Value::Integer).collect()),
        ]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.columns[0].value_at(2), &Value::Integer(7));
        assert_eq!(b.columns[0].value_at(3), &Value::Integer(9));
        assert_eq!(b.row_at(4), vec![Value::Integer(9), Value::Integer(4)]);
        assert!(b.columns[0].is_rle());
    }

    #[test]
    fn filter_by_mask() {
        let b = Batch::from_rows((0..6).map(|i| vec![Value::Integer(i)]).collect());
        let mask = [true, false, true, false, true, false];
        let f = b.filter_by_mask(&mask);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.rows(),
            vec![
                vec![Value::Integer(0)],
                vec![Value::Integer(2)],
                vec![Value::Integer(4)]
            ]
        );
    }

    #[test]
    fn empty_batch() {
        let b = Batch::from_rows(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.rows(), Vec::<Row>::new());
    }
}
