//! The Analytic operator (§6.1 #6): SQL-99 windowed aggregates.
//!
//! `f(...) OVER (PARTITION BY p ORDER BY o)` — input is sorted by
//! (partition, order) first (the optimizer skips the sort when a
//! projection's sort order already provides it), then each partition is
//! processed in one pass. With an ORDER BY, aggregate functions compute the
//! running (rows-unbounded-preceding) frame; without one, the whole
//! partition.

use crate::aggregate::{AggFunc, AggState};
use crate::batch::{Batch, BATCH_SIZE};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator};
use crate::sort::SortOp;
use vdb_types::schema::SortKey;
use vdb_types::{DbResult, Row, Value};

/// Window function kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFunc {
    RowNumber,
    Rank,
    DenseRank,
    /// `LAG(col, 1)` — previous row's value within the partition.
    Lag(usize),
    /// `LEAD(col, 1)`.
    Lead(usize),
    /// Windowed aggregate over `col`.
    Agg(AggFunc, usize),
}

impl WindowFunc {
    pub fn name(&self) -> String {
        match self {
            WindowFunc::RowNumber => "ROW_NUMBER()".into(),
            WindowFunc::Rank => "RANK()".into(),
            WindowFunc::DenseRank => "DENSE_RANK()".into(),
            WindowFunc::Lag(c) => format!("LAG(#{c})"),
            WindowFunc::Lead(c) => format!("LEAD(#{c})"),
            WindowFunc::Agg(f, c) => format!("{} OVER (#{c})", f.name()),
        }
    }
}

/// One window call: function + window spec (shared across calls here; one
/// Analytic operator per distinct window spec, as real planners do).
pub struct AnalyticOp {
    /// Sorted input (constructed in `new`).
    input: BoxedOperator,
    partition_by: Vec<usize>,
    order_by: Vec<SortKey>,
    funcs: Vec<WindowFunc>,
    /// Buffered current partition.
    partition: Vec<Row>,
    current_key: Option<Vec<Value>>,
    pending: Vec<Row>,
    input_done: bool,
    carry: Vec<Row>,
}

impl AnalyticOp {
    /// `pre_sorted`: skip the sort when the input already arrives ordered
    /// by (partition_by, order_by) — the projection-sort-order fast path.
    pub fn new(
        input: BoxedOperator,
        partition_by: Vec<usize>,
        order_by: Vec<SortKey>,
        funcs: Vec<WindowFunc>,
        pre_sorted: bool,
        budget: MemoryBudget,
    ) -> AnalyticOp {
        let sorted: BoxedOperator = if pre_sorted {
            input
        } else {
            let mut keys: Vec<SortKey> = partition_by.iter().map(|&c| SortKey::asc(c)).collect();
            keys.extend(order_by.iter().copied());
            Box::new(SortOp::new(input, keys, budget))
        };
        AnalyticOp {
            input: sorted,
            partition_by,
            order_by,
            funcs,
            partition: Vec::new(),
            current_key: None,
            pending: Vec::new(),
            input_done: false,
            carry: Vec::new(),
        }
    }

    fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.partition_by.iter().map(|&c| row[c].clone()).collect()
    }

    /// Compute window columns for a complete partition and append rows to
    /// pending output.
    fn flush_partition(&mut self) -> DbResult<()> {
        if self.partition.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.partition);
        let n = rows.len();
        // Per-function output column values.
        let mut extra: Vec<Vec<Value>> = Vec::with_capacity(self.funcs.len());
        for f in &self.funcs {
            let col = match f {
                WindowFunc::RowNumber => (1..=n as i64).map(Value::Integer).collect(),
                WindowFunc::Rank | WindowFunc::DenseRank => {
                    let dense = matches!(f, WindowFunc::DenseRank);
                    let mut out = Vec::with_capacity(n);
                    let mut rank = 0i64;
                    let mut dense_rank = 0i64;
                    let mut prev: Option<Vec<Value>> = None;
                    for (i, row) in rows.iter().enumerate() {
                        let key: Vec<Value> = self
                            .order_by
                            .iter()
                            .map(|k| row[k.column].clone())
                            .collect();
                        if prev.as_ref() != Some(&key) {
                            rank = i as i64 + 1;
                            dense_rank += 1;
                            prev = Some(key);
                        }
                        out.push(Value::Integer(if dense { dense_rank } else { rank }));
                    }
                    out
                }
                WindowFunc::Lag(c) => {
                    let mut out = vec![Value::Null];
                    out.extend(rows[..n - 1].iter().map(|r| r[*c].clone()));
                    out
                }
                WindowFunc::Lead(c) => {
                    let mut out: Vec<Value> = rows[1..].iter().map(|r| r[*c].clone()).collect();
                    out.push(Value::Null);
                    out
                }
                WindowFunc::Agg(func, c) => {
                    if self.order_by.is_empty() {
                        // Whole-partition frame.
                        let mut state = AggState::new(*func);
                        for row in &rows {
                            state.update(*func, &row[*c])?;
                        }
                        let v = state.finish();
                        vec![v; n]
                    } else {
                        // Running frame with peers: rows with equal order
                        // keys share the frame result (RANGE semantics).
                        let mut out = Vec::with_capacity(n);
                        let mut state = AggState::new(*func);
                        let mut i = 0usize;
                        while i < n {
                            // Find the peer group [i, j).
                            let key: Vec<Value> = self
                                .order_by
                                .iter()
                                .map(|k| rows[i][k.column].clone())
                                .collect();
                            let mut j = i;
                            while j < n {
                                let kj: Vec<Value> = self
                                    .order_by
                                    .iter()
                                    .map(|k| rows[j][k.column].clone())
                                    .collect();
                                if kj != key {
                                    break;
                                }
                                state.update(*func, &rows[j][*c])?;
                                j += 1;
                            }
                            let v = state.clone().finish();
                            for _ in i..j {
                                out.push(v.clone());
                            }
                            i = j;
                        }
                        out
                    }
                }
            };
            extra.push(col);
        }
        for (i, mut row) in rows.into_iter().enumerate() {
            for col in &extra {
                row.push(col[i].clone());
            }
            self.pending.push(row);
        }
        Ok(())
    }

    fn consume_rows(&mut self, rows: Vec<Row>) -> DbResult<()> {
        for row in rows {
            let key = self.key_of(&row);
            if self.current_key.as_ref() != Some(&key) {
                self.flush_partition()?;
                self.current_key = Some(key);
            }
            self.partition.push(row);
        }
        Ok(())
    }
}

impl Operator for AnalyticOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            if self.pending.len() >= BATCH_SIZE || (self.input_done && !self.pending.is_empty()) {
                let take = self.pending.len().min(BATCH_SIZE * 4);
                let rows: Vec<Row> = self.pending.drain(..take).collect();
                return Ok(Some(Batch::from_rows(rows)));
            }
            if self.input_done {
                return Ok(None);
            }
            if !self.carry.is_empty() {
                let rows = std::mem::take(&mut self.carry);
                self.consume_rows(rows)?;
                continue;
            }
            match self.input.next_batch()? {
                Some(batch) => self.consume_rows(batch.into_rows())?,
                None => {
                    self.flush_partition()?;
                    self.input_done = true;
                }
            }
        }
    }

    fn name(&self) -> String {
        let fs: Vec<String> = self.funcs.iter().map(WindowFunc::name).collect();
        format!("Analytic({})", fs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};

    /// (dept, salary) rows.
    fn emp_rows() -> Vec<Row> {
        vec![
            vec![Value::Integer(1), Value::Integer(100)],
            vec![Value::Integer(1), Value::Integer(200)],
            vec![Value::Integer(1), Value::Integer(200)],
            vec![Value::Integer(2), Value::Integer(50)],
            vec![Value::Integer(2), Value::Integer(75)],
        ]
    }

    fn run(funcs: Vec<WindowFunc>, order: Vec<SortKey>) -> Vec<Row> {
        let mut op = AnalyticOp::new(
            Box::new(ValuesOp::from_rows(emp_rows())),
            vec![0],
            order,
            funcs,
            false,
            MemoryBudget::unlimited(),
        );
        collect_rows(&mut op).unwrap()
    }

    #[test]
    fn row_number_per_partition() {
        let rows = run(vec![WindowFunc::RowNumber], vec![SortKey::asc(1)]);
        let rn: Vec<i64> = rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(rn, vec![1, 2, 3, 1, 2]);
    }

    #[test]
    fn rank_vs_dense_rank_with_ties() {
        let rows = run(
            vec![WindowFunc::Rank, WindowFunc::DenseRank],
            vec![SortKey::asc(1)],
        );
        let dept1: Vec<(i64, i64)> = rows
            .iter()
            .filter(|r| r[0] == Value::Integer(1))
            .map(|r| (r[2].as_i64().unwrap(), r[3].as_i64().unwrap()))
            .collect();
        // salaries 100, 200, 200 → rank 1,2,2; dense 1,2,2.
        assert_eq!(dept1, vec![(1, 1), (2, 2), (2, 2)]);
    }

    #[test]
    fn running_sum_respects_peers() {
        let rows = run(
            vec![WindowFunc::Agg(AggFunc::Sum, 1)],
            vec![SortKey::asc(1)],
        );
        let dept1: Vec<i64> = rows
            .iter()
            .filter(|r| r[0] == Value::Integer(1))
            .map(|r| r[2].as_i64().unwrap())
            .collect();
        // 100 | 200,200 are peers: frames 100, 500, 500.
        assert_eq!(dept1, vec![100, 500, 500]);
    }

    #[test]
    fn whole_partition_aggregate_without_order() {
        let rows = run(vec![WindowFunc::Agg(AggFunc::Max, 1)], vec![]);
        for r in &rows {
            let expect = if r[0] == Value::Integer(1) { 200 } else { 75 };
            assert_eq!(r[2], Value::Integer(expect));
        }
    }

    #[test]
    fn lag_and_lead() {
        let rows = run(
            vec![WindowFunc::Lag(1), WindowFunc::Lead(1)],
            vec![SortKey::asc(1)],
        );
        let dept2: Vec<(Value, Value)> = rows
            .iter()
            .filter(|r| r[0] == Value::Integer(2))
            .map(|r| (r[2].clone(), r[3].clone()))
            .collect();
        assert_eq!(
            dept2,
            vec![
                (Value::Null, Value::Integer(75)),
                (Value::Integer(50), Value::Null),
            ]
        );
    }

    #[test]
    fn single_partition_when_no_partition_by() {
        let mut op = AnalyticOp::new(
            Box::new(ValuesOp::from_rows(emp_rows())),
            vec![],
            vec![SortKey::asc(1)],
            vec![WindowFunc::RowNumber],
            false,
            MemoryBudget::unlimited(),
        );
        let rows = collect_rows(&mut op).unwrap();
        let rn: Vec<i64> = rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        assert_eq!(rn, vec![1, 2, 3, 4, 5]);
    }
}
