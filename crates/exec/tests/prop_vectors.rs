//! Property-based tests for the typed vector layer: `Value` rows round-trip
//! through typed vectors (including NULLs and dictionary-coded varchar),
//! selection vectors compose with masks, and the vectorized filter agrees
//! with row-wise predicate evaluation.

use proptest::prelude::*;
use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::vector::{RleVector, SelectionVector, TypedVector};
use vdb_types::{BinOp, Expr, Value};

/// One homogeneous column with NULLs mixed in.
fn arb_typed_column() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        prop::collection::vec(
            prop_oneof![Just(Value::Null), (-1000i64..1000).prop_map(Value::Integer)],
            1..200
        ),
        prop::collection::vec(
            prop_oneof![Just(Value::Null), (-1e9f64..1e9).prop_map(Value::Float)],
            1..200
        ),
        prop::collection::vec(
            prop_oneof![Just(Value::Null), "[a-d]{0,6}".prop_map(Value::Varchar)],
            1..200
        ),
        prop::collection::vec(
            prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Boolean)],
            1..200
        ),
        prop::collection::vec(
            prop_oneof![
                Just(Value::Null),
                (-4_000_000i64..4_000_000).prop_map(Value::Timestamp)
            ],
            1..200
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn typed_vector_round_trips_values(values in arb_typed_column()) {
        match TypedVector::from_values(&values) {
            Some(tv) => {
                prop_assert_eq!(tv.len(), values.len());
                prop_assert_eq!(tv.to_values(), values.clone());
                for (i, v) in values.iter().enumerate() {
                    prop_assert_eq!(&tv.value_at(i), v);
                }
            }
            None => {
                // Only all-NULL columns fail to specialize.
                prop_assert!(values.iter().all(Value::is_null));
            }
        }
    }

    #[test]
    fn typed_filter_matches_row_filter(values in arb_typed_column(), seed in any::<u64>()) {
        let Some(tv) = TypedVector::from_values(&values) else { return; };
        let mask: Vec<bool> = (0..values.len())
            .map(|i| (seed.rotate_left(i as u32 % 64) ^ i as u64) & 1 == 1)
            .collect();
        let sel = SelectionVector::from_mask(&mask);
        let filtered = tv.filter(&sel);
        let expect: Vec<Value> = values
            .iter()
            .zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(v, _)| v.clone())
            .collect();
        prop_assert_eq!(filtered.to_values(), expect);
    }

    #[test]
    fn rle_vector_access_and_filter(runs in prop::collection::vec(
        ((-20i64..20).prop_map(Value::Integer), 1u32..40), 1..30
    ), seed in any::<u64>()) {
        let rv = RleVector::new(runs.clone());
        let expanded = rv.to_values();
        prop_assert_eq!(rv.len(), expanded.len());
        for (i, v) in expanded.iter().enumerate() {
            prop_assert_eq!(rv.value_at(i), v);
        }
        let mask: Vec<bool> = (0..expanded.len())
            .map(|i| (seed >> (i % 64)) & 1 == 1)
            .collect();
        let sel = SelectionVector::from_mask(&mask);
        let filtered = rv.filter(&sel);
        let expect: Vec<Value> = expanded
            .iter()
            .zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(v, _)| v.clone())
            .collect();
        prop_assert_eq!(filtered.to_values(), expect.clone());
        prop_assert_eq!(rv.filter_mask(&mask).to_values(), expect);
        // Filtering never expands: the filtered vector has at most as many
        // runs as the original.
        prop_assert!(filtered.runs().len() <= rv.runs().len());
    }

    #[test]
    fn batch_selection_rows_match_materialized_rows(
        values in arb_typed_column(),
        seed in any::<u64>(),
    ) {
        let plain = Batch::new(vec![ColumnSlice::Plain(values.clone())]);
        let typed = match TypedVector::from_values(&values) {
            Some(tv) => Batch::new(vec![ColumnSlice::Typed(tv)]),
            None => return,
        };
        let mask: Vec<bool> = (0..values.len())
            .map(|i| (seed >> (i % 61)) & 1 == 1)
            .collect();
        // Zero-copy selection vs materializing filter vs row pivot must
        // all agree, across representations.
        let a = plain.clone().into_filtered(&mask).rows();
        let b = plain.filter_by_mask(&mask).rows();
        let c = typed.clone().into_filtered(&mask).rows();
        let d = typed.clone().into_filtered(&mask).into_rows();
        let e = typed.into_filtered(&mask).compact().rows();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(&a, &d);
        prop_assert_eq!(&a, &e);
    }

    #[test]
    fn vectorized_predicate_agrees_with_row_path(
        ints in prop::collection::vec(
            prop_oneof![Just(Value::Null), (-50i64..50).prop_map(Value::Integer)],
            1..200
        ),
        lit in -50i64..50,
        op_idx in 0usize..6,
    ) {
        let ops = [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge];
        let op = ops[op_idx];
        let pred = Expr::binary(op, Expr::col(0, "a"), Expr::int(lit));
        let tv = TypedVector::from_values(&ints);
        let batch = match tv {
            Some(tv) => Batch::new(vec![ColumnSlice::Typed(tv)]),
            None => Batch::new(vec![ColumnSlice::Plain(ints.clone())]),
        };
        let sel = vdb_exec::filter::eval_predicate_selection(&batch, &pred)
            .expect("cmp against int literal must vectorize");
        let expect: Vec<u32> = ints
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                pred.matches(std::slice::from_ref(v))
                    .unwrap()
                    .then_some(i as u32)
            })
            .collect();
        prop_assert_eq!(sel.indices(), expect.as_slice());
    }
}
