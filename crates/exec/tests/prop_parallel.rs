//! Property tests for morsel-driven parallel execution: parallel scan,
//! group-by and sort plans must produce results identical to serial
//! execution across lane counts {1, 2, 7, `VDB_EXEC_THREADS`}, across
//! plain/RLE/dict-encoded columns, with deleted rows (delete vectors),
//! NULLs, a residual predicate and a WOS tail in play.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_exec::parallel::{ExecOptions, ParallelStage};
use vdb_exec::plan::{execute_collect, ExecContext, PhysicalPlan};
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::schema::SortKey;
use vdb_types::{BinOp, ColumnDef, DataType, Epoch, Expr, Row, TableSchema, Value};

const PROJECTION: &str = "t_par";

/// `(g, s)` pairs; the row index becomes the unique `v` column.
fn arb_items() -> impl Strategy<Value = Vec<(Option<i64>, Option<String>)>> {
    prop::collection::vec(
        (
            prop_oneof![Just(None), (0i64..6).prop_map(Some)],
            prop_oneof![Just(None), "[a-c]{0,3}".prop_map(Some)],
        ),
        1..250,
    )
}

struct Fixture {
    store: ProjectionStore,
    snapshot: Epoch,
}

/// Build a store with `chunks` direct ROS loads (one container each, since
/// the store is unsegmented with one local segment), a WOS tail, and a
/// pseudo-random subset of ROS rows deleted at epoch 2.
fn build_fixture(
    items: &[(Option<i64>, Option<String>)],
    chunks: usize,
    sort_by_g: bool,
    seed: u64,
) -> Fixture {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("g", DataType::Integer),
            ColumnDef::new("v", DataType::Integer),
            ColumnDef::new("s", DataType::Varchar),
        ],
    );
    // Sorting by g (low cardinality) makes g arrive as RLE runs; sorting
    // by v keeps columns typed/plain. Varchar always decodes through the
    // dictionary path.
    let sort = if sort_by_g { [0usize] } else { [1usize] };
    let def = ProjectionDef::super_projection(&schema, PROJECTION, &sort, &[]);
    let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
    let rows: Vec<Row> = items
        .iter()
        .enumerate()
        .map(|(i, (g, s))| {
            vec![
                g.map_or(Value::Null, Value::Integer),
                Value::Integer(i as i64),
                s.clone().map_or(Value::Null, Value::Varchar),
            ]
        })
        .collect();
    let per = rows.len().div_ceil(chunks.max(1));
    for chunk in rows.chunks(per.max(1)) {
        store.insert_direct_ros(chunk.to_vec(), Epoch(1)).unwrap();
    }
    // WOS tail rows (scanned after the containers).
    store
        .insert_wos(
            vec![
                vec![Value::Integer(3), Value::Integer(100_000), Value::Null],
                vec![
                    Value::Null,
                    Value::Integer(100_001),
                    Value::Varchar("w".into()),
                ],
            ],
            Epoch(2),
        )
        .unwrap();
    // Delete ~1/6 of the ROS rows via delete vectors.
    let locations: Vec<_> = store
        .visible_rows_with_locations(Epoch(1))
        .unwrap()
        .into_iter()
        .map(|(loc, _)| loc)
        .collect();
    for (i, loc) in locations.into_iter().enumerate() {
        let h = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17);
        if h.is_multiple_of(6) {
            store.mark_deleted(loc, Epoch(2)).unwrap();
        }
    }
    Fixture {
        store,
        snapshot: Epoch(2),
    }
}

fn ctx_of(fx: &Fixture) -> ExecContext {
    let mut ctx = ExecContext::new(fx.store.backend().clone());
    ctx.snapshots
        .insert(PROJECTION.into(), fx.store.scan_snapshot(fx.snapshot));
    ctx
}

fn scan_plan(predicate: Option<Expr>) -> PhysicalPlan {
    PhysicalPlan::Scan {
        projection: PROJECTION.into(),
        output_columns: vec![0, 1, 2],
        predicate,
        partition_predicate: None,
        sip: vec![],
    }
}

fn parallel_plan(predicate: Option<Expr>, stage: ParallelStage, threads: usize) -> PhysicalPlan {
    PhysicalPlan::ParallelScan {
        projection: PROJECTION.into(),
        output_columns: vec![0, 1, 2],
        predicate,
        partition_predicate: None,
        sip: vec![],
        stage,
        threads,
    }
}

fn lane_counts() -> Vec<usize> {
    vec![1, 2, 7, ExecOptions::from_env().threads]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_collect_equals_serial_scan(
        items in arb_items(),
        chunks in 1usize..6,
        sort_by_g in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let fx = build_fixture(&items, chunks, sort_by_g, seed);
        let pred = Some(Expr::binary(
            BinOp::Ge,
            Expr::col(1, "v"),
            Expr::int(items.len() as i64 / 3),
        ));
        let serial = execute_collect(&scan_plan(pred.clone()), &mut ctx_of(&fx)).unwrap();
        for threads in lane_counts() {
            let plan = parallel_plan(pred.clone(), ParallelStage::Collect, threads);
            let got = execute_collect(&plan, &mut ctx_of(&fx)).unwrap();
            // Morsel-ordered concat reproduces the serial scan exactly —
            // same rows, same order.
            prop_assert_eq!(&got, &serial, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_groupby_equals_serial(
        items in arb_items(),
        chunks in 1usize..6,
        sort_by_g in any::<bool>(),
        seed in any::<u64>(),
        group_on_dict in any::<bool>(),
    ) {
        let fx = build_fixture(&items, chunks, sort_by_g, seed);
        // Group on the integer column (plain/RLE depending on sort order)
        // or on the dict-encoded varchar column; NULL keys group together.
        let gc = if group_on_dict { vec![2usize] } else { vec![0usize] };
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
            AggCall::new(AggFunc::Min, 1, "min"),
            AggCall::new(AggFunc::Max, 1, "max"),
        ];
        let serial_plan = PhysicalPlan::HashGroupBy {
            input: Box::new(scan_plan(None)),
            group_columns: gc.clone(),
            aggs: aggs.clone(),
        };
        let serial = execute_collect(&serial_plan, &mut ctx_of(&fx)).unwrap();
        for threads in lane_counts() {
            let plan = parallel_plan(
                None,
                ParallelStage::GroupBy { group_columns: gc.clone(), aggs: aggs.clone() },
                threads,
            );
            let got = execute_collect(&plan, &mut ctx_of(&fx)).unwrap();
            prop_assert_eq!(&got, &serial, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_sort_equals_serial(
        items in arb_items(),
        chunks in 1usize..6,
        sort_by_g in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let fx = build_fixture(&items, chunks, sort_by_g, seed);
        // v is unique, so (g asc NULLS-wherever, v desc) totally orders the
        // rows and the k-way merge must match the serial sort exactly.
        let keys = vec![SortKey::asc(0), SortKey::desc(1)];
        let serial_plan = PhysicalPlan::Sort {
            input: Box::new(scan_plan(None)),
            keys: keys.clone(),
        };
        let serial = execute_collect(&serial_plan, &mut ctx_of(&fx)).unwrap();
        for threads in lane_counts() {
            let plan = parallel_plan(None, ParallelStage::Sort { keys: keys.clone() }, threads);
            let got = execute_collect(&plan, &mut ctx_of(&fx)).unwrap();
            prop_assert_eq!(&got, &serial, "threads={}", threads);
        }
    }
}
