//! Property test: vectorized expression evaluation ≡ row-wise `Expr::eval`.
//!
//! Random expression trees (arithmetic, comparisons, Kleene AND/OR/NOT,
//! CASE, IN lists, BETWEEN, IS NULL, CAST, scalar calls) are evaluated over
//! random batches — integer columns in plain/typed/RLE representation,
//! float and boolean typed columns, dictionary-coded strings, NULLs mixed
//! in, with and without a selection vector — through
//! `vdb_exec::expr_vec` and compared value-for-value against per-row
//! `Expr::eval`. When the row path errors (type mismatches are easy to
//! generate), the vectorized path must error too: the engine's
//! short-circuit domains mirror exactly which (node, row) pairs row-wise
//! evaluation touches.

use proptest::prelude::*;
use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::expr_vec;
use vdb_exec::filter::eval_predicate_selection;
use vdb_exec::vector::TypedVector;
use vdb_types::{BinOp, DataType, Expr, Func, UnOp, Value};

/// Cheap deterministic generator for structural choices.
struct Xor(u64);

impl Xor {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self) -> i64 {
        (self.next() % 41) as i64 - 20
    }
}

/// A random *value* expression (depth-bounded). Column types: 0 = int,
/// 1 = float, 2 = varchar (dict), 3 = bool.
fn gen_value(r: &mut Xor, depth: usize) -> Expr {
    if depth == 0 {
        return match r.below(6) {
            0 => Expr::col(0, "a"),
            1 => Expr::col(1, "f"),
            2 => Expr::col(2, "s"),
            3 => Expr::int(r.int()),
            4 => Expr::lit(Value::Float(r.int() as f64 / 2.0)),
            _ => Expr::lit(Value::Null),
        };
    }
    match r.below(8) {
        0..=2 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div][r.below(4) as usize];
            Expr::binary(op, gen_value(r, depth - 1), gen_value(r, depth - 1))
        }
        3 => Expr::case(
            vec![(gen_bool(r, depth - 1), gen_value(r, depth - 1))],
            (r.below(2) == 0).then(|| gen_value(r, depth - 1)),
        ),
        4 => Expr::Cast {
            input: Box::new(gen_value(r, depth - 1)),
            to: [DataType::Integer, DataType::Float, DataType::Varchar][r.below(3) as usize],
        },
        5 => Expr::Unary {
            op: UnOp::Neg,
            input: Box::new(gen_value(r, depth - 1)),
        },
        6 => Expr::call(
            [Func::Abs, Func::Length, Func::Upper, Func::Greatest][r.below(4) as usize],
            vec![gen_value(r, depth - 1)],
        ),
        _ => gen_value(r, 0),
    }
}

/// A random *boolean* expression (depth-bounded).
fn gen_bool(r: &mut Xor, depth: usize) -> Expr {
    if depth == 0 {
        return match r.below(3) {
            0 => Expr::col(3, "b"),
            1 => Expr::lit(Value::Boolean(r.below(2) == 0)),
            _ => Expr::is_null(Expr::col(r.below(4) as usize, "c"), r.below(2) == 0),
        };
    }
    match r.below(8) {
        0..=2 => {
            let ops = [
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ];
            Expr::binary(
                ops[r.below(6) as usize],
                gen_value(r, depth - 1),
                gen_value(r, depth - 1),
            )
        }
        3 => Expr::and(gen_bool(r, depth - 1), gen_bool(r, depth - 1)),
        4 => Expr::or(gen_bool(r, depth - 1), gen_bool(r, depth - 1)),
        5 => Expr::negated(gen_bool(r, depth - 1)),
        6 => Expr::in_list(
            if r.below(2) == 0 {
                Expr::col(0, "a")
            } else {
                Expr::col(2, "s")
            },
            vec![
                Value::Integer(r.int()),
                Value::Varchar(format!("s{}", r.below(4))),
                Value::Float(r.int() as f64),
                Value::Boolean(r.below(2) == 0),
            ],
            r.below(2) == 0,
        ),
        _ => Expr::between(
            Expr::col(0, "a"),
            Expr::int(r.int().min(0)),
            Expr::int(r.int().max(0)),
        ),
    }
}

/// Build the 4-column test batch; `rep` picks the first column's
/// representation (0 plain, 1 typed int, 2 RLE runs, 3 typed timestamp).
fn build_batch(
    ints: &[Option<i64>],
    floats: &[Option<f64>],
    strs: &[Option<u8>],
    bools: &[Option<bool>],
    rep: u8,
) -> Batch {
    let n = ints.len();
    let int_vals: Vec<Value> = ints
        .iter()
        .map(|v| {
            v.map_or(
                Value::Null,
                if rep == 3 {
                    Value::Timestamp
                } else {
                    Value::Integer
                },
            )
        })
        .collect();
    let int_col = match rep {
        0 => ColumnSlice::Plain(int_vals),
        1 | 3 => match TypedVector::from_values(&int_vals) {
            Some(tv) => ColumnSlice::Typed(tv),
            None => ColumnSlice::Plain(int_vals),
        },
        _ => {
            // Sort into runs: adjacent equal values collapse.
            let mut sorted = int_vals.clone();
            sorted.sort();
            let mut runs: Vec<(Value, u32)> = Vec::new();
            for v in sorted {
                match runs.last_mut() {
                    Some((rv, n)) if *rv == v => *n += 1,
                    _ => runs.push((v, 1)),
                }
            }
            ColumnSlice::rle(runs)
        }
    };
    let float_col = {
        let vals: Vec<Value> = floats
            .iter()
            .take(n)
            .map(|v| v.map_or(Value::Null, Value::Float))
            .collect();
        match TypedVector::from_values(&vals) {
            Some(tv) => ColumnSlice::Typed(tv),
            None => ColumnSlice::Plain(vals),
        }
    };
    let str_col = {
        let vals: Vec<Value> = strs
            .iter()
            .take(n)
            .map(|v| v.map_or(Value::Null, |c| Value::Varchar(format!("s{}", c % 5))))
            .collect();
        match TypedVector::from_values(&vals) {
            Some(tv) => ColumnSlice::Typed(tv),
            None => ColumnSlice::Plain(vals),
        }
    };
    let bool_col = {
        let vals: Vec<Value> = bools
            .iter()
            .take(n)
            .map(|v| v.map_or(Value::Null, Value::Boolean))
            .collect();
        match TypedVector::from_values(&vals) {
            Some(tv) => ColumnSlice::Typed(tv),
            None => ColumnSlice::Plain(vals),
        }
    };
    Batch::new(vec![int_col, float_col, str_col, bool_col])
}

/// NULL roughly a quarter of the time, `Some(inner)` otherwise.
fn opt<T: Clone + 'static>(
    inner: impl Strategy<Value = T> + 'static,
) -> impl Strategy<Value = Option<T>> {
    (0u8..4, inner).prop_map(|(pick, v)| (pick > 0).then_some(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_expr_vec_matches_row_eval(
        ints in prop::collection::vec(opt(-20i64..20), 8..80),
        floats in prop::collection::vec(opt(-40i64..40), 80),
        strs in prop::collection::vec(opt(0u8..5), 80),
        bools in prop::collection::vec(opt(any::<bool>()), 80),
        rep in 0u8..4,
        expr_seed in any::<u64>(),
        sel_seed in any::<u64>(),
        want_bool in any::<bool>(),
    ) {
        let floats: Vec<Option<f64>> = floats.iter().map(|v| v.map(|x| x as f64 / 2.0)).collect();
        let batch = build_batch(&ints, &floats, &strs, &bools, rep);
        // Optionally refine with a selection vector.
        let batch = if sel_seed & 1 == 1 {
            let mask: Vec<bool> = (0..batch.len())
                .map(|i| (sel_seed >> (i % 61)) & 2 != 0 || i == 0)
                .collect();
            batch.into_filtered(&mask)
        } else {
            batch
        };
        let mut r = Xor(expr_seed | 1);
        let depth = 1 + (expr_seed % 3) as usize;
        let expr = if want_bool {
            gen_bool(&mut r, depth)
        } else {
            gen_value(&mut r, depth)
        };
        // Row-wise reference over the logical rows.
        let rows = batch.rows();
        let reference: Result<Vec<Value>, _> =
            rows.iter().map(|row| expr.eval(row)).collect();
        let got = expr_vec::eval_expr_column(&batch, &expr);
        match (reference, got) {
            (Ok(expect), Ok(col)) => {
                prop_assert_eq!(col.len(), expect.len(), "expr {}", &expr);
                prop_assert_eq!(col.to_values(), expect, "expr {}", &expr);
            }
            (Err(_), Err(_)) => {} // both error — semantics agree
            (Ok(expect), Err(e)) => {
                panic!("vectorized errored ({e}) where row path produced {expect:?} for {expr}");
            }
            (Err(e), Ok(_)) => {
                panic!("vectorized succeeded where row path errored ({e}) for {expr}");
            }
        }
        // Predicate form: the filter-layer selection must match row-wise
        // `matches` exactly (engine or specialized conjunct path).
        let row_sel: Result<Vec<u32>, _> = rows
            .iter()
            .enumerate()
            .filter_map(|(i, row)| match expr.matches(row) {
                Ok(true) => Some(Ok(i as u32)),
                Ok(false) => None,
                Err(e) => Some(Err(e)),
            })
            .collect();
        match (row_sel, eval_predicate_selection(&batch, &expr)) {
            (Ok(expect), Some(sel)) => {
                // Positions are physical; map through the batch selection.
                let logical: Vec<u32> = sel
                    .indices()
                    .iter()
                    .map(|&p| match batch.selection() {
                        Some(bsel) => bsel
                            .indices()
                            .iter()
                            .position(|&q| q == p)
                            .expect("subset of batch selection")
                            as u32,
                        None => p,
                    })
                    .collect();
                prop_assert_eq!(logical, expect, "pred {}", &expr);
            }
            (Err(_), None) => {} // evaluation error: falls back to row path
            (Ok(_), None) => panic!("predicate {expr} should vectorize"),
            (Err(e), Some(_)) => {
                panic!("vectorized predicate selection succeeded where row path errored ({e}) for {expr}");
            }
        }
    }
}
