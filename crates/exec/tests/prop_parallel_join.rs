//! Property tests for the morsel-parallel partitioned hash join: the
//! parallel plan must produce results identical to the serial
//! `HashJoinOp` plan across lane counts {1, 2, 7, `VDB_EXEC_THREADS`},
//! inner and left-outer (plus semi/anti) join flavors, NULL join keys,
//! plain/RLE/dict-encoded key columns, delete vectors on both sides, and
//! WOS tails on both sides.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_exec::parallel::ExecOptions;
use vdb_exec::plan::{execute_collect, ExecContext, JoinType, PhysicalPlan};
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema, Value};

const PROBE: &str = "t_probe";
const BUILD: &str = "t_build";

/// `(k, s)` pairs; the row index becomes the unique `v` column.
fn arb_items(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, Option<String>)>> {
    prop::collection::vec(
        (
            prop_oneof![Just(None), (0i64..6).prop_map(Some)],
            prop_oneof![Just(None), "[a-c]{0,2}".prop_map(Some)],
        ),
        1..max,
    )
}

/// Build one store with `chunks` ROS containers, a WOS tail, and a
/// pseudo-random subset of rows deleted at epoch 2. Sorting by `k` makes
/// the integer key column arrive as RLE runs; sorting by `v` keeps it
/// typed. The varchar key always decodes through the dictionary path.
fn build_store(
    name: &str,
    items: &[(Option<i64>, Option<String>)],
    chunks: usize,
    sort_by_k: bool,
    seed: u64,
) -> ProjectionStore {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("k", DataType::Integer),
            ColumnDef::new("v", DataType::Integer),
            ColumnDef::new("s", DataType::Varchar),
        ],
    );
    let sort = if sort_by_k { [0usize] } else { [1usize] };
    let def = ProjectionDef::super_projection(&schema, name, &sort, &[]);
    let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
    let rows: Vec<Row> = items
        .iter()
        .enumerate()
        .map(|(i, (k, s))| {
            vec![
                k.map_or(Value::Null, Value::Integer),
                Value::Integer(i as i64),
                s.clone().map_or(Value::Null, Value::Varchar),
            ]
        })
        .collect();
    let per = rows.len().div_ceil(chunks.max(1));
    for chunk in rows.chunks(per.max(1)) {
        store.insert_direct_ros(chunk.to_vec(), Epoch(1)).unwrap();
    }
    store
        .insert_wos(
            vec![
                vec![Value::Integer(3), Value::Integer(100_000), Value::Null],
                vec![
                    Value::Null,
                    Value::Integer(100_001),
                    Value::Varchar("b".into()),
                ],
            ],
            Epoch(2),
        )
        .unwrap();
    // Delete ~1/6 of the ROS rows via delete vectors.
    let locations: Vec<_> = store
        .visible_rows_with_locations(Epoch(1))
        .unwrap()
        .into_iter()
        .map(|(loc, _)| loc)
        .collect();
    for (i, loc) in locations.into_iter().enumerate() {
        let h = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17);
        if h.is_multiple_of(6) {
            store.mark_deleted(loc, Epoch(2)).unwrap();
        }
    }
    store
}

fn ctx_of(probe: &ProjectionStore, build: &ProjectionStore) -> ExecContext {
    let mut ctx = ExecContext::new(probe.backend().clone());
    ctx.snapshots
        .insert(PROBE.into(), probe.scan_snapshot(Epoch(2)));
    ctx.snapshots
        .insert(BUILD.into(), build.scan_snapshot(Epoch(2)));
    ctx
}

fn scan_plan(projection: &str, sip: Vec<(usize, Vec<usize>)>) -> PhysicalPlan {
    PhysicalPlan::Scan {
        projection: projection.into(),
        output_columns: vec![0, 1, 2],
        predicate: None,
        partition_predicate: None,
        sip,
    }
}

fn lane_counts() -> Vec<usize> {
    vec![1, 2, 7, ExecOptions::from_env().threads]
}

fn check_flavor(
    probe: &ProjectionStore,
    build: &ProjectionStore,
    key_col: usize,
    jt: JoinType,
    with_sip: bool,
) {
    // SIP is only sound for flavors that drop non-matching probe rows.
    let sip_ok = with_sip && matches!(jt, JoinType::Inner | JoinType::Semi);
    let probe_sip = if sip_ok {
        vec![(0usize, vec![key_col])]
    } else {
        vec![]
    };
    let sip_id = if sip_ok { Some(0) } else { None };
    let serial = PhysicalPlan::HashJoin {
        left: Box::new(scan_plan(PROBE, probe_sip.clone())),
        right: Box::new(scan_plan(BUILD, vec![])),
        left_keys: vec![key_col],
        right_keys: vec![key_col],
        join_type: jt,
        sip: sip_id,
    };
    let expected = execute_collect(&serial, &mut ctx_of(probe, build)).unwrap();
    for threads in lane_counts() {
        let parallel = PhysicalPlan::ParallelHashJoin {
            left: Box::new(scan_plan(PROBE, probe_sip.clone())),
            right: Box::new(scan_plan(BUILD, vec![])),
            left_keys: vec![key_col],
            right_keys: vec![key_col],
            join_type: jt,
            sip: sip_id,
            probe_threads: threads,
            build_threads: threads,
        };
        let got = execute_collect(&parallel, &mut ctx_of(probe, build)).unwrap();
        prop_assert_eq!(
            &got,
            &expected,
            "flavor {} key_col {} threads {}",
            jt.name(),
            key_col,
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Inner and left-outer joins on the integer key (typed or RLE
    /// depending on the sort order) equal serial across lane counts.
    #[test]
    fn parallel_join_equals_serial_int_keys(
        probe_items in arb_items(200),
        build_items in arb_items(80),
        probe_chunks in 1usize..6,
        build_chunks in 1usize..4,
        sort_probe_by_k in any::<bool>(),
        sort_build_by_k in any::<bool>(),
        seed in any::<u64>(),
        with_sip in any::<bool>(),
    ) {
        let probe = build_store(PROBE, &probe_items, probe_chunks, sort_probe_by_k, seed);
        let build = build_store(BUILD, &build_items, build_chunks, sort_build_by_k, seed ^ 0xDEAD_BEEF);
        for jt in [JoinType::Inner, JoinType::LeftOuter] {
            check_flavor(&probe, &build, 0, jt, with_sip);
        }
    }

    /// The dictionary-coded varchar key exercises the per-distinct-code
    /// probe path; semi/anti ride along on the integer key.
    #[test]
    fn parallel_join_equals_serial_dict_keys_and_semi_anti(
        probe_items in arb_items(150),
        build_items in arb_items(60),
        probe_chunks in 1usize..5,
        build_chunks in 1usize..3,
        sort_probe_by_k in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let probe = build_store(PROBE, &probe_items, probe_chunks, sort_probe_by_k, seed);
        let build = build_store(BUILD, &build_items, build_chunks, !sort_probe_by_k, seed ^ 0xBEEF);
        for jt in [JoinType::Inner, JoinType::LeftOuter] {
            check_flavor(&probe, &build, 2, jt, false);
        }
        for jt in [JoinType::Semi, JoinType::Anti] {
            check_flavor(&probe, &build, 0, jt, true);
        }
    }
}
