//! Property-based tests: every encoding must round-trip arbitrary value
//! sequences (falling back to Plain where inapplicable), and the position
//! index must agree with the data file.

use proptest::prelude::*;
use vdb_encoding::{ColumnReader, ColumnWriter, EncodingType};
use vdb_types::codec::{Reader, Writer};
use vdb_types::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        // Finite floats keep assertions simple; NaN handled in unit tests.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Varchar),
        any::<bool>().prop_map(Value::Boolean),
        (-4_000_000_000i64..4_000_000_000).prop_map(Value::Timestamp),
    ]
}

/// Homogeneous columns: the realistic case (a column has one type).
fn arb_column() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        prop::collection::vec(
            prop_oneof![Just(Value::Null), (-1000i64..1000).prop_map(Value::Integer)],
            0..500
        ),
        prop::collection::vec(
            prop_oneof![Just(Value::Null), (0i64..50).prop_map(Value::Integer)],
            0..500
        ),
        prop::collection::vec((-1e6f64..1e6).prop_map(Value::Float), 0..300),
        prop::collection::vec("[a-c]{1,3}".prop_map(Value::Varchar), 0..300),
        prop::collection::vec(arb_value(), 0..200),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_encoding_round_trips(values in arb_column(), enc_idx in 0usize..8) {
        let enc = EncodingType::CONCRETE[enc_idx];
        let mut w = Writer::new();
        vdb_encoding::encode_block(&values, enc, &mut w);
        let bytes = w.into_bytes();
        let decoded = vdb_encoding::decode_block(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(decoded.into_values(), values);
    }

    #[test]
    fn auto_round_trips_and_never_beats_plain_badly(values in arb_column()) {
        let mut w = Writer::new();
        let used = vdb_encoding::encode_block(&values, EncodingType::Auto, &mut w);
        prop_assert_ne!(used, EncodingType::Auto);
        let bytes = w.into_bytes();
        let decoded = vdb_encoding::decode_block(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(decoded.into_values(), values);
    }

    #[test]
    fn column_writer_reader_round_trip(values in arb_column(), block in 1usize..200) {
        let mut w = ColumnWriter::with_block_size(EncodingType::Auto, block);
        w.extend(values.iter().cloned());
        let (data, index) = w.finish();
        let r = ColumnReader::new(&data, &index);
        prop_assert_eq!(r.total_rows() as usize, values.len());
        prop_assert_eq!(r.read_all().unwrap(), values.clone());
        // Positional fetches agree with the expanded column.
        if !values.is_empty() {
            let probe = values.len() / 2;
            prop_assert_eq!(r.value_at(probe as u64).unwrap(), values[probe].clone());
        }
    }

    #[test]
    fn block_min_max_bounds_all_values(values in arb_column()) {
        let mut w = ColumnWriter::with_block_size(EncodingType::Auto, 64);
        w.extend(values.iter().cloned());
        let (_, index) = w.finish();
        let mut pos = 0usize;
        for b in &index.blocks {
            for v in &values[pos..pos + b.count as usize] {
                if !v.is_null() {
                    prop_assert!(v >= &b.min && v <= &b.max);
                }
            }
            pos += b.count as usize;
        }
    }

    #[test]
    fn native_decode_agrees_with_value_decode(values in arb_column(), enc_idx in 0usize..8) {
        let enc = EncodingType::CONCRETE[enc_idx];
        let mut w = Writer::new();
        vdb_encoding::encode_block(&values, enc, &mut w);
        let bytes = w.into_bytes();
        let native = vdb_encoding::decode_block_native(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(native.len(), values.len());
        prop_assert_eq!(native.into_decoded().into_values(), values);
    }

    #[test]
    fn integer_codecs_decode_to_native_buffers(
        ints in prop::collection::vec((-10_000i64..10_000).prop_map(Value::Integer), 1..500),
        enc_idx in 0usize..5,
    ) {
        // Delta-family codecs over pure integer blocks must land in native
        // i64 buffers (no per-row Value) — the scan's typed fast path.
        let enc = [
            EncodingType::DeltaValue,
            EncodingType::DeltaRange,
            EncodingType::CommonDelta,
            EncodingType::ForBitPack,
            EncodingType::DeltaDelta,
        ][enc_idx];
        let mut w = Writer::new();
        let used = vdb_encoding::encode_block(&ints, enc, &mut w);
        prop_assert_eq!(used, enc, "codec applicable to pure ints");
        let bytes = w.into_bytes();
        let native = vdb_encoding::decode_block_native(&mut Reader::new(&bytes)).unwrap();
        match native {
            vdb_encoding::NativeBlock::I64 { values, nulls, .. } => {
                prop_assert!(nulls.is_none());
                let expect: Vec<i64> = ints.iter().map(|v| v.as_i64().unwrap()).collect();
                prop_assert_eq!(values, expect);
            }
            other => prop_assert!(false, "expected native i64 block, got {:?}", other),
        }
    }

    #[test]
    fn compressor_round_trips_bytes(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = vdb_compress::compress(&data);
        prop_assert_eq!(vdb_compress::decompress(&c).unwrap(), data);
    }

    #[test]
    fn selected_decode_agrees_with_full_decode(
        values in arb_column(),
        enc_idx in 0usize..8,
        stride in 1usize..7,
        offset in 0usize..7,
    ) {
        // Selection-pushdown contract: every *selected* position must match
        // the full decode; unselected positions are unspecified padding.
        let enc = EncodingType::CONCRETE[enc_idx];
        let mut w = Writer::new();
        vdb_encoding::encode_block(&values, enc, &mut w);
        let bytes = w.into_bytes();
        let full = vdb_encoding::decode_block_native(&mut Reader::new(&bytes))
            .unwrap()
            .into_decoded()
            .into_values();
        let sel: Vec<u32> = (offset..values.len()).step_by(stride).map(|i| i as u32).collect();
        let (native, skipped) =
            vdb_encoding::decode_block_native_selected(&mut Reader::new(&bytes), Some(&sel))
                .unwrap();
        prop_assert_eq!(native.len(), values.len());
        prop_assert!(skipped as usize <= values.len());
        let picked = native.into_decoded().into_values();
        for &p in &sel {
            prop_assert_eq!(&picked[p as usize], &full[p as usize], "position {}", p);
        }
    }

    #[test]
    fn new_codecs_round_trip_integral_blocks_with_nulls(
        raw in prop::collection::vec(
            prop_oneof![Just(Value::Null), (-5_000_000i64..5_000_000).prop_map(Value::Integer)],
            0..500
        ),
        enc_idx in 0usize..2,
    ) {
        // FOR/bit-pack and delta-of-delta must round-trip ≡ plain decode
        // over NULL-bearing integer blocks (NULLs ride the block bitmap).
        let enc = [EncodingType::ForBitPack, EncodingType::DeltaDelta][enc_idx];
        let mut w = Writer::new();
        let used = vdb_encoding::encode_block(&raw, enc, &mut w);
        prop_assert_eq!(used, enc);
        let bytes = w.into_bytes();
        let mut pw = Writer::new();
        vdb_encoding::encode_block(&raw, EncodingType::Plain, &mut pw);
        let pbytes = pw.into_bytes();
        let decoded = vdb_encoding::decode_block(&mut Reader::new(&bytes)).unwrap().into_values();
        let plain = vdb_encoding::decode_block(&mut Reader::new(&pbytes)).unwrap().into_values();
        prop_assert_eq!(decoded, plain);
    }

    #[test]
    fn trial_winner_never_loses_to_plain(values in arb_column()) {
        // The Database Designer's empirical pick must never choose a codec
        // that loses to Plain on its own trial size.
        let (winner, sizes) = vdb_encoding::auto::choose_by_trial(&values);
        let winner_size = sizes.iter().find(|(e, _)| *e == winner).unwrap().1;
        let plain_size = sizes
            .iter()
            .find(|(e, _)| *e == EncodingType::Plain)
            .unwrap()
            .1;
        prop_assert!(winner_size <= plain_size);
    }
}
