//! Block-level encode/decode with centralized NULL handling.
//!
//! Layout of an encoded block:
//!
//! ```text
//! [encoding tag: u8] [count: uvarint] [null flag: u8]
//! [if nulls: null bitmap, ceil(count/8) bytes]
//! [codec payload over the non-null values]
//! ```
//!
//! The specialized codecs (delta/dictionary families) only see non-null
//! values; NULL positions are carried in the bitmap. RLE and Plain handle
//! NULLs natively (a NULL run is a perfectly good run), so they skip the
//! bitmap, keeping the common sorted-leading-column path allocation-free.

use crate::{auto, block_dict, common_delta, delta_range, delta_value, plain, rle, EncodingType};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Result of decoding a block: either expanded values or RLE runs (for the
/// encoded-execution path of §6.1).
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedBlock {
    Values(Vec<Value>),
    Runs(Vec<(Value, u32)>),
}

impl DecodedBlock {
    /// Expand to plain values.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            DecodedBlock::Values(v) => v,
            DecodedBlock::Runs(runs) => {
                let total: usize = runs.iter().map(|(_, n)| *n as usize).sum();
                let mut out = Vec::with_capacity(total);
                for (v, n) in runs {
                    for _ in 0..n {
                        out.push(v.clone());
                    }
                }
                out
            }
        }
    }

    /// Row count without expansion.
    pub fn len(&self) -> usize {
        match self {
            DecodedBlock::Values(v) => v.len(),
            DecodedBlock::Runs(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encode one block of values. Returns the concrete encoding actually used
/// (Auto resolves; inapplicable requests fall back to Plain — the storage
/// layer records the concrete tag in the position index).
pub fn encode_block(values: &[Value], requested: EncodingType, w: &mut Writer) -> EncodingType {
    let concrete = resolve(values, requested);
    w.put_u8(concrete.tag());
    w.put_uvarint(values.len() as u64);
    match concrete {
        EncodingType::Plain => {
            w.put_u8(0);
            plain::encode(values, w);
        }
        EncodingType::Rle => {
            w.put_u8(0);
            rle::encode(values, w);
        }
        EncodingType::DeltaValue
        | EncodingType::BlockDict
        | EncodingType::DeltaRange
        | EncodingType::CommonDelta => {
            let has_nulls = values.iter().any(Value::is_null);
            w.put_u8(u8::from(has_nulls));
            let storage: Vec<Value>;
            let non_null: &[Value] = if has_nulls {
                let mut bitmap = vec![0u8; values.len().div_ceil(8)];
                for (i, v) in values.iter().enumerate() {
                    if v.is_null() {
                        bitmap[i / 8] |= 1 << (i % 8);
                    }
                }
                w.put_raw(&bitmap);
                storage = values.iter().filter(|v| !v.is_null()).cloned().collect();
                &storage
            } else {
                values
            };
            let r = match concrete {
                EncodingType::DeltaValue => delta_value::encode(non_null, w),
                EncodingType::BlockDict => block_dict::encode(non_null, w),
                EncodingType::DeltaRange => delta_range::encode(non_null, w),
                EncodingType::CommonDelta => common_delta::encode(non_null, w),
                _ => unreachable!(),
            };
            debug_assert!(r.is_ok(), "resolve() guaranteed applicability");
        }
        EncodingType::Auto => unreachable!("resolve() returns concrete encodings"),
    }
    concrete
}

/// Resolve a requested encoding against the data: Auto picks; inapplicable
/// specialized codecs fall back to Plain.
fn resolve(values: &[Value], requested: EncodingType) -> EncodingType {
    let non_null_applicable = |e: EncodingType| {
        let non_null: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();
        match e {
            EncodingType::DeltaValue => delta_value::applicable(&non_null),
            EncodingType::BlockDict => block_dict::applicable(&non_null),
            EncodingType::DeltaRange => delta_range::applicable(&non_null),
            EncodingType::CommonDelta => common_delta::applicable(&non_null),
            _ => true,
        }
    };
    match requested {
        EncodingType::Auto => auto::choose_encoding(values),
        EncodingType::Plain | EncodingType::Rle => requested,
        e if non_null_applicable(e) => e,
        _ => EncodingType::Plain,
    }
}

/// Decode one block.
pub fn decode_block(r: &mut Reader<'_>) -> DbResult<DecodedBlock> {
    let encoding = EncodingType::from_tag(r.get_u8()?)?;
    let count = r.get_uvarint()? as usize;
    let has_nulls = r.get_u8()? != 0;
    match encoding {
        EncodingType::Plain => Ok(DecodedBlock::Values(plain::decode(r, count)?)),
        EncodingType::Rle => Ok(DecodedBlock::Runs(rle::decode_runs(r, count)?)),
        EncodingType::Auto => Err(DbError::Corrupt("Auto tag on disk".into())),
        specialized => {
            let (null_bitmap, non_null_count) = if has_nulls {
                let bitmap = r.get_raw(count.div_ceil(8))?.to_vec();
                let nulls = (0..count)
                    .filter(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
                    .count();
                (Some(bitmap), count - nulls)
            } else {
                (None, count)
            };
            let non_null = match specialized {
                EncodingType::DeltaValue => delta_value::decode(r, non_null_count)?,
                EncodingType::BlockDict => block_dict::decode(r, non_null_count)?,
                EncodingType::DeltaRange => delta_range::decode(r, non_null_count)?,
                EncodingType::CommonDelta => common_delta::decode(r, non_null_count)?,
                _ => unreachable!(),
            };
            match null_bitmap {
                None => Ok(DecodedBlock::Values(non_null)),
                Some(bitmap) => {
                    let mut out = Vec::with_capacity(count);
                    let mut it = non_null.into_iter();
                    for i in 0..count {
                        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                            out.push(Value::Null);
                        } else {
                            out.push(it.next().ok_or_else(|| {
                                DbError::Corrupt("null bitmap / payload mismatch".into())
                            })?);
                        }
                    }
                    Ok(DecodedBlock::Values(out))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[Value], enc: EncodingType) -> EncodingType {
        let mut w = Writer::new();
        let used = encode_block(values, enc, &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_block(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.len(), values.len());
        assert_eq!(decoded.into_values(), values);
        used
    }

    #[test]
    fn every_concrete_encoding_round_trips_ints() {
        let vals: Vec<Value> = (0..500).map(|i| Value::Integer(i % 37)).collect();
        for e in EncodingType::CONCRETE {
            round_trip(&vals, e);
        }
    }

    #[test]
    fn nulls_round_trip_through_specialized_codecs() {
        let vals: Vec<Value> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Integer(i)
                }
            })
            .collect();
        for e in [
            EncodingType::DeltaValue,
            EncodingType::BlockDict,
            EncodingType::DeltaRange,
            EncodingType::CommonDelta,
            EncodingType::Rle,
            EncodingType::Plain,
        ] {
            round_trip(&vals, e);
        }
    }

    #[test]
    fn inapplicable_request_falls_back_to_plain() {
        let vals = vec![Value::Varchar("a".into()), Value::Varchar("b".into())];
        let used = round_trip(&vals, EncodingType::DeltaValue);
        assert_eq!(used, EncodingType::Plain);
    }

    #[test]
    fn rle_blocks_decode_as_runs() {
        let vals = vec![Value::Integer(1); 100];
        let mut w = Writer::new();
        encode_block(&vals, EncodingType::Rle, &mut w);
        let bytes = w.into_bytes();
        match decode_block(&mut Reader::new(&bytes)).unwrap() {
            DecodedBlock::Runs(runs) => assert_eq!(runs, vec![(Value::Integer(1), 100)]),
            DecodedBlock::Values(_) => panic!("rle should decode to runs"),
        }
    }

    #[test]
    fn empty_block() {
        round_trip(&[], EncodingType::Plain);
        round_trip(&[], EncodingType::Rle);
    }

    #[test]
    fn auto_never_writes_auto_tag() {
        let vals: Vec<Value> = (0..100).map(Value::Integer).collect();
        let mut w = Writer::new();
        let used = encode_block(&vals, EncodingType::Auto, &mut w);
        assert_ne!(used, EncodingType::Auto);
        let bytes = w.into_bytes();
        assert_ne!(bytes[0], EncodingType::Auto.tag());
    }
}
