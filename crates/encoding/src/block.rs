//! Block-level encode/decode with centralized NULL handling.
//!
//! Layout of an encoded block:
//!
//! ```text
//! [encoding tag: u8] [count: uvarint] [null flag: u8]
//! [if nulls: null bitmap, ceil(count/8) bytes]
//! [codec payload over the non-null values]
//! ```
//!
//! The specialized codecs (delta/dictionary families) only see non-null
//! values; NULL positions are carried in the bitmap. RLE and Plain handle
//! NULLs natively (a NULL run is a perfectly good run), so they skip the
//! bitmap, keeping the common sorted-leading-column path allocation-free.

use crate::{
    auto, block_dict, common_delta, delta_delta, delta_range, delta_value, for_bitpack, plain, rle,
    EncodingType,
};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DataType, DbError, DbResult, Value};

/// Result of decoding a block: either expanded values or RLE runs (for the
/// encoded-execution path of §6.1).
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedBlock {
    Values(Vec<Value>),
    Runs(Vec<(Value, u32)>),
}

impl DecodedBlock {
    /// Expand to plain values.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            DecodedBlock::Values(v) => v,
            DecodedBlock::Runs(runs) => {
                let total: usize = runs.iter().map(|(_, n)| *n as usize).sum();
                let mut out = Vec::with_capacity(total);
                for (v, n) in runs {
                    for _ in 0..n {
                        out.push(v.clone());
                    }
                }
                out
            }
        }
    }

    /// Row count without expansion.
    pub fn len(&self) -> usize {
        match self {
            DecodedBlock::Values(v) => v.len(),
            DecodedBlock::Runs(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encode one block of values. Returns the concrete encoding actually used
/// (Auto resolves; inapplicable requests fall back to Plain — the storage
/// layer records the concrete tag in the position index).
pub fn encode_block(values: &[Value], requested: EncodingType, w: &mut Writer) -> EncodingType {
    let concrete = resolve(values, requested);
    w.put_u8(concrete.tag());
    w.put_uvarint(values.len() as u64);
    match concrete {
        EncodingType::Plain => {
            w.put_u8(0);
            plain::encode(values, w);
        }
        EncodingType::Rle => {
            w.put_u8(0);
            rle::encode(values, w);
        }
        EncodingType::DeltaValue
        | EncodingType::BlockDict
        | EncodingType::DeltaRange
        | EncodingType::CommonDelta
        | EncodingType::ForBitPack
        | EncodingType::DeltaDelta => {
            let has_nulls = values.iter().any(Value::is_null);
            w.put_u8(u8::from(has_nulls));
            let storage: Vec<Value>;
            let non_null: &[Value] = if has_nulls {
                let mut bitmap = vec![0u8; values.len().div_ceil(8)];
                for (i, v) in values.iter().enumerate() {
                    if v.is_null() {
                        bitmap[i / 8] |= 1 << (i % 8);
                    }
                }
                w.put_raw(&bitmap);
                storage = values.iter().filter(|v| !v.is_null()).cloned().collect();
                &storage
            } else {
                values
            };
            let r = match concrete {
                EncodingType::DeltaValue => delta_value::encode(non_null, w),
                EncodingType::BlockDict => block_dict::encode(non_null, w),
                EncodingType::DeltaRange => delta_range::encode(non_null, w),
                EncodingType::CommonDelta => common_delta::encode(non_null, w),
                EncodingType::ForBitPack => for_bitpack::encode(non_null, w),
                EncodingType::DeltaDelta => delta_delta::encode(non_null, w),
                _ => unreachable!(),
            };
            debug_assert!(r.is_ok(), "resolve() guaranteed applicability");
        }
        EncodingType::Auto => unreachable!("resolve() returns concrete encodings"),
    }
    concrete
}

/// Resolve a requested encoding against the data: Auto picks; inapplicable
/// specialized codecs fall back to Plain.
fn resolve(values: &[Value], requested: EncodingType) -> EncodingType {
    let non_null_applicable = |e: EncodingType| {
        let non_null: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();
        match e {
            EncodingType::DeltaValue => delta_value::applicable(&non_null),
            EncodingType::BlockDict => block_dict::applicable(&non_null),
            EncodingType::DeltaRange => delta_range::applicable(&non_null),
            EncodingType::CommonDelta => common_delta::applicable(&non_null),
            EncodingType::ForBitPack => for_bitpack::applicable(&non_null),
            EncodingType::DeltaDelta => delta_delta::applicable(&non_null),
            _ => true,
        }
    };
    match requested {
        EncodingType::Auto => auto::choose_encoding(values),
        EncodingType::Plain | EncodingType::Rle => requested,
        e if non_null_applicable(e) => e,
        _ => EncodingType::Plain,
    }
}

/// A decoded block in type-native form: the decode-into-vector surface the
/// execution engine's typed vectors are built from. Specialized codecs land
/// in native buffers without constructing a `Value` per row; `nulls` is the
/// on-disk null bitmap (bit set = NULL; values at null positions are
/// padding).
#[derive(Debug, Clone, PartialEq)]
pub enum NativeBlock {
    /// Integer-family payload; `ty` is `Integer`, `Timestamp` or `Boolean`.
    I64 {
        ty: DataType,
        values: Vec<i64>,
        nulls: Option<Vec<u8>>,
    },
    F64 {
        values: Vec<f64>,
        nulls: Option<Vec<u8>>,
    },
    /// Dictionary-coded strings: per-row codes into `dict`.
    Str {
        dict: Vec<String>,
        codes: Vec<u32>,
        nulls: Option<Vec<u8>>,
    },
    /// RLE runs, kept first-class for encoded execution.
    Runs(Vec<(Value, u32)>),
    /// Fallback for mixed-type or plain blocks.
    Values(Vec<Value>),
}

/// Is position `i` marked NULL in an on-disk null bitmap?
pub fn bitmap_is_null(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

impl NativeBlock {
    /// Row count without expansion.
    pub fn len(&self) -> usize {
        match self {
            NativeBlock::I64 { values, .. } => values.len(),
            NativeBlock::F64 { values, .. } => values.len(),
            NativeBlock::Str { codes, .. } => codes.len(),
            NativeBlock::Runs(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
            NativeBlock::Values(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand into the `Value`-level [`DecodedBlock`] form (compatibility
    /// edge for positional fetches and the legacy decode path).
    pub fn into_decoded(self) -> DecodedBlock {
        fn expand<T>(
            items: Vec<T>,
            nulls: Option<Vec<u8>>,
            mut make: impl FnMut(T) -> Value,
        ) -> Vec<Value> {
            match nulls {
                None => items.into_iter().map(make).collect(),
                Some(bitmap) => items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| {
                        if bitmap_is_null(&bitmap, i) {
                            Value::Null
                        } else {
                            make(v)
                        }
                    })
                    .collect(),
            }
        }
        match self {
            NativeBlock::I64 { ty, values, nulls } => {
                DecodedBlock::Values(expand(values, nulls, |v| match ty {
                    DataType::Timestamp => Value::Timestamp(v),
                    DataType::Boolean => Value::Boolean(v != 0),
                    _ => Value::Integer(v),
                }))
            }
            NativeBlock::F64 { values, nulls } => {
                DecodedBlock::Values(expand(values, nulls, Value::Float))
            }
            NativeBlock::Str { dict, codes, nulls } => {
                DecodedBlock::Values(expand(codes, nulls, |c| {
                    Value::Varchar(dict[c as usize].clone())
                }))
            }
            NativeBlock::Runs(runs) => DecodedBlock::Runs(runs),
            NativeBlock::Values(v) => DecodedBlock::Values(v),
        }
    }
}

/// Scatter `non_null` values into a full-length buffer, placing `default`
/// at NULL positions.
fn scatter<T: Clone>(
    non_null: Vec<T>,
    bitmap: &[u8],
    count: usize,
    default: T,
) -> DbResult<Vec<T>> {
    let mut out = Vec::with_capacity(count);
    let mut it = non_null.into_iter();
    for i in 0..count {
        if bitmap_is_null(bitmap, i) {
            out.push(default.clone());
        } else {
            out.push(
                it.next()
                    .ok_or_else(|| DbError::Corrupt("null bitmap / payload mismatch".into()))?,
            );
        }
    }
    Ok(out)
}

/// Decode one block into native form (no per-row `Value` construction for
/// the specialized codecs).
pub fn decode_block_native(r: &mut Reader<'_>) -> DbResult<NativeBlock> {
    Ok(decode_block_native_selected(r, None)?.0)
}

/// Selection-pushdown decode (§6.1 late materialization): decode only what
/// the selection `sel` (sorted row indexes within the block) can observe.
///
/// The contract: the returned block always has the block's full row count,
/// but positions **outside** the selection hold unspecified padding — the
/// caller must only inspect selected positions. Serial codecs stop after
/// the last selected row; the fixed-stride frame-of-reference codec decodes
/// exactly the selected slots. The second return value counts the rows
/// whose decode work was skipped.
pub fn decode_block_native_selected(
    r: &mut Reader<'_>,
    sel: Option<&[u32]>,
) -> DbResult<(NativeBlock, u64)> {
    let encoding = EncodingType::from_tag(r.get_u8()?)?;
    let count = r.get_uvarint()? as usize;
    let has_nulls = r.get_u8()? != 0;
    // Serial codecs must decode every row up to (and including) the last
    // selected one; everything after is padding.
    let needed = match sel {
        Some(s) => s.last().map_or(0, |&m| m as usize + 1).min(count),
        None => count,
    };
    let tail_skipped = (count - needed) as u64;
    match encoding {
        EncodingType::Plain => {
            let mut vals = plain::decode(r, needed)?;
            vals.resize(count, Value::Null);
            Ok((NativeBlock::Values(vals), tail_skipped))
        }
        // Runs are already the compressed form — decoding them is O(runs),
        // so there is nothing worth skipping.
        EncodingType::Rle => Ok((NativeBlock::Runs(rle::decode_runs(r, count)?), 0)),
        EncodingType::Auto => Err(DbError::Corrupt("Auto tag on disk".into())),
        specialized => {
            let (null_bitmap, non_null_needed) = if has_nulls {
                let bitmap = r.get_raw(count.div_ceil(8))?.to_vec();
                let non_null = (0..needed).filter(|&i| !bitmap_is_null(&bitmap, i)).count();
                (Some(bitmap), non_null)
            } else {
                (None, needed)
            };
            let int_ty = |tag: u8| match tag {
                1 => DataType::Timestamp,
                2 => DataType::Boolean,
                _ => DataType::Integer,
            };
            // Scatter the decoded prefix over null positions, then pad the
            // unneeded tail.
            let finish_i64 = |ty: DataType, values: Vec<i64>| -> DbResult<NativeBlock> {
                let (mut values, nulls) = match &null_bitmap {
                    None => (values, None),
                    Some(b) => (scatter(values, b, needed, 0)?, null_bitmap.clone()),
                };
                values.resize(count, 0);
                Ok(NativeBlock::I64 { ty, values, nulls })
            };
            match specialized {
                EncodingType::DeltaValue => {
                    let (tag, values) = delta_value::decode_native(r, non_null_needed)?;
                    Ok((finish_i64(int_ty(tag), values)?, tail_skipped))
                }
                EncodingType::CommonDelta => {
                    let (tag, values) = common_delta::decode_native(r, non_null_needed)?;
                    Ok((finish_i64(int_ty(tag), values)?, tail_skipped))
                }
                EncodingType::DeltaDelta => {
                    let (tag, values) = delta_delta::decode_native(r, non_null_needed)?;
                    Ok((finish_i64(int_ty(tag), values)?, tail_skipped))
                }
                EncodingType::ForBitPack => match (sel, &null_bitmap) {
                    // Fixed stride + no nulls: slot index == row index, so
                    // decode exactly the selected rows.
                    (Some(s), None) => {
                        let (tag, values) = for_bitpack::decode_native_selected(r, count, s)?;
                        Ok((
                            NativeBlock::I64 {
                                ty: int_ty(tag),
                                values,
                                nulls: None,
                            },
                            (count - s.len()) as u64,
                        ))
                    }
                    _ => {
                        let (tag, values) = for_bitpack::decode_native(r, non_null_needed)?;
                        Ok((finish_i64(int_ty(tag), values)?, tail_skipped))
                    }
                },
                EncodingType::DeltaRange => match delta_range::decode_native(r, non_null_needed)? {
                    delta_range::NativeRange::I64(tag, values) => {
                        Ok((finish_i64(int_ty(tag), values)?, tail_skipped))
                    }
                    delta_range::NativeRange::F64(values) => {
                        let (mut values, nulls) = match &null_bitmap {
                            None => (values, None),
                            Some(b) => (scatter(values, b, needed, 0.0)?, null_bitmap.clone()),
                        };
                        values.resize(count, 0.0);
                        Ok((NativeBlock::F64 { values, nulls }, tail_skipped))
                    }
                },
                EncodingType::BlockDict => {
                    let (dict, codes) = block_dict::decode_native(r, non_null_needed)?;
                    let (mut codes, nulls) = match &null_bitmap {
                        None => (codes, None),
                        Some(b) => (scatter(codes, b, needed, 0)?, null_bitmap.clone()),
                    };
                    codes.resize(count, 0);
                    Ok((native_from_dict(dict, codes, nulls)?, tail_skipped))
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Lower a dictionary block into the tightest native form the dictionary's
/// value type allows.
fn native_from_dict(
    dict: Vec<Value>,
    codes: Vec<u32>,
    nulls: Option<Vec<u8>>,
) -> DbResult<NativeBlock> {
    let uniform = dict
        .first()
        .and_then(Value::data_type)
        .filter(|ty| dict.iter().all(|v| v.data_type() == Some(*ty)));
    match uniform {
        Some(DataType::Varchar) => {
            let dict = dict
                .into_iter()
                .map(|v| match v {
                    Value::Varchar(s) => s,
                    _ => unreachable!(),
                })
                .collect();
            Ok(NativeBlock::Str { dict, codes, nulls })
        }
        Some(ty @ (DataType::Integer | DataType::Timestamp | DataType::Boolean)) => {
            let native: Vec<i64> = dict.iter().map(|v| v.as_i64().unwrap()).collect();
            let values = codes.into_iter().map(|c| native[c as usize]).collect();
            Ok(NativeBlock::I64 { ty, values, nulls })
        }
        Some(DataType::Float) => {
            let native: Vec<f64> = dict.iter().map(|v| v.as_f64().unwrap()).collect();
            let values = codes.into_iter().map(|c| native[c as usize]).collect();
            Ok(NativeBlock::F64 { values, nulls })
        }
        // Mixed-type or all-NULL dictionary: fall back to expanded values.
        None => {
            let expand = |c: u32| dict[c as usize].clone();
            let values = match &nulls {
                None => codes.into_iter().map(expand).collect(),
                Some(bitmap) => codes
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if bitmap_is_null(bitmap, i) {
                            Value::Null
                        } else {
                            expand(c)
                        }
                    })
                    .collect(),
            };
            Ok(NativeBlock::Values(values))
        }
    }
}

/// Decode one block to the `Value`-level form.
pub fn decode_block(r: &mut Reader<'_>) -> DbResult<DecodedBlock> {
    Ok(decode_block_native(r)?.into_decoded())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[Value], enc: EncodingType) -> EncodingType {
        let mut w = Writer::new();
        let used = encode_block(values, enc, &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_block(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.len(), values.len());
        assert_eq!(decoded.into_values(), values);
        used
    }

    #[test]
    fn every_concrete_encoding_round_trips_ints() {
        let vals: Vec<Value> = (0..500).map(|i| Value::Integer(i % 37)).collect();
        for e in EncodingType::CONCRETE {
            round_trip(&vals, e);
        }
    }

    #[test]
    fn nulls_round_trip_through_specialized_codecs() {
        let vals: Vec<Value> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Integer(i)
                }
            })
            .collect();
        for e in [
            EncodingType::DeltaValue,
            EncodingType::BlockDict,
            EncodingType::DeltaRange,
            EncodingType::CommonDelta,
            EncodingType::Rle,
            EncodingType::Plain,
        ] {
            round_trip(&vals, e);
        }
    }

    #[test]
    fn inapplicable_request_falls_back_to_plain() {
        let vals = vec![Value::Varchar("a".into()), Value::Varchar("b".into())];
        let used = round_trip(&vals, EncodingType::DeltaValue);
        assert_eq!(used, EncodingType::Plain);
    }

    #[test]
    fn rle_blocks_decode_as_runs() {
        let vals = vec![Value::Integer(1); 100];
        let mut w = Writer::new();
        encode_block(&vals, EncodingType::Rle, &mut w);
        let bytes = w.into_bytes();
        match decode_block(&mut Reader::new(&bytes)).unwrap() {
            DecodedBlock::Runs(runs) => assert_eq!(runs, vec![(Value::Integer(1), 100)]),
            DecodedBlock::Values(_) => panic!("rle should decode to runs"),
        }
    }

    #[test]
    fn empty_block() {
        round_trip(&[], EncodingType::Plain);
        round_trip(&[], EncodingType::Rle);
    }

    #[test]
    fn auto_never_writes_auto_tag() {
        let vals: Vec<Value> = (0..100).map(Value::Integer).collect();
        let mut w = Writer::new();
        let used = encode_block(&vals, EncodingType::Auto, &mut w);
        assert_ne!(used, EncodingType::Auto);
        let bytes = w.into_bytes();
        assert_ne!(bytes[0], EncodingType::Auto.tag());
    }
}
