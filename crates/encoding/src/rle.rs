//! RLE encoding (§3.4.1 type 2): `(run_length, value)` pairs.
//!
//! "Replaces sequences of identical values with a single pair that contains
//! the value and number of occurrences. This type is best for low
//! cardinality columns that are sorted." Because projections store data
//! totally sorted on their sort key (§3.1), RLE on leading sort columns is
//! the workhorse encoding — and the execution engine can consume the runs
//! *without expansion* ([`decode_runs`]), which is what "operators can
//! operate directly on encoded data" (§6.1) means for aggregation.

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbResult, Value};

/// Collapse values into `(value, run_length)` runs.
pub fn to_runs(values: &[Value]) -> Vec<(Value, u32)> {
    let mut runs: Vec<(Value, u32)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((rv, n)) if rv == v => *n += 1,
            _ => runs.push((v.clone(), 1)),
        }
    }
    runs
}

pub fn encode(values: &[Value], w: &mut Writer) {
    let runs = to_runs(values);
    w.put_uvarint(runs.len() as u64);
    for (v, n) in runs {
        w.put_uvarint(u64::from(n));
        w.put_value(&v);
    }
}

/// Decode into expanded values.
pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let runs = decode_runs(r, count)?;
    let mut out = Vec::with_capacity(count);
    for (v, n) in runs {
        for _ in 0..n {
            out.push(v.clone());
        }
    }
    Ok(out)
}

/// Decode into runs without expansion (encoded execution path).
pub fn decode_runs(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<(Value, u32)>> {
    let nruns = r.get_uvarint()? as usize;
    let mut runs = Vec::with_capacity(nruns);
    let mut total = 0u64;
    for _ in 0..nruns {
        let n = r.get_uvarint()?;
        let v = r.get_value()?;
        total += n;
        runs.push((v, n as u32));
    }
    if total != count as u64 {
        return Err(vdb_types::DbError::Corrupt(format!(
            "rle run total {total} != block count {count}"
        )));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_runs() {
        let vals: Vec<Value> = [1, 1, 1, 2, 2, 3, 3, 3, 3]
            .iter()
            .map(|&v| Value::Integer(v))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w);
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), vals.len()).unwrap(), vals);
        let runs = decode_runs(&mut Reader::new(&bytes), vals.len()).unwrap();
        assert_eq!(
            runs,
            vec![
                (Value::Integer(1), 3),
                (Value::Integer(2), 2),
                (Value::Integer(3), 4)
            ]
        );
    }

    #[test]
    fn sorted_low_cardinality_compresses_hard() {
        // 10k sorted values over 5 distincts: RLE output is ~5 pairs.
        let mut vals = Vec::new();
        for d in 0..5 {
            vals.extend(std::iter::repeat_n(Value::Integer(d), 2000));
        }
        let mut w = Writer::new();
        encode(&vals, &mut w);
        assert!(w.len() < 40, "rle bytes = {}", w.len());
    }

    #[test]
    fn nulls_form_runs_too() {
        let vals = vec![Value::Null, Value::Null, Value::Integer(1)];
        let mut w = Writer::new();
        encode(&vals, &mut w);
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 3).unwrap(), vals);
    }

    #[test]
    fn count_mismatch_is_corrupt() {
        let vals = vec![Value::Integer(1); 4];
        let mut w = Writer::new();
        encode(&vals, &mut w);
        let bytes = w.into_bytes();
        assert!(decode(&mut Reader::new(&bytes), 5).is_err());
    }
}
