//! `vdb-encoding` — Vertica's column encoding schemes (§3.4 of the paper).
//!
//! Each column of each projection has a specific encoding. This crate
//! implements the six encoding types enumerated in §3.4.1:
//!
//! 1. **Auto** — the system picks the most advantageous type from the data.
//! 2. **RLE** — run-length encoding; best for low-cardinality sorted columns.
//! 3. **Delta Value** — difference from the smallest value in a block; best
//!    for many-valued unsorted integer columns.
//! 4. **Block Dictionary** — per-block dictionary of distinct values; best
//!    for few-valued unsorted columns.
//! 5. **Compressed Delta Range** — delta from the previous value; ideal for
//!    many-valued float columns that are sorted or range-confined.
//! 6. **Compressed Common Delta** — dictionary of deltas with entropy-coded
//!    indexes; best for sorted data with predictable sequences (timestamps
//!    at periodic intervals, primary keys).
//!
//! Plus **Plain** (uncompressed) as the fallback.
//!
//! Columns are encoded in fixed-size *blocks* ([`block`]), and every block
//! records `(start position, row count, min, max)` in the per-column
//! [`position_index`] — "approximately 1/1000 the size of the raw column
//! data" (§3.7) — which the scan operator uses for fast tuple reconstruction
//! and container pruning.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod auto;
pub mod block;
pub mod block_dict;
pub mod column;
pub mod common_delta;
pub mod delta_delta;
pub mod delta_range;
pub mod delta_value;
pub mod for_bitpack;
pub mod plain;
pub mod position_index;
pub mod rle;

pub use auto::choose_encoding;
pub use block::{
    decode_block, decode_block_native, decode_block_native_selected, encode_block, DecodedBlock,
    NativeBlock,
};
pub use column::{ColumnReader, ColumnWriter, BLOCK_SIZE};
pub use position_index::{BlockMeta, PositionIndex};

use vdb_types::{DbError, DbResult};

/// Identifies an encoding scheme (§3.4.1). `Auto` is resolved to a concrete
/// scheme at encode time and never appears on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingType {
    /// Resolve per block based on data properties.
    Auto,
    /// Uncompressed tagged values.
    Plain,
    Rle,
    DeltaValue,
    BlockDict,
    DeltaRange,
    CommonDelta,
    /// Frame-of-reference + fixed-width bit-packing for integers.
    ForBitPack,
    /// Delta-of-delta with variable-width buckets for timestamp-like data.
    DeltaDelta,
}

impl EncodingType {
    pub fn tag(self) -> u8 {
        match self {
            EncodingType::Auto => 0,
            EncodingType::Plain => 1,
            EncodingType::Rle => 2,
            EncodingType::DeltaValue => 3,
            EncodingType::BlockDict => 4,
            EncodingType::DeltaRange => 5,
            EncodingType::CommonDelta => 6,
            EncodingType::ForBitPack => 7,
            EncodingType::DeltaDelta => 8,
        }
    }

    pub fn from_tag(tag: u8) -> DbResult<EncodingType> {
        Ok(match tag {
            0 => EncodingType::Auto,
            1 => EncodingType::Plain,
            2 => EncodingType::Rle,
            3 => EncodingType::DeltaValue,
            4 => EncodingType::BlockDict,
            5 => EncodingType::DeltaRange,
            6 => EncodingType::CommonDelta,
            7 => EncodingType::ForBitPack,
            8 => EncodingType::DeltaDelta,
            t => return Err(DbError::Corrupt(format!("unknown encoding tag {t}"))),
        })
    }

    /// All concrete (non-Auto) encodings, in trial order for the Database
    /// Designer's empirical storage-optimization phase (§6.3).
    pub const CONCRETE: [EncodingType; 8] = [
        EncodingType::Plain,
        EncodingType::Rle,
        EncodingType::DeltaValue,
        EncodingType::BlockDict,
        EncodingType::DeltaRange,
        EncodingType::CommonDelta,
        EncodingType::ForBitPack,
        EncodingType::DeltaDelta,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EncodingType::Auto => "AUTO",
            EncodingType::Plain => "PLAIN",
            EncodingType::Rle => "RLE",
            EncodingType::DeltaValue => "DELTAVAL",
            EncodingType::BlockDict => "BLOCKDICT",
            EncodingType::DeltaRange => "DELTARANGE",
            EncodingType::CommonDelta => "COMMONDELTA",
            EncodingType::ForBitPack => "FORBITPACK",
            EncodingType::DeltaDelta => "DELTADELTA",
        }
    }

    pub fn parse(name: &str) -> Option<EncodingType> {
        Some(match name.to_ascii_uppercase().as_str() {
            "AUTO" => EncodingType::Auto,
            "PLAIN" | "NONE" => EncodingType::Plain,
            "RLE" => EncodingType::Rle,
            "DELTAVAL" | "DELTA_VALUE" => EncodingType::DeltaValue,
            "BLOCKDICT" | "BLOCK_DICT" => EncodingType::BlockDict,
            "DELTARANGE" | "DELTA_RANGE" => EncodingType::DeltaRange,
            "COMMONDELTA" | "COMMON_DELTA" => EncodingType::CommonDelta,
            "FORBITPACK" | "FOR_BITPACK" => EncodingType::ForBitPack,
            "DELTADELTA" | "DELTA_DELTA" => EncodingType::DeltaDelta,
            _ => return None,
        })
    }
}

impl std::fmt::Display for EncodingType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        for e in EncodingType::CONCRETE {
            assert_eq!(EncodingType::from_tag(e.tag()).unwrap(), e);
        }
        assert!(EncodingType::from_tag(99).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(EncodingType::parse("rle"), Some(EncodingType::Rle));
        assert_eq!(
            EncodingType::parse("COMMONDELTA"),
            Some(EncodingType::CommonDelta)
        );
        assert_eq!(EncodingType::parse("nope"), None);
    }
}
