//! Delta Value encoding (§3.4.1 type 3): difference from the block minimum.
//!
//! "Data is recorded as a difference from the smallest value in a data
//! block. This type is best used for many-valued, unsorted integer or
//! integer-based columns." Integer-based covers TIMESTAMP and BOOLEAN.

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Type tag preserved so decode restores the original value variant.
fn type_tag(values: &[Value]) -> Option<u8> {
    let mut tag = None;
    for v in values {
        let t = match v {
            Value::Integer(_) => 0u8,
            Value::Timestamp(_) => 1,
            Value::Boolean(_) => 2,
            _ => return None,
        };
        match tag {
            None => tag = Some(t),
            Some(prev) if prev == t => {}
            _ => return None,
        }
    }
    tag.or(Some(0))
}

/// True when every value is integral of a single variant (the codec's
/// applicability condition).
pub fn applicable(values: &[Value]) -> bool {
    type_tag(values).is_some()
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let tag = type_tag(values).ok_or_else(|| {
        DbError::Execution("delta-value encoding requires a single integral type".into())
    })?;
    let ints: Vec<i64> = values.iter().map(|v| v.as_i64().unwrap()).collect();
    let min = ints.iter().copied().min().unwrap_or(0);
    w.put_u8(tag);
    w.put_ivarint(min);
    for v in &ints {
        // Difference from the smallest value is non-negative by definition,
        // so an unsigned varint is the tightest representation.
        w.put_uvarint((v - min) as u64);
    }
    Ok(())
}

/// Decode straight into a native `i64` buffer (no per-row `Value`
/// construction); the returned tag is 0=Integer, 1=Timestamp, 2=Boolean.
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<(u8, Vec<i64>)> {
    let tag = r.get_u8()?;
    if tag > 2 {
        return Err(DbError::Corrupt(format!("bad delta-value tag {tag}")));
    }
    let min = r.get_ivarint()?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = min
            .checked_add(r.get_uvarint()? as i64)
            .ok_or_else(|| DbError::Corrupt("delta-value overflow".into()))?;
        out.push(v);
    }
    Ok((tag, out))
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let (tag, ints) = decode_native(r, count)?;
    Ok(ints
        .into_iter()
        .map(|v| match tag {
            0 => Value::Integer(v),
            1 => Value::Timestamp(v),
            _ => Value::Boolean(v != 0),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unsorted_ints() {
        let vals: Vec<Value> = [500, 123, 999, 456, 123]
            .iter()
            .map(|&v| Value::Integer(v))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 5).unwrap(), vals);
    }

    #[test]
    fn round_trip_timestamps_preserves_type() {
        let vals = vec![Value::Timestamp(1000), Value::Timestamp(2000)];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 2).unwrap(), vals);
    }

    #[test]
    fn clustered_values_beat_plain() {
        // Values clustered near 1e12: plain tagged varints need ~6 bytes
        // each; deltas from min need ~2.
        let base = 1_000_000_000_000i64;
        let vals: Vec<Value> = (0..1000)
            .map(|i| Value::Integer(base + (i * 37) % 10_000))
            .collect();
        let mut dw = Writer::new();
        encode(&vals, &mut dw).unwrap();
        let mut pw = Writer::new();
        crate::plain::encode(&vals, &mut pw);
        assert!(
            dw.len() < pw.len() / 2,
            "delta {} vs plain {}",
            dw.len(),
            pw.len()
        );
    }

    #[test]
    fn rejects_floats_and_mixed() {
        assert!(!applicable(&[Value::Float(1.0)]));
        assert!(!applicable(&[Value::Integer(1), Value::Timestamp(2)]));
        assert!(!applicable(&[Value::Integer(1), Value::Null]));
        let mut w = Writer::new();
        assert!(encode(&[Value::Float(1.0)], &mut w).is_err());
    }

    #[test]
    fn negative_values() {
        let vals: Vec<Value> = [-100, -5, -100, 0]
            .iter()
            .map(|&v| Value::Integer(v))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 4).unwrap(), vals);
    }
}
