//! Compressed Common Delta encoding (§3.4.1 type 6).
//!
//! "Builds a dictionary of all the deltas in the block and then stores
//! indexes into the dictionary using entropy coding. This type is best for
//! sorted data with predictable sequences and occasional sequence breaks.
//! For example, timestamps recorded at periodic intervals or primary keys."
//!
//! The delta dictionary is tiny for periodic data (often one entry); the
//! Huffman coder from `vdb-compress` then spends ~0 bits on the dominant
//! delta and a few bits on each sequence break.

use vdb_compress::bitio::{BitReader, BitWriter};
use vdb_compress::huffman::{HuffmanDecoder, HuffmanEncoder};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// More distinct deltas than this and the scheme degenerates; `applicable`
/// rejects such blocks.
pub const MAX_DELTA_DICT: usize = 1024;

fn type_tag(values: &[Value]) -> Option<u8> {
    let mut tag = None;
    for v in values {
        let t = match v {
            Value::Integer(_) => 0u8,
            Value::Timestamp(_) => 1,
            _ => return None,
        };
        match tag {
            None => tag = Some(t),
            Some(p) if p == t => {}
            _ => return None,
        }
    }
    tag.or(Some(0))
}

fn deltas_of(values: &[Value]) -> Option<Vec<i64>> {
    type_tag(values)?;
    let mut prev = 0i64;
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let i = v.as_i64().unwrap();
        out.push(i.wrapping_sub(prev));
        prev = i;
    }
    Some(out)
}

pub fn applicable(values: &[Value]) -> bool {
    match deltas_of(values) {
        None => false,
        Some(deltas) => {
            let mut d = deltas;
            d.sort_unstable();
            d.dedup();
            d.len() <= MAX_DELTA_DICT
        }
    }
}

/// Stricter gate for the Auto picker: the scheme only pays off when deltas
/// *repeat* ("predictable sequences with occasional breaks"); a near-full
/// dictionary means random data where the Huffman pass just burns CPU.
pub fn profitable(values: &[Value]) -> bool {
    match deltas_of(values) {
        None => false,
        Some(deltas) => {
            let n = deltas.len();
            let mut d = deltas;
            d.sort_unstable();
            d.dedup();
            d.len() <= MAX_DELTA_DICT && d.len() * 8 <= n
        }
    }
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let tag = type_tag(values).ok_or_else(|| {
        DbError::Execution("common-delta encoding requires integral values".into())
    })?;
    let deltas = deltas_of(values).unwrap();
    let mut dict: Vec<i64> = deltas.clone();
    dict.sort_unstable();
    dict.dedup();
    if dict.len() > MAX_DELTA_DICT {
        return Err(DbError::Execution(format!(
            "common-delta dictionary over {MAX_DELTA_DICT} entries"
        )));
    }
    w.put_u8(tag);
    // Dictionary: sorted deltas, themselves delta-coded for density.
    w.put_uvarint(dict.len() as u64);
    let mut prev = 0i64;
    for &d in &dict {
        w.put_ivarint(d.wrapping_sub(prev));
        prev = d;
    }
    // Entropy-coded indexes.
    let mut freqs = vec![0u64; dict.len()];
    let indexes: Vec<usize> = deltas
        .iter()
        .map(|d| dict.binary_search(d).expect("delta in dict"))
        .collect();
    for &i in &indexes {
        freqs[i] += 1;
    }
    let enc = HuffmanEncoder::from_freqs(&freqs);
    // Header: code lengths (4 bits each), then the bitstream.
    let mut bits = BitWriter::new();
    for &l in enc.lengths() {
        bits.write_bits(u64::from(l), 4);
    }
    for &i in &indexes {
        enc.emit(&mut bits, i);
    }
    w.put_bytes(&bits.finish());
    Ok(())
}

/// Decode straight into a native `i64` buffer (no per-row `Value`
/// construction); the returned tag is 0=Integer, 1=Timestamp.
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<(u8, Vec<i64>)> {
    let tag = r.get_u8()?;
    if tag > 1 {
        return Err(DbError::Corrupt(format!("bad common-delta tag {tag}")));
    }
    let dict_len = r.get_uvarint()? as usize;
    if dict_len > MAX_DELTA_DICT {
        return Err(DbError::Corrupt("common-delta dictionary too large".into()));
    }
    let mut dict = Vec::with_capacity(dict_len);
    let mut prev = 0i64;
    for _ in 0..dict_len {
        prev = prev.wrapping_add(r.get_ivarint()?);
        dict.push(prev);
    }
    let packed = r.get_bytes()?;
    let mut bits = BitReader::new(packed);
    let mut lengths = vec![0u32; dict_len];
    for l in lengths.iter_mut() {
        *l = bits
            .read_bits(4)
            .map_err(|e| DbError::Corrupt(e.to_string()))? as u32;
    }
    let dec =
        HuffmanDecoder::from_lengths(&lengths).map_err(|e| DbError::Corrupt(e.to_string()))?;
    let mut out = Vec::with_capacity(count);
    let mut acc = 0i64;
    for _ in 0..count {
        let idx = dec
            .read(&mut bits)
            .map_err(|e| DbError::Corrupt(e.to_string()))?;
        acc = acc.wrapping_add(dict[idx]);
        out.push(acc);
    }
    Ok((tag, out))
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let (tag, ints) = decode_native(r, count)?;
    Ok(ints
        .into_iter()
        .map(|v| {
            if tag == 0 {
                Value::Integer(v)
            } else {
                Value::Timestamp(v)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_timestamps_compress_to_almost_nothing() {
        // Meter readings every 300s with occasional 3600s gaps — the
        // paper's canonical use case.
        let mut ts = 1_600_000_000i64;
        let vals: Vec<Value> = (0..4096)
            .map(|i| {
                ts += if i % 97 == 0 { 3600 } else { 300 };
                Value::Timestamp(ts)
            })
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        // Two-entry delta dictionary, ~1 bit per value ⇒ ~550 bytes.
        assert!(w.len() < 800, "common-delta bytes = {}", w.len());
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 4096).unwrap(), vals);
    }

    #[test]
    fn primary_keys_single_delta() {
        let vals: Vec<Value> = (1..=1000).map(Value::Integer).collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        assert!(w.len() < 200, "pk bytes = {}", w.len());
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 1000).unwrap(), vals);
    }

    #[test]
    fn round_trip_with_breaks_and_negatives() {
        let raw = [10i64, 20, 30, 25, 35, 45, 0, 10];
        let vals: Vec<Value> = raw.iter().map(|&v| Value::Integer(v)).collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), raw.len()).unwrap(), vals);
    }

    #[test]
    fn applicability() {
        assert!(!applicable(&[Value::Float(1.0)]));
        assert!(!applicable(&[Value::Null]));
        // Random 64-bit values: every delta distinct → not applicable once
        // the block exceeds the dictionary cap.
        let mut x = 1u64;
        let many: Vec<Value> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Value::Integer(x as i64)
            })
            .collect();
        assert!(!applicable(&many));
        let periodic: Vec<Value> = (0..2000).map(|i| Value::Integer(i * 5)).collect();
        assert!(applicable(&periodic));
    }
}
