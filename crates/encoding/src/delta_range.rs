//! Compressed Delta Range encoding (§3.4.1 type 5).
//!
//! "Stores each value as a delta from the previous one. This type is ideal
//! for many-valued float columns that are either sorted or confined to a
//! range."
//!
//! Integral values use zig-zag varint deltas. Floats use XOR-against-
//! previous of the IEEE bits (varint-coded), which collapses to 1 byte for
//! repeated values and short codes for values in a confined range sharing
//! exponent and high mantissa bits.

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

fn type_tag(values: &[Value]) -> Option<u8> {
    let mut tag = None;
    for v in values {
        let t = match v {
            Value::Integer(_) => 0u8,
            Value::Timestamp(_) => 1,
            Value::Float(_) => 2,
            _ => return None,
        };
        match tag {
            None => tag = Some(t),
            Some(p) if p == t => {}
            _ => return None,
        }
    }
    tag.or(Some(0))
}

pub fn applicable(values: &[Value]) -> bool {
    type_tag(values).is_some()
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let tag = type_tag(values).ok_or_else(|| {
        DbError::Execution("delta-range encoding requires a single numeric type".into())
    })?;
    w.put_u8(tag);
    if tag == 2 {
        let mut prev = 0u64;
        for v in values {
            let bits = match v {
                Value::Float(f) => f.to_bits(),
                _ => unreachable!(),
            };
            w.put_uvarint(bits ^ prev);
            prev = bits;
        }
    } else {
        let mut prev = 0i64;
        for v in values {
            let i = v.as_i64().unwrap();
            w.put_ivarint(i.wrapping_sub(prev));
            prev = i;
        }
    }
    Ok(())
}

/// Native decode result: integral (tag 0=Integer, 1=Timestamp) or float.
pub enum NativeRange {
    I64(u8, Vec<i64>),
    F64(Vec<f64>),
}

/// Decode straight into a native buffer (no per-row `Value` construction).
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<NativeRange> {
    let tag = r.get_u8()?;
    match tag {
        2 => {
            let mut out = Vec::with_capacity(count);
            let mut prev = 0u64;
            for _ in 0..count {
                let bits = r.get_uvarint()? ^ prev;
                prev = bits;
                out.push(f64::from_bits(bits));
            }
            Ok(NativeRange::F64(out))
        }
        0 | 1 => {
            let mut out = Vec::with_capacity(count);
            let mut prev = 0i64;
            for _ in 0..count {
                let v = prev.wrapping_add(r.get_ivarint()?);
                prev = v;
                out.push(v);
            }
            Ok(NativeRange::I64(tag, out))
        }
        t => Err(DbError::Corrupt(format!("bad delta-range tag {t}"))),
    }
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    Ok(match decode_native(r, count)? {
        NativeRange::F64(fs) => fs.into_iter().map(Value::Float).collect(),
        NativeRange::I64(0, is) => is.into_iter().map(Value::Integer).collect(),
        NativeRange::I64(_, is) => is.into_iter().map(Value::Timestamp).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_sorted_ints() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Integer(i * 3)).collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        // Sorted with constant stride: 1 byte per delta.
        assert!(w.len() < 1100, "bytes = {}", w.len());
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 1000).unwrap(), vals);
    }

    #[test]
    fn round_trip_floats_confined_range() {
        let vals: Vec<Value> = (0..500)
            .map(|i| Value::Float(100.0 + f64::from(i % 50) * 0.25))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let dr_len = w.len();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 500).unwrap(), vals);
        // Confined range: XOR deltas stay well under the 9 bytes a raw
        // tagged f64 needs.
        let mut pw = Writer::new();
        crate::plain::encode(&vals, &mut pw);
        assert!(
            dr_len < pw.len(),
            "delta-range {dr_len} vs plain {}",
            pw.len()
        );
    }

    #[test]
    fn repeated_floats_collapse() {
        let vals = vec![Value::Float(3.125); 1000];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        assert!(w.len() < 1020, "repeats are 1 byte each, got {}", w.len());
    }

    #[test]
    fn special_float_values() {
        let vals = vec![
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(-0.0),
            Value::Float(f64::MIN_POSITIVE),
        ];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        let back = decode(&mut Reader::new(&bytes), 4).unwrap();
        // NaN round-trips bit-exactly under total-order equality.
        assert_eq!(back, vals);
    }

    #[test]
    fn overflow_safe_deltas() {
        let vals = vec![Value::Integer(i64::MIN), Value::Integer(i64::MAX)];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 2).unwrap(), vals);
    }

    #[test]
    fn rejects_mixed_and_strings() {
        assert!(!applicable(&[Value::Varchar("x".into())]));
        assert!(!applicable(&[Value::Integer(1), Value::Float(1.0)]));
        assert!(!applicable(&[Value::Null]));
    }
}
