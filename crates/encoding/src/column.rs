//! Whole-column encode/decode: the data file + position index pair (§3.7).
//!
//! [`ColumnWriter`] buffers values, cuts them into [`BLOCK_SIZE`] blocks,
//! encodes each with the column's encoding (resolving Auto per block), and
//! produces the two byte streams a ROS container stores per column.
//! [`ColumnReader`] supports full scans, block-pruned scans and positional
//! fetches (tuple reconstruction "by fetching values with the same position
//! from each column file").

use crate::block::{decode_block_native_selected, encode_block, DecodedBlock, NativeBlock};
use crate::position_index::{BlockMeta, PositionIndex};
use crate::EncodingType;
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Rows per encoded block. With typical value widths this keeps the
/// position index within the paper's "~1/1000 of raw data" budget.
pub const BLOCK_SIZE: usize = 1024;

/// Streams values into an encoded column (data bytes + position index).
pub struct ColumnWriter {
    encoding: EncodingType,
    block_size: usize,
    pending: Vec<Value>,
    data: Writer,
    index: PositionIndex,
    rows_written: u64,
}

impl ColumnWriter {
    pub fn new(encoding: EncodingType) -> ColumnWriter {
        ColumnWriter::with_block_size(encoding, BLOCK_SIZE)
    }

    pub fn with_block_size(encoding: EncodingType, block_size: usize) -> ColumnWriter {
        assert!(block_size > 0);
        ColumnWriter {
            encoding,
            block_size,
            pending: Vec::with_capacity(block_size),
            data: Writer::new(),
            index: PositionIndex::default(),
            rows_written: 0,
        }
    }

    pub fn push(&mut self, v: Value) {
        self.pending.push(v);
        if self.pending.len() >= self.block_size {
            self.flush_block();
        }
    }

    pub fn extend(&mut self, values: impl IntoIterator<Item = Value>) {
        for v in values {
            self.push(v);
        }
    }

    fn flush_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let values = std::mem::take(&mut self.pending);
        let byte_offset = self.data.len() as u64;
        let used = encode_block(&values, self.encoding, &mut self.data);
        let (min, max) = min_max_non_null(&values);
        let null_count = values.iter().filter(|v| v.is_null()).count() as u32;
        self.index.blocks.push(BlockMeta {
            start_position: self.rows_written,
            count: values.len() as u32,
            byte_offset,
            byte_len: (self.data.len() as u64 - byte_offset) as u32,
            encoding: used,
            min,
            max,
            null_count,
        });
        self.rows_written += values.len() as u64;
        self.pending = Vec::with_capacity(self.block_size);
    }

    /// Finish the column, returning `(data_bytes, position_index)`.
    pub fn finish(mut self) -> (Vec<u8>, PositionIndex) {
        self.flush_block();
        (self.data.into_bytes(), self.index)
    }
}

fn min_max_non_null(values: &[Value]) -> (Value, Value) {
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    for v in values {
        if v.is_null() {
            continue;
        }
        if min.is_none_or(|m| v < m) {
            min = Some(v);
        }
        if max.is_none_or(|m| v > m) {
            max = Some(v);
        }
    }
    (
        min.cloned().unwrap_or(Value::Null),
        max.cloned().unwrap_or(Value::Null),
    )
}

/// Reads an encoded column given its data bytes and position index.
pub struct ColumnReader<'a> {
    data: &'a [u8],
    index: &'a PositionIndex,
}

impl<'a> ColumnReader<'a> {
    pub fn new(data: &'a [u8], index: &'a PositionIndex) -> ColumnReader<'a> {
        ColumnReader { data, index }
    }

    pub fn num_blocks(&self) -> usize {
        self.index.blocks.len()
    }

    pub fn total_rows(&self) -> u64 {
        self.index.total_rows()
    }

    /// Decode block `i` (runs stay runs for the encoded-execution path).
    pub fn read_block(&self, i: usize) -> DbResult<DecodedBlock> {
        Ok(self.read_block_native(i)?.into_decoded())
    }

    /// Decode block `i` into type-native buffers (no per-row `Value`
    /// construction for specialized codecs) — the scan operator's typed
    /// vector fast path.
    pub fn read_block_native(&self, i: usize) -> DbResult<NativeBlock> {
        Ok(self.read_block_native_selected(i, None)?.0)
    }

    /// Selection-pushdown decode of block `i`: only the rows listed in
    /// `sel` (sorted indexes within the block) are guaranteed to be
    /// materialized; positions outside the selection hold unspecified
    /// padding. Returns the block plus the number of rows whose decode was
    /// skipped.
    pub fn read_block_native_selected(
        &self,
        i: usize,
        sel: Option<&[u32]>,
    ) -> DbResult<(NativeBlock, u64)> {
        let meta = self
            .index
            .blocks
            .get(i)
            .ok_or_else(|| DbError::Corrupt(format!("block {i} out of range")))?;
        let start = meta.byte_offset as usize;
        let end = start + meta.byte_len as usize;
        if end > self.data.len() {
            return Err(DbError::Corrupt("block extends past data file".into()));
        }
        let (block, skipped) =
            decode_block_native_selected(&mut Reader::new(&self.data[start..end]), sel)?;
        if block.len() != meta.count as usize {
            return Err(DbError::Corrupt(format!(
                "block {i} decoded {} rows, index says {}",
                block.len(),
                meta.count
            )));
        }
        Ok((block, skipped))
    }

    /// Decode the whole column to values.
    pub fn read_all(&self) -> DbResult<Vec<Value>> {
        let mut out = Vec::with_capacity(self.total_rows() as usize);
        for i in 0..self.num_blocks() {
            out.extend(self.read_block(i)?.into_values());
        }
        Ok(out)
    }

    /// Fetch the value at an ordinal position (tuple reconstruction).
    pub fn value_at(&self, position: u64) -> DbResult<Value> {
        let bi = self
            .index
            .block_for_position(position)
            .ok_or_else(|| DbError::Corrupt(format!("position {position} out of range")))?;
        let meta = &self.index.blocks[bi];
        let within = (position - meta.start_position) as usize;
        match self.read_block(bi)? {
            DecodedBlock::Values(vals) => Ok(vals[within].clone()),
            DecodedBlock::Runs(runs) => {
                let mut remaining = within;
                for (v, n) in runs {
                    if remaining < n as usize {
                        return Ok(v);
                    }
                    remaining -= n as usize;
                }
                Err(DbError::Corrupt("position past run total".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_column(values: &[Value], enc: EncodingType) -> (Vec<u8>, PositionIndex) {
        let mut w = ColumnWriter::with_block_size(enc, 100);
        w.extend(values.iter().cloned());
        w.finish()
    }

    #[test]
    fn multi_block_round_trip() {
        let vals: Vec<Value> = (0..550).map(|i| Value::Integer(i % 13)).collect();
        let (data, index) = write_column(&vals, EncodingType::Auto);
        assert_eq!(index.blocks.len(), 6, "550 rows / 100-row blocks");
        let r = ColumnReader::new(&data, &index);
        assert_eq!(r.read_all().unwrap(), vals);
        assert_eq!(r.total_rows(), 550);
    }

    #[test]
    fn positional_fetch() {
        let vals: Vec<Value> = (0..550).map(Value::Integer).collect();
        let (data, index) = write_column(&vals, EncodingType::CommonDelta);
        let r = ColumnReader::new(&data, &index);
        for pos in [0u64, 99, 100, 101, 549] {
            assert_eq!(r.value_at(pos).unwrap(), Value::Integer(pos as i64));
        }
        assert!(r.value_at(550).is_err());
    }

    #[test]
    fn positional_fetch_through_rle_runs() {
        let mut vals = Vec::new();
        for d in 0..5 {
            vals.extend(std::iter::repeat_n(Value::Integer(d), 50));
        }
        let (data, index) = write_column(&vals, EncodingType::Rle);
        let r = ColumnReader::new(&data, &index);
        assert_eq!(r.value_at(0).unwrap(), Value::Integer(0));
        assert_eq!(r.value_at(49).unwrap(), Value::Integer(0));
        assert_eq!(r.value_at(50).unwrap(), Value::Integer(1));
        assert_eq!(r.value_at(249).unwrap(), Value::Integer(4));
    }

    #[test]
    fn block_min_max_supports_pruning() {
        // Sorted data: each 100-row block covers a disjoint range.
        let vals: Vec<Value> = (0..300).map(Value::Integer).collect();
        let (_, index) = write_column(&vals, EncodingType::Auto);
        assert_eq!(index.blocks[0].min, Value::Integer(0));
        assert_eq!(index.blocks[0].max, Value::Integer(99));
        assert_eq!(index.blocks[2].min, Value::Integer(200));
        // A predicate `col >= 250` must prune blocks 0 and 1.
        let kept: Vec<usize> = (0..3)
            .filter(|&i| index.blocks[i].might_contain_range(Some(&Value::Integer(250)), None))
            .collect();
        assert_eq!(kept, vec![2]);
    }

    #[test]
    fn position_index_is_small_fraction_of_data() {
        // Paper: "approximately 1/1000 the size of the raw column data".
        // With plain-encoded wide-ish strings and 1024-row blocks the index
        // is a tiny fraction; assert an order-of-magnitude bound.
        let vals: Vec<Value> = (0..20_000)
            .map(|i| Value::Varchar(format!("customer-name-{i:08}")))
            .collect();
        let mut w = ColumnWriter::new(EncodingType::Plain);
        w.extend(vals);
        let (data, index) = w.finish();
        let index_bytes = index.encode().len();
        assert!(
            index_bytes * 100 < data.len(),
            "index {} vs data {}",
            index_bytes,
            data.len()
        );
    }

    #[test]
    fn corrupt_data_detected() {
        let vals: Vec<Value> = (0..200).map(Value::Integer).collect();
        let (data, index) = write_column(&vals, EncodingType::Plain);
        let r = ColumnReader::new(&data[..data.len() / 2], &index);
        assert!(r.read_all().is_err());
    }

    #[test]
    fn empty_column() {
        let (data, index) = write_column(&[], EncodingType::Auto);
        let r = ColumnReader::new(&data, &index);
        assert_eq!(r.read_all().unwrap(), Vec::<Value>::new());
        assert_eq!(r.total_rows(), 0);
    }
}
