//! Plain (uncompressed) encoding: tagged values back to back.
//!
//! Fallback when no specialized scheme applies; also the reference decoder
//! against which all other codecs are property-tested.

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbResult, Value};

pub fn encode(values: &[Value], w: &mut Writer) {
    for v in values {
        w.put_value(v);
    }
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.get_value()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed() {
        let vals = vec![
            Value::Integer(1),
            Value::Varchar("x".into()),
            Value::Float(0.5),
            Value::Boolean(false),
            Value::Timestamp(99),
        ];
        let mut w = Writer::new();
        encode(&vals, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode(&mut r, vals.len()).unwrap(), vals);
    }
}
