//! Auto encoding selection (§3.4.1 type 1).
//!
//! "The system automatically picks the most advantageous encoding type
//! based on properties of the data itself. This type is the default and is
//! used when insufficient usage examples are known."
//!
//! [`choose_encoding`] uses cheap data properties (run structure, distinct
//! count, type, sortedness). [`choose_by_trial`] actually encodes with
//! every applicable scheme and keeps the smallest — the empirical method
//! the Database Designer's storage-optimization phase uses (§6.3), whose
//! encoding choices the paper notes users essentially never override.

use crate::{
    block_dict, common_delta, delta_delta, delta_range, delta_value, for_bitpack, rle, EncodingType,
};
use vdb_types::codec::Writer;
use vdb_types::Value;

/// Data properties driving the heuristic choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnProperties {
    pub count: usize,
    pub distinct: usize,
    pub runs: usize,
    pub sorted: bool,
    pub all_integral: bool,
    pub all_float: bool,
    pub has_nulls: bool,
}

/// Compute the properties of a block of values (exact; blocks are small).
pub fn analyze(values: &[Value]) -> ColumnProperties {
    let count = values.len();
    let runs = rle::to_runs(values).len();
    let mut distinct_set: Vec<&Value> = values.iter().collect();
    distinct_set.sort();
    distinct_set.dedup();
    let distinct = distinct_set.len();
    let sorted = values.windows(2).all(|w| w[0] <= w[1]);
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    let all_integral = !non_null.is_empty()
        && non_null
            .iter()
            .all(|v| matches!(v, Value::Integer(_) | Value::Timestamp(_)));
    let all_float = !non_null.is_empty() && non_null.iter().all(|v| matches!(v, Value::Float(_)));
    ColumnProperties {
        count,
        distinct,
        runs,
        sorted,
        all_integral,
        all_float,
        has_nulls: non_null.len() != count,
    }
}

/// Heuristic encoding choice from data properties.
pub fn choose_encoding(values: &[Value]) -> EncodingType {
    if values.is_empty() {
        return EncodingType::Plain;
    }
    let p = analyze(values);
    let non_null: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();

    // Long runs (low-cardinality sorted data): RLE wins outright.
    if p.count >= 8 && p.runs * 4 <= p.count {
        return EncodingType::Rle;
    }
    if p.all_integral {
        // Predictable sequences (repeating deltas) → delta dictionary +
        // entropy coding. Sortedness is not required: periodic timestamps
        // that reset at series boundaries still have a tiny delta
        // dictionary. The profitability gate (deltas must repeat ≥8x on
        // average) keeps random integers away from this scheme.
        if common_delta::profitable(&non_null) {
            return EncodingType::CommonDelta;
        }
        // Stable-delta sequences whose deltas do not repeat (drift,
        // acceleration) → delta-of-delta buckets.
        if delta_delta::profitable(&non_null) {
            return EncodingType::DeltaDelta;
        }
        // Few-valued unsorted → per-block dictionary.
        if p.distinct * 16 <= p.count && block_dict::applicable(&non_null) {
            return EncodingType::BlockDict;
        }
        // Offsets that fill their bit width uniformly → fixed-stride
        // frame-of-reference packing (also unlocks random-access decode).
        if for_bitpack::profitable(&non_null) {
            return EncodingType::ForBitPack;
        }
        // Many-valued unsorted integers → delta from block min.
        if delta_value::applicable(&non_null) {
            return EncodingType::DeltaValue;
        }
    }
    if p.all_float {
        if p.distinct * 16 <= p.count && block_dict::applicable(&non_null) {
            return EncodingType::BlockDict;
        }
        if delta_range::applicable(&non_null) {
            return EncodingType::DeltaRange;
        }
    }
    // Strings / mixed: dictionary when repetitive, else plain.
    if p.distinct * 4 <= p.count && block_dict::applicable(&non_null) {
        return EncodingType::BlockDict;
    }
    EncodingType::Plain
}

/// Empirically choose the smallest encoding by trial (the DBD method).
/// Returns `(winner, encoded_sizes)` where sizes align with
/// [`EncodingType::CONCRETE`].
pub fn choose_by_trial(values: &[Value]) -> (EncodingType, Vec<(EncodingType, usize)>) {
    let mut results = Vec::with_capacity(EncodingType::CONCRETE.len());
    for e in EncodingType::CONCRETE {
        let mut w = Writer::new();
        let used = crate::block::encode_block(values, e, &mut w);
        // Only count schemes that actually applied (no silent Plain
        // fallback winning under another name).
        if used == e {
            results.push((e, w.len()));
        }
    }
    let winner = results
        .iter()
        .min_by_key(|(_, size)| *size)
        .map(|(e, _)| *e)
        .unwrap_or(EncodingType::Plain);
    (winner, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_low_cardinality_picks_rle() {
        let mut vals = Vec::new();
        for d in 0..4 {
            vals.extend(std::iter::repeat_n(Value::Integer(d), 100));
        }
        assert_eq!(choose_encoding(&vals), EncodingType::Rle);
    }

    #[test]
    fn periodic_sorted_ints_pick_common_delta() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Integer(i * 300)).collect();
        assert_eq!(choose_encoding(&vals), EncodingType::CommonDelta);
    }

    #[test]
    fn many_valued_uniform_ints_pick_for_bitpack() {
        // Uniform offsets fill their 20-bit width: fixed-stride packing
        // beats per-value varints.
        let mut x = 17u64;
        let vals: Vec<Value> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Value::Integer((x % 1_000_000) as i64)
            })
            .collect();
        assert_eq!(choose_encoding(&vals), EncodingType::ForBitPack);
    }

    #[test]
    fn skewed_ints_with_outliers_pick_delta_value() {
        // Tiny offsets with rare huge outliers: one outlier widens every
        // fixed-stride slot, but only its own varint.
        let mut x = 5u64;
        let vals: Vec<Value> = (0..1000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 97 == 0 {
                    Value::Integer((x % 1_000_000_000_000) as i64)
                } else {
                    Value::Integer((x % 500) as i64)
                }
            })
            .collect();
        assert_eq!(choose_encoding(&vals), EncodingType::DeltaValue);
    }

    #[test]
    fn drifting_timestamps_pick_delta_delta() {
        // Delta grows every row (never repeats → common-delta dictionary
        // cannot amortize) but the second-order difference is constant.
        let mut acc = 1_600_000_000i64;
        let vals: Vec<Value> = (0..1000)
            .map(|i| {
                acc += 300 + i;
                Value::Timestamp(acc)
            })
            .collect();
        assert_eq!(choose_encoding(&vals), EncodingType::DeltaDelta);
    }

    #[test]
    fn few_valued_unsorted_floats_pick_block_dict() {
        let prices = [10.0, 10.25, 10.5];
        let vals: Vec<Value> = (0..600)
            .map(|i| Value::Float(prices[(i * 7) % 3]))
            .collect();
        // Unsorted but few runs of equal neighbors: check not RLE-dominated.
        let e = choose_encoding(&vals);
        assert_eq!(e, EncodingType::BlockDict);
    }

    #[test]
    fn random_strings_pick_plain() {
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::Varchar(format!("user_{i}_xyz")))
            .collect();
        assert_eq!(choose_encoding(&vals), EncodingType::Plain);
    }

    #[test]
    fn trial_choice_is_never_bigger_than_heuristic() {
        let vals: Vec<Value> = (0..2000).map(|i| Value::Integer(i / 10)).collect();
        let (winner, sizes) = choose_by_trial(&vals);
        let winner_size = sizes.iter().find(|(e, _)| *e == winner).unwrap().1;
        for (_, s) in &sizes {
            assert!(winner_size <= *s);
        }
    }

    #[test]
    fn analyze_properties() {
        let vals = vec![
            Value::Integer(1),
            Value::Integer(1),
            Value::Integer(2),
            Value::Null,
        ];
        let p = analyze(&vals);
        assert_eq!(p.count, 4);
        assert_eq!(p.runs, 3);
        assert!(p.has_nulls);
        assert!(!p.sorted, "null sorts first, so trailing null breaks order");
    }
}
