//! Per-column position index (§3.7).
//!
//! "Vertica stores two files per column within a ROS container: one with
//! the actual column data, and one with a position index. ... The position
//! index is approximately 1/1000 the size of the raw column data and stores
//! metadata per disk block such as start position, minimum value and
//! maximum value that improve the speed of the execution engine and permits
//! fast tuple reconstruction. Unlike C-Store, this index structure does not
//! utilize a B-Tree as the ROS containers are never modified."
//!
//! Accordingly [`PositionIndex`] is a flat, immutable array of per-block
//! metadata; lookups are binary searches over start positions.

use crate::EncodingType;
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Metadata for one encoded block of a column file.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Ordinal position (within the ROS container) of the block's first row.
    pub start_position: u64,
    /// Number of rows in the block.
    pub count: u32,
    /// Byte offset of the block within the column data file.
    pub byte_offset: u64,
    /// Encoded byte length of the block.
    pub byte_len: u32,
    /// Concrete encoding used for this block.
    pub encoding: EncodingType,
    /// Minimum value in the block (NULLs excluded; Null if all-null).
    pub min: Value,
    /// Maximum value in the block (NULLs excluded; Null if all-null).
    pub max: Value,
    /// Number of NULL rows in the block, so IS NULL / IS NOT NULL
    /// predicates can prune whole blocks without decoding them.
    pub null_count: u32,
}

impl BlockMeta {
    /// Can any row of this block satisfy `value ⊓ [min, max]`? Used by the
    /// scan operator's block pruning (the \[22\] SMA technique in §3.5).
    pub fn might_contain_range(&self, low: Option<&Value>, high: Option<&Value>) -> bool {
        if self.min.is_null() && self.max.is_null() {
            // All-null block: only IS NULL scans care, which bypass pruning.
            return false;
        }
        if let Some(lo) = low {
            if &self.max < lo {
                return false;
            }
        }
        if let Some(hi) = high {
            if &self.min > hi {
                return false;
            }
        }
        true
    }

    /// Can any row of this block satisfy `IS NULL`?
    pub fn might_contain_null(&self) -> bool {
        self.null_count > 0
    }

    /// Can any row of this block satisfy `IS NOT NULL`?
    pub fn might_contain_non_null(&self) -> bool {
        self.null_count < self.count
    }
}

/// The position index for one column of one ROS container.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PositionIndex {
    pub blocks: Vec<BlockMeta>,
}

impl PositionIndex {
    pub fn total_rows(&self) -> u64 {
        self.blocks
            .last()
            .map_or(0, |b| b.start_position + u64::from(b.count))
    }

    /// Index of the block containing ordinal `position`.
    pub fn block_for_position(&self, position: u64) -> Option<usize> {
        if position >= self.total_rows() {
            return None;
        }
        let i = self
            .blocks
            .partition_point(|b| b.start_position + u64::from(b.count) <= position);
        Some(i)
    }

    /// Column-level min/max across blocks (for container-level pruning).
    pub fn column_min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for b in &self.blocks {
            if b.min.is_null() && b.max.is_null() {
                continue;
            }
            min = Some(match min {
                None => b.min.clone(),
                Some(m) => m.min(b.min.clone()),
            });
            max = Some(match max {
                None => b.max.clone(),
                Some(m) => m.max(b.max.clone()),
            });
        }
        Some((min?, max?))
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_uvarint(self.blocks.len() as u64);
        for b in &self.blocks {
            w.put_uvarint(b.start_position);
            w.put_uvarint(u64::from(b.count));
            w.put_uvarint(b.byte_offset);
            w.put_uvarint(u64::from(b.byte_len));
            w.put_u8(b.encoding.tag());
            w.put_value(&b.min);
            w.put_value(&b.max);
            w.put_uvarint(u64::from(b.null_count));
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> DbResult<PositionIndex> {
        let mut r = Reader::new(bytes);
        let n = r.get_uvarint()? as usize;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(BlockMeta {
                start_position: r.get_uvarint()?,
                count: r.get_uvarint()? as u32,
                byte_offset: r.get_uvarint()?,
                byte_len: r.get_uvarint()? as u32,
                encoding: EncodingType::from_tag(r.get_u8()?)?,
                min: r.get_value()?,
                max: r.get_value()?,
                null_count: r.get_uvarint()? as u32,
            });
        }
        if !r.is_empty() {
            return Err(DbError::Corrupt("trailing bytes in position index".into()));
        }
        Ok(PositionIndex { blocks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(start: u64, count: u32, min: i64, max: i64) -> BlockMeta {
        BlockMeta {
            start_position: start,
            count,
            byte_offset: start * 10,
            byte_len: count * 10,
            encoding: EncodingType::Plain,
            min: Value::Integer(min),
            max: Value::Integer(max),
            null_count: 0,
        }
    }

    #[test]
    fn position_lookup() {
        let idx = PositionIndex {
            blocks: vec![
                meta(0, 100, 0, 9),
                meta(100, 100, 10, 19),
                meta(200, 50, 20, 25),
            ],
        };
        assert_eq!(idx.total_rows(), 250);
        assert_eq!(idx.block_for_position(0), Some(0));
        assert_eq!(idx.block_for_position(99), Some(0));
        assert_eq!(idx.block_for_position(100), Some(1));
        assert_eq!(idx.block_for_position(249), Some(2));
        assert_eq!(idx.block_for_position(250), None);
    }

    #[test]
    fn range_pruning() {
        let b = meta(0, 100, 10, 20);
        assert!(b.might_contain_range(Some(&Value::Integer(15)), None));
        assert!(!b.might_contain_range(Some(&Value::Integer(21)), None));
        assert!(!b.might_contain_range(None, Some(&Value::Integer(9))));
        assert!(b.might_contain_range(Some(&Value::Integer(20)), Some(&Value::Integer(20))));
        assert!(b.might_contain_range(None, None));
    }

    #[test]
    fn all_null_block_prunes() {
        let b = BlockMeta {
            min: Value::Null,
            max: Value::Null,
            null_count: 10,
            ..meta(0, 10, 0, 0)
        };
        assert!(!b.might_contain_range(None, None));
        assert!(b.might_contain_null());
        assert!(!b.might_contain_non_null());
    }

    #[test]
    fn null_count_pruning() {
        let b = meta(0, 100, 1, 9);
        assert!(!b.might_contain_null());
        assert!(b.might_contain_non_null());
        let mixed = BlockMeta {
            null_count: 40,
            ..meta(0, 100, 1, 9)
        };
        assert!(mixed.might_contain_null());
        assert!(mixed.might_contain_non_null());
    }

    #[test]
    fn encode_decode_round_trip() {
        let idx = PositionIndex {
            blocks: vec![
                meta(0, 1024, -5, 100),
                BlockMeta {
                    encoding: EncodingType::Rle,
                    min: Value::Varchar("a".into()),
                    max: Value::Varchar("z".into()),
                    ..meta(1024, 512, 0, 0)
                },
            ],
        };
        let bytes = idx.encode();
        assert_eq!(PositionIndex::decode(&bytes).unwrap(), idx);
        assert!(PositionIndex::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn column_min_max_spans_blocks() {
        let idx = PositionIndex {
            blocks: vec![meta(0, 10, 5, 20), meta(10, 10, -3, 8)],
        };
        assert_eq!(
            idx.column_min_max(),
            Some((Value::Integer(-3), Value::Integer(20)))
        );
    }
}
