//! Block Dictionary encoding (§3.4.1 type 4).
//!
//! "Within a data block, distinct column values are stored in a dictionary
//! and actual values are replaced with references to the dictionary. This
//! type is best for few-valued, unsorted columns such as stock prices."
//!
//! The dictionary is sorted so that references are ordinal and the block's
//! min/max fall out of the first/last entries; indexes are bit-packed at
//! `ceil(log2(dict_len))` bits.

use vdb_compress::bitio::{BitReader, BitWriter};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Dictionaries beyond this size stop paying for themselves; `applicable`
/// rejects blocks with more distincts.
pub const MAX_DICT: usize = 4096;

fn build_dict(values: &[Value]) -> Vec<Value> {
    let mut dict: Vec<Value> = values.to_vec();
    dict.sort();
    dict.dedup();
    dict
}

pub fn applicable(values: &[Value]) -> bool {
    // Cheap distinct bound: sample-based would misestimate tiny blocks, and
    // blocks are at most a few thousand values, so exact is fine.
    build_dict(values).len() <= MAX_DICT
}

fn index_width(dict_len: usize) -> u32 {
    if dict_len <= 1 {
        0
    } else {
        (usize::BITS - (dict_len - 1).leading_zeros()).max(1)
    }
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let dict = build_dict(values);
    if dict.len() > MAX_DICT {
        return Err(DbError::Execution(format!(
            "block dictionary over {MAX_DICT} distinct values"
        )));
    }
    w.put_uvarint(dict.len() as u64);
    for v in &dict {
        w.put_value(v);
    }
    let width = index_width(dict.len());
    let mut bits = BitWriter::new();
    for v in values {
        let idx = dict.binary_search(v).expect("value in dict") as u64;
        bits.write_bits(idx, width);
    }
    w.put_bytes(&bits.finish());
    Ok(())
}

/// Decode into the dictionary plus per-row codes, without expanding values
/// (the execution engine keeps dictionary-coded columns coded).
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<(Vec<Value>, Vec<u32>)> {
    let dict_len = r.get_uvarint()? as usize;
    if dict_len > MAX_DICT {
        return Err(DbError::Corrupt("dictionary too large".into()));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(r.get_value()?);
    }
    let packed = r.get_bytes()?;
    let width = index_width(dict_len);
    let mut bits = BitReader::new(packed);
    let mut codes = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = bits
            .read_bits(width)
            .map_err(|e| DbError::Corrupt(e.to_string()))?;
        if idx as usize >= dict_len {
            return Err(DbError::Corrupt("dictionary index out of range".into()));
        }
        codes.push(idx as u32);
    }
    Ok((dict, codes))
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let (dict, codes) = decode_native(r, count)?;
    Ok(codes
        .into_iter()
        .map(|c| dict[c as usize].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_strings() {
        let vals: Vec<Value> = ["GOOG", "HPQ", "GOOG", "IBM", "HPQ", "GOOG"]
            .iter()
            .map(|s| Value::Varchar((*s).into()))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 6).unwrap(), vals);
    }

    #[test]
    fn few_valued_floats_compress() {
        // "stock prices": a few distinct float values repeated many times,
        // unsorted.
        let prices = [101.25, 101.5, 101.75, 102.0];
        let vals: Vec<Value> = (0..4000)
            .map(|i| Value::Float(prices[(i * 7) % 4]))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        // 2-bit indexes: 4000 values ≈ 1000 bytes + tiny dict.
        assert!(w.len() < 1100, "dict bytes = {}", w.len());
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 4000).unwrap(), vals);
    }

    #[test]
    fn single_distinct_value_uses_zero_width() {
        let vals = vec![Value::Integer(9); 100];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        assert!(w.len() < 16);
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 100).unwrap(), vals);
    }

    #[test]
    fn nulls_are_dictionary_entries() {
        let vals = vec![Value::Null, Value::Integer(1), Value::Null];
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 3).unwrap(), vals);
    }

    #[test]
    fn applicability_bound() {
        let many: Vec<Value> = (0..(MAX_DICT as i64 + 1)).map(Value::Integer).collect();
        assert!(!applicable(&many));
        let few: Vec<Value> = (0..10).map(Value::Integer).collect();
        assert!(applicable(&few));
    }
}
