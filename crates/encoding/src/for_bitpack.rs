//! Frame-of-reference + bit-packing for integer-based columns.
//!
//! Every value is stored as `value - block_min` in exactly `width` bits,
//! where `width` is the fewest bits that hold the largest offset in the
//! block. Unlike the varint-based Delta Value scheme (§3.4.1 type 3) the
//! payload has *fixed stride*, so a selection can decode exactly the rows
//! it needs — the random-access half of the selection-pushdown decode
//! contract ([`decode_native_selected`]).

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

/// Type tag preserved so decode restores the original value variant.
fn type_tag(values: &[Value]) -> Option<u8> {
    let mut tag = None;
    for v in values {
        let t = match v {
            Value::Integer(_) => 0u8,
            Value::Timestamp(_) => 1,
            Value::Boolean(_) => 2,
            _ => return None,
        };
        match tag {
            None => tag = Some(t),
            Some(prev) if prev == t => {}
            _ => return None,
        }
    }
    tag.or(Some(0))
}

/// True when every value is integral of a single variant.
pub fn applicable(values: &[Value]) -> bool {
    type_tag(values).is_some()
}

/// Frame minimum and the bit width of the widest offset from it.
fn frame_of(ints: &[i64]) -> (i64, u32) {
    let min = ints.iter().copied().min().unwrap_or(0);
    let max = ints.iter().copied().max().unwrap_or(0);
    let range = max.wrapping_sub(min) as u64;
    (min, 64 - range.leading_zeros())
}

fn uvarint_len(v: u64) -> usize {
    (64 - v.leading_zeros()).max(1).div_ceil(7) as usize
}

/// Auto-picker gate: fixed-width packing must beat the Delta Value varint
/// payload by ≥10% on the same block; uniform offsets near the width
/// boundary win, skewed offsets with rare outliers lose (one outlier
/// inflates every row's stride but only its own varint).
pub fn profitable(values: &[Value]) -> bool {
    if values.len() < 8 || type_tag(values).is_none() {
        return false;
    }
    let ints: Vec<i64> = values.iter().map(|v| v.as_i64().unwrap()).collect();
    let (min, width) = frame_of(&ints);
    let packed = (ints.len() * width as usize).div_ceil(8) + 12;
    let varint: usize = ints
        .iter()
        .map(|&v| uvarint_len(v.wrapping_sub(min) as u64))
        .sum::<usize>()
        + 12;
    packed * 10 <= varint * 9
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let tag = type_tag(values).ok_or_else(|| {
        DbError::Execution("for-bitpack encoding requires a single integral type".into())
    })?;
    let ints: Vec<i64> = values.iter().map(|v| v.as_i64().unwrap()).collect();
    let (min, width) = frame_of(&ints);
    w.put_u8(tag);
    w.put_ivarint(min);
    w.put_u8(width as u8);
    // Fixed-stride payload, LSB-first within and across bytes.
    let mut packed = vec![0u8; (ints.len() * width as usize).div_ceil(8)];
    for (i, &v) in ints.iter().enumerate() {
        put_packed(&mut packed, i, width, v.wrapping_sub(min) as u64);
    }
    w.put_bytes(&packed);
    Ok(())
}

fn put_packed(buf: &mut [u8], idx: usize, width: u32, v: u64) {
    let mut bit = idx * width as usize;
    let mut rest = v & mask(width);
    let mut left = width;
    while left > 0 {
        let byte = bit / 8;
        let shift = (bit % 8) as u32;
        let take = (8 - shift).min(left);
        buf[byte] |= ((rest & mask(take)) as u8) << shift;
        rest >>= take;
        bit += take as usize;
        left -= take;
    }
}

/// Read the fixed-stride slot `idx` of `width` bits from `buf`; the caller
/// has validated `buf` holds `(idx + 1) * width` bits.
fn get_packed(buf: &[u8], idx: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let bit = idx * width as usize;
    let byte = bit / 8;
    let shift = bit % 8;
    let span = (shift + width as usize).div_ceil(8);
    let mut window = 0u128;
    for (k, &b) in buf[byte..byte + span].iter().enumerate() {
        window |= u128::from(b) << (8 * k);
    }
    ((window >> shift) as u64) & mask(width)
}

/// Header + validated payload slice for `count` packed slots.
fn read_header<'a>(r: &mut Reader<'a>, count: usize) -> DbResult<(u8, i64, u32, &'a [u8])> {
    let tag = r.get_u8()?;
    if tag > 2 {
        return Err(DbError::Corrupt(format!("bad for-bitpack tag {tag}")));
    }
    let min = r.get_ivarint()?;
    let width = u32::from(r.get_u8()?);
    if width > 64 {
        return Err(DbError::Corrupt(format!("bad for-bitpack width {width}")));
    }
    let packed = r.get_bytes()?;
    if packed.len() * 8 < count * width as usize {
        return Err(DbError::Corrupt("for-bitpack payload truncated".into()));
    }
    Ok((tag, min, width, packed))
}

/// Decode straight into a native `i64` buffer; the returned tag is
/// 0=Integer, 1=Timestamp, 2=Boolean.
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<(u8, Vec<i64>)> {
    let (tag, min, width, packed) = read_header(r, count)?;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(min.wrapping_add(get_packed(packed, i, width) as i64));
    }
    Ok((tag, out))
}

/// Selection-pushdown decode: materialize only the slots listed in `sel`
/// (sorted indexes into the block's value sequence) into a full-length
/// buffer. Unselected slots hold the frame minimum as padding — per the
/// selection-pushdown contract the caller never inspects them.
pub fn decode_native_selected(
    r: &mut Reader<'_>,
    count: usize,
    sel: &[u32],
) -> DbResult<(u8, Vec<i64>)> {
    let (tag, min, width, packed) = read_header(r, count)?;
    let mut out = vec![min; count];
    for &p in sel {
        let p = p as usize;
        if p >= count {
            return Err(DbError::Corrupt("selection past block end".into()));
        }
        out[p] = min.wrapping_add(get_packed(packed, p, width) as i64);
    }
    Ok((tag, out))
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let (tag, ints) = decode_native(r, count)?;
    Ok(ints
        .into_iter()
        .map(|v| match tag {
            0 => Value::Integer(v),
            1 => Value::Timestamp(v),
            _ => Value::Boolean(v != 0),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: &[Value]) {
        let mut w = Writer::new();
        encode(vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(
            decode(&mut Reader::new(&bytes), vals.len()).unwrap(),
            vals,
            "{} values",
            vals.len()
        );
    }

    #[test]
    fn round_trip_various_widths() {
        round_trip(&[]);
        round_trip(&[Value::Integer(42)]);
        round_trip(
            &(0..300)
                .map(|i| Value::Integer(i * 3 % 101))
                .collect::<Vec<_>>(),
        );
        round_trip(&[Value::Integer(i64::MIN), Value::Integer(i64::MAX)]);
        round_trip(&(0..50).map(|_| Value::Integer(7)).collect::<Vec<_>>());
        round_trip(&[Value::Timestamp(1_000_000), Value::Timestamp(999_983)]);
        round_trip(&[Value::Boolean(true), Value::Boolean(false)]);
    }

    #[test]
    fn selected_decode_matches_full_decode_on_selected_slots() {
        let vals: Vec<Value> = (0..500)
            .map(|i| Value::Integer(1_000_000 + (i * 7919) % 4096))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        let (_, full) = decode_native(&mut Reader::new(&bytes), 500).unwrap();
        let sel: Vec<u32> = (0..500).step_by(13).map(|i| i as u32).collect();
        let (_, picked) = decode_native_selected(&mut Reader::new(&bytes), 500, &sel).unwrap();
        for &p in &sel {
            assert_eq!(picked[p as usize], full[p as usize], "slot {p}");
        }
    }

    #[test]
    fn clustered_values_beat_plain() {
        let base = 1_000_000_000_000i64;
        let vals: Vec<Value> = (0..1000)
            .map(|i| Value::Integer(base + (i * 37) % 10_000))
            .collect();
        let mut fw = Writer::new();
        encode(&vals, &mut fw).unwrap();
        let mut pw = Writer::new();
        crate::plain::encode(&vals, &mut pw);
        assert!(
            fw.len() * 2 < pw.len(),
            "for-bitpack {} vs plain {}",
            fw.len(),
            pw.len()
        );
    }

    #[test]
    fn profitability_prefers_uniform_offsets_over_outliers() {
        // Uniform 20-bit offsets: fixed width beats varints.
        let mut x = 17u64;
        let uniform: Vec<Value> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Value::Integer((x % 1_000_000) as i64)
            })
            .collect();
        assert!(profitable(&uniform));
        // Tiny offsets with rare huge outliers: the outlier widens every
        // row's stride, varints only its own.
        let skewed: Vec<Value> = (0..1000)
            .map(|i| {
                if i % 97 == 0 {
                    Value::Integer(1_000_000_000_000)
                } else {
                    Value::Integer(i % 100)
                }
            })
            .collect();
        assert!(!profitable(&skewed));
    }

    #[test]
    fn rejects_floats_and_mixed() {
        assert!(!applicable(&[Value::Float(1.0)]));
        assert!(!applicable(&[Value::Integer(1), Value::Timestamp(2)]));
        assert!(!applicable(&[Value::Integer(1), Value::Null]));
        let mut w = Writer::new();
        assert!(encode(&[Value::Varchar("x".into())], &mut w).is_err());
    }
}
