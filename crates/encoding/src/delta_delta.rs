//! Delta-of-delta encoding for timestamp-like sequences.
//!
//! Stores the first value, then the *change in delta* between consecutive
//! values, in variable-width buckets: a steadily ticking timestamp column
//! (or an auto-incrementing key with drift) costs one bit per row once the
//! delta stabilizes. This covers the gap between Compressed Common Delta —
//! which needs deltas that *repeat* enough to amortize its dictionary —
//! and Delta Value: a drifting or accelerating sequence has many distinct
//! deltas but tiny second-order differences.

use vdb_compress::bitio::{BitReader, BitWriter};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Value};

fn type_tag(values: &[Value]) -> Option<u8> {
    let mut tag = None;
    for v in values {
        let t = match v {
            Value::Integer(_) => 0u8,
            Value::Timestamp(_) => 1,
            _ => return None,
        };
        match tag {
            None => tag = Some(t),
            Some(p) if p == t => {}
            _ => return None,
        }
    }
    tag.or(Some(0))
}

/// True when every value is Integer or Timestamp (a single variant).
pub fn applicable(values: &[Value]) -> bool {
    type_tag(values).is_some()
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Second-order differences (delta of delta), wrapping.
fn dods_of(values: &[Value]) -> Vec<i64> {
    let mut out = Vec::with_capacity(values.len().saturating_sub(1));
    let mut prev = None;
    let mut prev_delta = 0i64;
    for v in values {
        let i = v.as_i64().unwrap();
        if let Some(p) = prev {
            let delta = i64::wrapping_sub(i, p);
            out.push(delta.wrapping_sub(prev_delta));
            prev_delta = delta;
        }
        prev = Some(i);
    }
    out
}

/// Auto-picker gate: the bucket scheme only pays when the delta is stable —
/// require ≥90% of the second-order differences to fit the 7-bit bucket.
pub fn profitable(values: &[Value]) -> bool {
    if values.len() < 8 || type_tag(values).is_none() {
        return false;
    }
    let dods = dods_of(values);
    let small = dods.iter().filter(|&&d| zigzag(d) < 1 << 7).count();
    small * 10 >= dods.len() * 9
}

/// Bucket widths; prefix `k` one-bits (then a zero for k < 4) select
/// bucket `k`. Bucket 0 is the bare '0' bit meaning "delta unchanged".
const WIDTHS: [u32; 5] = [0, 7, 12, 20, 64];

fn emit_dod(bits: &mut BitWriter, dod: i64) {
    let z = zigzag(dod);
    let bucket = WIDTHS
        .iter()
        .position(|&w| w == 64 || z < 1u64 << w)
        .unwrap();
    for _ in 0..bucket {
        bits.write_bits(1, 1);
    }
    if bucket < WIDTHS.len() - 1 {
        bits.write_bits(0, 1);
    }
    let w = WIDTHS[bucket];
    if w == 64 {
        bits.write_bits(z & 0xffff_ffff, 32);
        bits.write_bits(z >> 32, 32);
    } else if w > 0 {
        bits.write_bits(z, w);
    }
}

fn read_dod(bits: &mut BitReader<'_>) -> DbResult<i64> {
    fn corrupt(e: impl std::fmt::Display) -> DbError {
        DbError::Corrupt(e.to_string())
    }
    let mut bucket = 0usize;
    while bucket < WIDTHS.len() - 1 && bits.read_bits(1).map_err(corrupt)? == 1 {
        bucket += 1;
    }
    let w = WIDTHS[bucket];
    let z = if w == 64 {
        let lo = bits.read_bits(32).map_err(corrupt)?;
        let hi = bits.read_bits(32).map_err(corrupt)?;
        hi << 32 | lo
    } else if w > 0 {
        bits.read_bits(w).map_err(corrupt)?
    } else {
        0
    };
    Ok(unzigzag(z))
}

pub fn encode(values: &[Value], w: &mut Writer) -> DbResult<()> {
    let tag = type_tag(values).ok_or_else(|| {
        DbError::Execution("delta-delta encoding requires integral values".into())
    })?;
    w.put_u8(tag);
    let Some(first) = values.first() else {
        return Ok(());
    };
    w.put_ivarint(first.as_i64().unwrap());
    let mut bits = BitWriter::new();
    for dod in dods_of(values) {
        emit_dod(&mut bits, dod);
    }
    w.put_bytes(&bits.finish());
    Ok(())
}

/// Decode straight into a native `i64` buffer; the returned tag is
/// 0=Integer, 1=Timestamp.
pub fn decode_native(r: &mut Reader<'_>, count: usize) -> DbResult<(u8, Vec<i64>)> {
    let tag = r.get_u8()?;
    if tag > 1 {
        return Err(DbError::Corrupt(format!("bad delta-delta tag {tag}")));
    }
    if count == 0 {
        return Ok((tag, Vec::new()));
    }
    let mut acc = r.get_ivarint()?;
    let packed = r.get_bytes()?;
    let mut bits = BitReader::new(packed);
    let mut out = Vec::with_capacity(count);
    out.push(acc);
    let mut delta = 0i64;
    for _ in 1..count {
        delta = delta.wrapping_add(read_dod(&mut bits)?);
        acc = acc.wrapping_add(delta);
        out.push(acc);
    }
    Ok((tag, out))
}

pub fn decode(r: &mut Reader<'_>, count: usize) -> DbResult<Vec<Value>> {
    let (tag, ints) = decode_native(r, count)?;
    Ok(ints
        .into_iter()
        .map(|v| {
            if tag == 0 {
                Value::Integer(v)
            } else {
                Value::Timestamp(v)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: &[Value]) {
        let mut w = Writer::new();
        encode(vals, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(
            decode(&mut Reader::new(&bytes), vals.len()).unwrap(),
            vals,
            "{} values",
            vals.len()
        );
    }

    #[test]
    fn steady_timestamps_cost_about_a_bit_per_row() {
        let vals: Vec<Value> = (0..4096)
            .map(|i| Value::Timestamp(1_600_000_000 + i * 300))
            .collect();
        let mut w = Writer::new();
        encode(&vals, &mut w).unwrap();
        // First value + ~1 bit per row ⇒ well under a kilobyte.
        assert!(w.len() < 600, "delta-delta bytes = {}", w.len());
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut Reader::new(&bytes), 4096).unwrap(), vals);
    }

    #[test]
    fn accelerating_sequence_round_trips() {
        // Every delta distinct (grows by i), every dod tiny — the case
        // common-delta's dictionary cannot amortize.
        let mut acc = 0i64;
        let vals: Vec<Value> = (0..2000)
            .map(|i| {
                acc += i;
                Value::Integer(acc)
            })
            .collect();
        assert!(profitable(&vals));
        round_trip(&vals);
    }

    #[test]
    fn edge_cases_round_trip() {
        round_trip(&[]);
        round_trip(&[Value::Integer(-5)]);
        round_trip(&[Value::Timestamp(i64::MAX), Value::Timestamp(i64::MIN)]);
        round_trip(&(0..100).map(|_| Value::Integer(3)).collect::<Vec<_>>());
        // Jittery but bounded dods exercise every bucket.
        let mut x = 3u64;
        let mut acc = 0i64;
        let jitter: Vec<Value> = (0..500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc = acc.wrapping_add((x % 1_000_000_000) as i64 - 500_000_000);
                Value::Integer(acc)
            })
            .collect();
        round_trip(&jitter);
    }

    #[test]
    fn random_data_is_not_profitable() {
        let mut x = 1u64;
        let vals: Vec<Value> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Value::Integer(x as i64)
            })
            .collect();
        assert!(applicable(&vals));
        assert!(!profitable(&vals));
    }

    #[test]
    fn rejects_non_integral() {
        assert!(!applicable(&[Value::Float(1.0)]));
        assert!(!applicable(&[Value::Boolean(true)]));
        assert!(!applicable(&[Value::Integer(1), Value::Null]));
    }
}
