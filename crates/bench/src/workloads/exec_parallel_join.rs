//! Morsel-parallel hash join workload: a multi-container fact store joined
//! to a smaller dimension store, serially (one `ScanOperator` per side
//! feeding [`vdb_exec::join::HashJoinOp`]) and through the partitioned
//! parallel join ([`ParallelHashJoinOp`]) at N worker lanes — exactly the
//! operators the planner emits at `threads = 1` and `threads = N`.

use std::sync::Arc;
use std::time::Instant;
use vdb_exec::join::{HashJoinOp, JoinType};
use vdb_exec::operator::collect_rows;
use vdb_exec::parallel::ParallelScanSpec;
use vdb_exec::parallel_join::{ParallelHashJoinOp, ParallelJoinSpec};
use vdb_exec::scan::ScanOperator;
use vdb_exec::MemoryBudget;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::{DbResult, Epoch, Row, Value};

/// Distinct join keys on the fact side; the dimension holds half of them,
/// so the probe matches ~50% of fact rows.
pub const FACT_KEYS: i64 = 2048;
pub const DIM_KEYS: i64 = FACT_KEYS / 2;

fn store_of(
    name: &str,
    rows: &[Row],
    containers: usize,
    sort_col: usize,
) -> DbResult<ProjectionStore> {
    let schema = vdb_types::TableSchema::new(
        "t",
        vec![
            vdb_types::ColumnDef::new("k", vdb_types::DataType::Integer),
            vdb_types::ColumnDef::new("v", vdb_types::DataType::Integer),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, name, &[sort_col], &[]);
    let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
    let per = rows.len().div_ceil(containers.max(1));
    for chunk in rows.chunks(per.max(1)) {
        store.insert_direct_ros(chunk.to_vec(), Epoch(1))?;
    }
    Ok(store)
}

/// `(k, v)` fact rows spread over `containers` ROS containers, sorted by
/// `v` so the key column lands as a typed i64 vector.
pub fn build_fact(rows: usize, containers: usize) -> DbResult<ProjectionStore> {
    let all: Vec<Row> = (0..rows as i64)
        .map(|i| vec![Value::Integer(i % FACT_KEYS), Value::Integer(i)])
        .collect();
    store_of("fact_par", &all, containers, 1)
}

/// `(k, w)` dimension rows over a handful of containers.
pub fn build_dim(containers: usize) -> DbResult<ProjectionStore> {
    let all: Vec<Row> = (0..DIM_KEYS)
        .map(|k| vec![Value::Integer(k), Value::Integer(k * 10)])
        .collect();
    store_of("dim_par", &all, containers, 0)
}

fn serial_scan(store: &ProjectionStore) -> ScanOperator {
    let snap = store.scan_snapshot(Epoch(1));
    ScanOperator::new(
        store.backend().clone(),
        snap.containers,
        snap.wos_rows,
        vec![0, 1],
        None,
        None,
        vec![],
    )
}

/// The serial path the planner emits at `threads = 1`: row-pivoted build
/// and probe over both scans.
pub fn run_serial(fact: &ProjectionStore, dim: &ProjectionStore) -> DbResult<(Vec<Row>, f64)> {
    let t = Instant::now();
    let mut op = HashJoinOp::new(
        Box::new(serial_scan(fact)),
        Box::new(serial_scan(dim)),
        vec![0],
        vec![0],
        JoinType::Inner,
        MemoryBudget::unlimited(),
        None,
    );
    let rows = collect_rows(&mut op)?;
    Ok((rows, t.elapsed().as_secs_f64() * 1000.0))
}

/// The morsel-parallel partitioned join at `lanes` workers per side.
/// Returns the joined rows, total wall ms, and the build/probe split.
pub fn run_parallel(
    fact: &ProjectionStore,
    dim: &ProjectionStore,
    lanes: usize,
) -> DbResult<(Vec<Row>, f64, (f64, f64))> {
    let t = Instant::now();
    let mut op = ParallelHashJoinOp::new(
        ParallelJoinSpec {
            probe: ParallelScanSpec::new(fact.backend().clone(), vec![0, 1]),
            probe_morsels: fact.scan_snapshot(Epoch(1)).into_morsels(),
            probe_threads: lanes,
            build: ParallelScanSpec::new(dim.backend().clone(), vec![0, 1]),
            build_morsels: dim.scan_snapshot(Epoch(1)).into_morsels(),
            build_threads: lanes,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
            sip: None,
        },
        MemoryBudget::unlimited(),
    );
    let rows = collect_rows(&mut op)?;
    Ok((rows, t.elapsed().as_secs_f64() * 1000.0, op.phase_ms()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_join_lanes_agree_with_serial() {
        let fact = build_fact(40_000, 8).unwrap();
        let dim = build_dim(4).unwrap();
        let (serial, _) = run_serial(&fact, &dim).unwrap();
        let expected = (0..40_000i64).filter(|i| i % FACT_KEYS < DIM_KEYS).count();
        assert_eq!(serial.len(), expected, "keys below DIM_KEYS match");
        for lanes in [1, 2, 4] {
            let (par, _, _) = run_parallel(&fact, &dim, lanes).unwrap();
            assert_eq!(par, serial, "lanes={lanes}");
        }
    }
}
