//! Workload for the typed-vector executor hot path: filter → group-by →
//! SUM over plain and RLE-heavy batches, with a pre-refactor row-at-a-time
//! baseline to measure the typed/selection-vector path against.

use vdb_exec::aggregate::{AggCall, AggFunc, AggState};
use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::filter::FilterOp;
use vdb_exec::groupby::{HashGroupByOp, PipelinedGroupByOp};
use vdb_exec::operator::{collect_rows, Operator, ValuesOp};
use vdb_exec::vector::{TypedVector, VectorData};
use vdb_exec::MemoryBudget;
use vdb_types::{BinOp, DbResult, Expr, Row, Value};

/// Distinct groups in the generated data.
pub const GROUPS: i64 = 100;

const BATCH: usize = 1024;

/// `(group, value)` rows: group cycles over [`GROUPS`], value counts up.
fn row(i: i64) -> Row {
    vec![Value::Integer(i % GROUPS), Value::Integer(i)]
}

/// Plain `Value` batches — the representation the pre-refactor engine ran
/// on.
pub fn plain_batches(rows: usize) -> Vec<Batch> {
    (0..rows as i64)
        .collect::<Vec<_>>()
        .chunks(BATCH)
        .map(|c| Batch::from_rows(c.iter().map(|&i| row(i)).collect()))
        .collect()
}

/// The same data as typed vectors (native `i64` buffers).
pub fn typed_batches(rows: usize) -> Vec<Batch> {
    (0..rows as i64)
        .collect::<Vec<_>>()
        .chunks(BATCH)
        .map(|c| {
            let group: Vec<i64> = c.iter().map(|&i| i % GROUPS).collect();
            let value: Vec<i64> = c.to_vec();
            Batch::new(vec![
                ColumnSlice::Typed(TypedVector::new(VectorData::Int64(group), None)),
                ColumnSlice::Typed(TypedVector::new(VectorData::Int64(value), None)),
            ])
        })
        .collect()
}

/// RLE-heavy batches: sorted group column as runs (one run per group per
/// batch), plus a typed value column.
pub fn rle_batches(rows: usize) -> Vec<Batch> {
    let run_len = (BATCH / 4).max(1);
    let mut out = Vec::new();
    let mut produced = 0usize;
    let mut g = 0i64;
    while produced < rows {
        let n = (rows - produced).min(BATCH);
        let mut runs = Vec::new();
        let mut left = n;
        while left > 0 {
            let take = left.min(run_len);
            runs.push((Value::Integer(g % GROUPS), take as u32));
            g += 1;
            left -= take;
        }
        let value: Vec<i64> = (produced as i64..(produced + n) as i64).collect();
        out.push(Batch::new(vec![
            ColumnSlice::rle(runs),
            ColumnSlice::Typed(TypedVector::new(VectorData::Int64(value), None)),
        ]));
        produced += n;
    }
    out
}

/// [`rle_batches`] expanded to plain values (the baseline representation).
pub fn rle_expanded_batches(rows: usize) -> Vec<Batch> {
    rle_batches(rows)
        .into_iter()
        .map(|b| {
            Batch::new(
                b.columns
                    .iter()
                    .map(|c| ColumnSlice::Plain(c.to_values()))
                    .collect(),
            )
        })
        .collect()
}

/// `WHERE value >= rows/2` — keeps half the data.
pub fn half_predicate(rows: usize) -> Expr {
    Expr::binary(BinOp::Ge, Expr::col(1, "value"), Expr::int(rows as i64 / 2))
}

/// Typed path: vectorized FilterOp (selection vectors) into the hash
/// group-by's column accessors. Returns the number of groups.
pub fn run_filter_groupby(batches: Vec<Batch>, pred: Expr) -> DbResult<usize> {
    let filter = FilterOp::new(Box::new(ValuesOp::new(batches)), pred);
    let mut gb = HashGroupByOp::new(
        Box::new(filter),
        vec![0],
        vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
        ],
        MemoryBudget::unlimited(),
    );
    Ok(collect_rows(&mut gb)?.len())
}

/// Pre-refactor baseline: pivot every batch into rows, evaluate the
/// predicate per row, rebuild row batches, and aggregate row-at-a-time —
/// exactly what the engine did before typed vectors and selection vectors.
pub fn run_row_baseline(batches: Vec<Batch>, pred: Expr) -> DbResult<usize> {
    let mut table: std::collections::HashMap<Value, Vec<AggState>> =
        std::collections::HashMap::new();
    for batch in batches {
        let mut kept: Vec<Row> = Vec::new();
        for row in batch.into_rows() {
            if pred.matches(&row)? {
                kept.push(row);
            }
        }
        for row in Batch::from_rows(kept).into_rows() {
            let states = table.entry(row[0].clone()).or_insert_with(|| {
                vec![
                    AggState::new(AggFunc::CountStar),
                    AggState::new(AggFunc::Sum),
                ]
            });
            states[0].update(AggFunc::CountStar, &Value::Null)?;
            states[1].update(AggFunc::Sum, &row[1])?;
        }
    }
    Ok(table.len())
}

/// Pipelined (one-pass) aggregation over the sorted RLE group column:
/// whole runs fold with one multiply. Returns `(groups, run_aggregated)`.
pub fn run_pipelined(batches: Vec<Batch>) -> DbResult<(usize, u64)> {
    let mut gb = PipelinedGroupByOp::new(
        Box::new(ValuesOp::new(batches)),
        vec![0],
        vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
    );
    let mut groups = 0usize;
    while let Some(b) = gb.next_batch()? {
        groups += b.len();
    }
    Ok((groups, gb.run_aggregated_rows()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_and_baseline_agree() {
        let rows = 10_000;
        let t = run_filter_groupby(typed_batches(rows), half_predicate(rows)).unwrap();
        let p = run_filter_groupby(plain_batches(rows), half_predicate(rows)).unwrap();
        let b = run_row_baseline(plain_batches(rows), half_predicate(rows)).unwrap();
        assert_eq!(t, GROUPS as usize);
        assert_eq!(t, p);
        assert_eq!(t, b);
    }

    #[test]
    fn rle_pipeline_consumes_runs() {
        let rows = 10_000;
        let (groups, encoded) = run_pipelined(rle_batches(rows)).unwrap();
        assert!(groups > 0);
        assert_eq!(encoded, rows as u64, "every row via run math");
        let (groups_expanded, encoded_expanded) =
            run_pipelined(rle_expanded_batches(rows)).unwrap();
        assert_eq!(groups, groups_expanded);
        assert_eq!(encoded_expanded, 0);
    }
}
