//! Table 4's second dataset: synthetic stand-in for the paper's customer
//! meter data (§8.2.2).
//!
//! The paper describes the shape precisely: "a few hundred metrics", "a
//! couple of thousand meters", timestamps "every 5 minutes, 10 minutes,
//! hour, etc., depending on the metric", and 64-bit float values where
//! "some metrics have trends (like lots of 0 values when nothing happens),
//! others change gradually with time, some are much more random". Rows are
//! emitted sorted by (metric, meter, time) — the sort order the customer's
//! projection used.

use rand::{Rng, SeedableRng};
use vdb_types::{ColumnDef, DataType, Row, TableSchema, Value};

pub fn schema() -> TableSchema {
    TableSchema::new(
        "meter_data",
        vec![
            ColumnDef::new("metric", DataType::Integer),
            ColumnDef::new("meter", DataType::Integer),
            ColumnDef::new("ts", DataType::Timestamp),
            ColumnDef::new("value", DataType::Float),
        ],
    )
}

/// Generator parameters; defaults follow the paper's description.
#[derive(Debug, Clone)]
pub struct MeterConfig {
    pub n_metrics: i64,
    pub n_meters: i64,
    pub seed: u64,
}

impl Default for MeterConfig {
    fn default() -> MeterConfig {
        MeterConfig {
            n_metrics: 300,
            n_meters: 2000,
            seed: 2012,
        }
    }
}

/// Generate approximately `target_rows` rows sorted by (metric, meter, ts).
pub fn generate(target_rows: usize, config: &MeterConfig) -> Vec<Row> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let per_series = (target_rows as i64 / (config.n_metrics * config.n_meters)).max(1) as usize;
    let base_ts = 1_330_000_000i64; // early 2012
    let mut rows = Vec::with_capacity(target_rows);
    'outer: for metric in 0..config.n_metrics {
        // Collection interval depends on the metric: 5min/10min/1h.
        let interval = match metric % 3 {
            0 => 300,
            1 => 600,
            _ => 3600,
        };
        // Metric personality split per the paper: "some metrics have
        // trends (like lots of 0 values when nothing happens)" — half;
        // "others change gradually with time" — a quarter; "some are much
        // more random, and less compressible" — a quarter.
        let personality = match metric % 6 {
            0..=2 => 0,
            3 | 4 => 1,
            _ => 2,
        };
        for meter in 0..config.n_meters {
            let mut value = f64::from(rng.gen_range(0..400)) * 0.25;
            for k in 0..per_series {
                let ts = base_ts + interval * k as i64;
                // Meter hardware reports quantized readings (0.25 steps),
                // which is what makes real meter feeds so delta/dictionary
                // friendly.
                value = match personality {
                    0 => {
                        // Mostly zero with occasional events.
                        if rng.gen_bool(0.9) {
                            0.0
                        } else {
                            f64::from(rng.gen_range(4..200)) * 0.25
                        }
                    }
                    // Gradual drift in quantized steps.
                    1 => value + f64::from(rng.gen_range(-2..=2i32)) * 0.25,
                    // Random but still quantized.
                    _ => f64::from(rng.gen_range(0..4000)) * 0.25,
                };
                rows.push(vec![
                    Value::Integer(metric),
                    Value::Integer(meter),
                    Value::Timestamp(ts),
                    Value::Float(value),
                ]);
                if rows.len() >= target_rows {
                    break 'outer;
                }
            }
        }
    }
    rows
}

/// Render rows as the baseline CSV ("200 million comma separated values ...
/// 32 bytes per row" at full scale).
pub fn as_csv(rows: &[Row]) -> String {
    let mut s = String::with_capacity(rows.len() * 32);
    for r in rows {
        for (i, v) in r.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_csv_field());
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = generate(
            50_000,
            &MeterConfig {
                n_metrics: 10,
                n_meters: 50,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 50_000);
        // Sorted by (metric, meter, ts).
        assert!(rows.windows(2).all(|w| w[0][..3] <= w[1][..3]));
        let csv = as_csv(&rows);
        let per_row = csv.len() as f64 / rows.len() as f64;
        assert!(
            (15.0..40.0).contains(&per_row),
            "paper cites ~32 bytes/row at full scale; got {per_row:.1}"
        );
    }
}
