//! Compressed-domain execution workload (§6.1): the three places the
//! engine now operates on encoded data instead of materialized values.
//!
//! * **Dictionary-code group-by** — a `HashGroupByOp` over a dict-coded
//!   string key aggregates per distinct *code* and materializes each key
//!   string once per output group, vs the same data with the key column
//!   pre-materialized to plain `Value::Varchar`s.
//! * **Selection-pushdown scan** — a narrow range predicate over the sort
//!   column of a multi-container store: SMA block pruning plus
//!   selection-aware decode vs a full scan of the same store.
//! * **Codec footprint** — FOR/bit-pack over a small-range integer column
//!   and delta-of-delta over an almost-regular timestamp column, sized
//!   against Plain.

use std::sync::Arc;
use std::time::Instant;
use vdb_encoding::{ColumnWriter, EncodingType};
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::groupby::HashGroupByOp;
use vdb_exec::operator::{collect_rows, ValuesOp};
use vdb_exec::scan::{ScanOperator, ScanStats};
use vdb_exec::vector::{TypedVector, VectorData};
use vdb_exec::MemoryBudget;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::{
    BinOp, ColumnDef, DataType, DbResult, Epoch, Expr, Row, StringDictionary, TableSchema, Value,
};

/// Distinct string keys in the group-by data.
pub const KEYS: usize = 32;

const BATCH: usize = 1024;

fn key_name(k: usize) -> String {
    format!("sku-{k:04}-{:08}-warehouse-east", k.wrapping_mul(7919))
}

fn key_at(i: usize) -> usize {
    i.wrapping_mul(7) % KEYS
}

/// `(key, value)` batches with the key column dictionary-coded — the
/// representation an encoded scan hands the group-by.
pub fn dict_batches(rows: usize) -> Vec<Batch> {
    let mut dict = StringDictionary::new();
    for k in 0..KEYS {
        dict.intern_owned(key_name(k));
    }
    let dict = Arc::new(dict);
    let mut out = Vec::new();
    let mut produced = 0usize;
    while produced < rows {
        let n = (rows - produced).min(BATCH);
        let codes: Vec<u32> = (produced..produced + n).map(|i| key_at(i) as u32).collect();
        let value: Vec<i64> = (produced as i64..(produced + n) as i64).collect();
        out.push(Batch::new(vec![
            ColumnSlice::Typed(TypedVector::new(
                VectorData::Dict {
                    dict: dict.clone(),
                    codes,
                },
                None,
            )),
            ColumnSlice::Typed(TypedVector::new(VectorData::Int64(value), None)),
        ]));
        produced += n;
    }
    out
}

/// The same data with the key column pre-materialized to plain strings —
/// what the group-by consumed before compressed-domain execution.
pub fn plain_batches(rows: usize) -> Vec<Batch> {
    let mut out = Vec::new();
    let mut produced = 0usize;
    while produced < rows {
        let n = (rows - produced).min(BATCH);
        let keys: Vec<Value> = (produced..produced + n)
            .map(|i| Value::Varchar(key_name(key_at(i))))
            .collect();
        let value: Vec<i64> = (produced as i64..(produced + n) as i64).collect();
        out.push(Batch::new(vec![
            ColumnSlice::Plain(keys),
            ColumnSlice::Typed(TypedVector::new(VectorData::Int64(value), None)),
        ]));
        produced += n;
    }
    out
}

/// Group by the key column; sorted output so representations compare.
pub fn run_groupby(batches: Vec<Batch>) -> DbResult<Vec<Row>> {
    let mut gb = HashGroupByOp::new(
        Box::new(ValuesOp::new(batches)),
        vec![0],
        vec![
            AggCall::new(AggFunc::CountStar, 0, "cnt"),
            AggCall::new(AggFunc::Sum, 1, "sum"),
        ],
        MemoryBudget::unlimited(),
    );
    let mut rows = collect_rows(&mut gb)?;
    rows.sort();
    Ok(rows)
}

/// `(ts, v, tag)` rows sorted by `ts` over `containers` ROS containers:
/// the shape where SMA pruning + selection-pushdown decode pay off.
pub fn build_scan_store(rows: usize, containers: usize) -> DbResult<ProjectionStore> {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("ts", DataType::Integer),
            ColumnDef::new("v", DataType::Integer),
            ColumnDef::new("tag", DataType::Varchar),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "t_comp", &[0], &[]);
    let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
    let per = rows.div_ceil(containers.max(1));
    let mut produced = 0usize;
    while produced < rows {
        let n = (rows - produced).min(per);
        let chunk: Vec<Row> = (produced..produced + n)
            .map(|i| {
                vec![
                    Value::Integer(i as i64),
                    Value::Integer((i as i64).wrapping_mul(2_654_435_761) % 1_000_000),
                    Value::Varchar(format!("tag{}", i % 8)),
                ]
            })
            .collect();
        store.insert_direct_ros(chunk, Epoch(1))?;
        produced += n;
    }
    Ok(store)
}

/// `lo <= ts <= lo + width - 1` on the sort column.
pub fn narrow_predicate(lo: i64, width: i64) -> Expr {
    Expr::and(
        Expr::binary(BinOp::Ge, Expr::col(0, "ts"), Expr::int(lo)),
        Expr::binary(BinOp::Le, Expr::col(0, "ts"), Expr::int(lo + width - 1)),
    )
}

/// Scan all three columns; returns `(rows out, ms, stats)`.
pub fn run_scan(
    store: &ProjectionStore,
    predicate: Option<Expr>,
) -> DbResult<(usize, f64, ScanStats)> {
    let snap = store.scan_snapshot(Epoch(1));
    let t = Instant::now();
    let mut scan = ScanOperator::new(
        store.backend().clone(),
        snap.containers,
        snap.wos_rows,
        vec![0, 1, 2],
        predicate,
        None,
        vec![],
    );
    let stats = scan.stats();
    let n = collect_rows(&mut scan)?.len();
    let ms = t.elapsed().as_secs_f64() * 1000.0;
    let s = stats.lock().clone();
    Ok((n, ms, s))
}

/// Small-range integers on a large base: FOR/bit-pack territory (a handful
/// of bits per row where Plain pays full varints).
pub fn for_column(rows: usize) -> Vec<Value> {
    (0..rows)
        .map(|i| Value::Integer(1_000_000_000 + (i as i64).wrapping_mul(2_654_435_761) % 4096))
        .collect()
}

/// Almost-regular timestamps: the second derivative is tiny, so
/// delta-of-delta packs rows into a few bits each.
pub fn dod_column(rows: usize) -> Vec<Value> {
    (0..rows as i64)
        .map(|i| Value::Integer(1_330_000_000 + i * 60 + (i % 7) - 3))
        .collect()
}

/// Encoded bytes (data + position index) of one column under `enc`,
/// asserting the codec actually applied (no silent Plain fallback).
pub fn encoded_bytes(values: &[Value], enc: EncodingType) -> DbResult<usize> {
    let mut w = ColumnWriter::new(enc);
    w.extend(values.iter().cloned());
    let (data, index) = w.finish();
    if enc != EncodingType::Plain {
        for b in &index.blocks {
            if b.encoding != enc {
                return Err(vdb_types::DbError::Execution(format!(
                    "codec {} fell back to {} on the benchmark column",
                    enc.name(),
                    b.encoding.name()
                )));
            }
        }
    }
    Ok(data.len() + index.encode().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_and_plain_groupby_agree() {
        let d = run_groupby(dict_batches(20_000)).unwrap();
        let p = run_groupby(plain_batches(20_000)).unwrap();
        assert_eq!(d.len(), KEYS);
        assert_eq!(d, p);
    }

    #[test]
    fn narrow_scan_prunes_and_skips_decode() {
        let store = build_scan_store(40_000, 4).unwrap();
        let (all, _, full) = run_scan(&store, None).unwrap();
        assert_eq!(all, 40_000);
        assert_eq!(full.rows_scanned, 40_000);
        let (n, _, s) = run_scan(&store, Some(narrow_predicate(20_000, 1000))).unwrap();
        assert_eq!(n, 1000);
        assert!(s.containers_pruned_minmax >= 2, "{s:?}");
        assert!(s.blocks_pruned > 0, "{s:?}");
        assert!(s.rows_decode_skipped > 0, "{s:?}");
        assert!(s.rows_scanned < 4000, "{s:?}");
    }

    #[test]
    fn codec_footprints_halve_plain() {
        for (col, enc) in [
            (for_column(20_000), EncodingType::ForBitPack),
            (dod_column(20_000), EncodingType::DeltaDelta),
        ] {
            let packed = encoded_bytes(&col, enc).unwrap();
            let plain = encoded_bytes(&col, EncodingType::Plain).unwrap();
            let ratio = packed as f64 / plain as f64;
            assert!(ratio <= 0.5, "{}: ratio {ratio}", enc.name());
        }
    }
}
