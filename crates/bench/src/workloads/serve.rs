//! Serving-layer benchmark harness: a fixed query mix fired from N
//! concurrent sessions at one [`Server`], measuring throughput and tail
//! latency while the plan cache and the shared morsel pool absorb the
//! load. Used by the `serve` repro target and its CI gate.

use std::sync::Arc;
use std::time::Instant;
use vdb_core::serve::Server;
use vdb_core::{Engine, Row, Value};
use vdb_types::{DbError, DbResult};

/// Statement mix: a morsel-parallel group-by over a multi-container fact
/// table, a selective filter, and a partitioned parallel hash join —
/// every statement fully ordered so results compare row-for-row. The
/// literals are fixed, so each statement resolves to one plan-cache entry.
pub fn query_mix() -> Vec<String> {
    vec![
        "SELECT g, COUNT(*), SUM(v) FROM f GROUP BY g ORDER BY g".to_string(),
        "SELECT COUNT(*) FROM f WHERE v < 1000".to_string(),
        "SELECT d.w, COUNT(*), SUM(f.v) FROM f JOIN d ON f.k = d.k \
         GROUP BY d.w ORDER BY d.w"
            .to_string(),
    ]
}

/// Multi-container fact table `f(g, k, v)` + unsegmented dim `d(k, w)`:
/// `chunks` bulk loads give the parallel scan real morsels to steal. The
/// database is pinned to 4 exec lanes so the parallel operators submit
/// task sets to the shared pool even on single-core hosts (the pool's
/// caller-runs draining keeps that correct at any worker count).
pub fn build_db(rows: usize, chunks: usize) -> DbResult<Engine> {
    let db = Engine::builder().threads(4).open()?;
    db.execute("CREATE TABLE f (g INT, k INT, v INT)")?;
    db.execute(
        "CREATE PROJECTION f_super AS SELECT g, k, v FROM f ORDER BY v \
         SEGMENTED BY HASH(v) ALL NODES",
    )?;
    db.execute("CREATE TABLE d (k INT, w INT)")?;
    db.execute(
        "CREATE PROJECTION d_super AS SELECT k, w FROM d ORDER BY k \
         UNSEGMENTED ALL NODES",
    )?;
    let per_chunk = (rows / chunks.max(1)).max(1);
    for chunk in 0..chunks.max(1) {
        let batch: Vec<Row> = (0..per_chunk)
            .map(|i| {
                let i = (chunk * per_chunk + i) as i64;
                vec![
                    Value::Integer(i % 13),
                    Value::Integer(i % 97),
                    Value::Integer(i),
                ]
            })
            .collect();
        db.load("f", &batch)?;
    }
    let dims: Vec<Row> = (0..97)
        .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
        .collect();
    db.load("d", &dims)?;
    Ok(db)
}

/// One measured phase: `sessions` threads, each its own [`Session`],
/// walking the mix round-robin (phase-shifted per session) until every
/// session has issued `per_session` statements.
///
/// [`Session`]: vdb_core::serve::Session
pub struct PhaseReport {
    pub statements: usize,
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

pub fn run_phase(
    server: &Arc<Server>,
    mix: &[String],
    sessions: usize,
    per_session: usize,
) -> DbResult<PhaseReport> {
    let started = Instant::now();
    let lat_per_session = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let server = server.clone();
                scope.spawn(move || -> DbResult<Vec<f64>> {
                    let session = server.session();
                    let mut latencies = Vec::with_capacity(per_session);
                    for i in 0..per_session {
                        let sql = &mix[(i + s) % mix.len()];
                        let t = Instant::now();
                        session.execute(sql)?;
                        latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                    }
                    Ok(latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| DbError::Execution("serve bench session panicked".into()))?
            })
            .collect::<DbResult<Vec<Vec<f64>>>>()
    })?;
    let wall = started.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = lat_per_session.into_iter().flatten().collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let statements = latencies.len();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    Ok(PhaseReport {
        statements,
        qps: statements as f64 / wall.max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    })
}
