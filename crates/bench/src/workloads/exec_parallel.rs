//! Morsel-driven parallel execution workload: a multi-container
//! projection store scanned + hash-aggregated end to end, serial vs N
//! worker lanes, through exactly the operators the planner emits
//! ([`ParallelScanOp`] with a partial-GroupBy stage and a merge barrier).

use std::sync::Arc;
use std::time::Instant;
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_exec::groupby::HashGroupByOp;
use vdb_exec::operator::collect_rows;
use vdb_exec::parallel::{ParallelScanOp, ParallelScanSpec, ParallelStage};
use vdb_exec::scan::ScanOperator;
use vdb_exec::MemoryBudget;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::{DbResult, Epoch, Row, Value};

/// Distinct groups in the generated data.
pub const GROUPS: i64 = 64;

/// `(g, v)` rows spread over `containers` ROS containers (one direct load
/// per container), sorted by `v` so integer columns land as typed vectors.
pub fn build_store(rows: usize, containers: usize) -> DbResult<ProjectionStore> {
    let schema = vdb_types::TableSchema::new(
        "t",
        vec![
            vdb_types::ColumnDef::new("g", vdb_types::DataType::Integer),
            vdb_types::ColumnDef::new("v", vdb_types::DataType::Integer),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "t_par", &[1], &[]);
    let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
    let per = rows.div_ceil(containers.max(1));
    let mut produced = 0usize;
    while produced < rows {
        let n = (rows - produced).min(per);
        let chunk: Vec<Row> = (produced..produced + n)
            .map(|i| vec![Value::Integer(i as i64 % GROUPS), Value::Integer(i as i64)])
            .collect();
        store.insert_direct_ros(chunk, Epoch(1))?;
        produced += n;
    }
    Ok(store)
}

fn aggs() -> Vec<AggCall> {
    vec![
        AggCall::new(AggFunc::CountStar, 0, "cnt"),
        AggCall::new(AggFunc::Sum, 1, "sum"),
        AggCall::new(AggFunc::Min, 1, "min"),
        AggCall::new(AggFunc::Max, 1, "max"),
    ]
}

/// The serial typed path the planner emits at `threads = 1`: one
/// `ScanOperator` over every container feeding one `HashGroupByOp`.
pub fn run_serial(store: &ProjectionStore) -> DbResult<(Vec<Row>, f64)> {
    let snap = store.scan_snapshot(Epoch(1));
    let t = Instant::now();
    let scan = ScanOperator::new(
        store.backend().clone(),
        snap.containers,
        snap.wos_rows,
        vec![0, 1],
        None,
        None,
        vec![],
    );
    let mut gb = HashGroupByOp::new(Box::new(scan), vec![0], aggs(), MemoryBudget::unlimited());
    let rows = collect_rows(&mut gb)?;
    Ok((rows, t.elapsed().as_secs_f64() * 1000.0))
}

/// The morsel-parallel path at `lanes` workers: per-worker partial
/// aggregation over the shared morsel queue, merged at the barrier.
pub fn run_parallel(store: &ProjectionStore, lanes: usize) -> DbResult<(Vec<Row>, f64)> {
    let snap = store.scan_snapshot(Epoch(1));
    let t = Instant::now();
    let morsels = snap.into_morsels();
    let spec = ParallelScanSpec::new(store.backend().clone(), vec![0, 1]);
    let mut op = ParallelScanOp::new(
        spec,
        ParallelStage::GroupBy {
            group_columns: vec![0],
            aggs: aggs(),
        },
        morsels,
        lanes,
        MemoryBudget::unlimited(),
    );
    let rows = collect_rows(&mut op)?;
    Ok((rows, t.elapsed().as_secs_f64() * 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_lanes_agree_with_serial() {
        let store = build_store(30_000, 8).unwrap();
        assert_eq!(store.container_count(), 8);
        let (serial, _) = run_serial(&store).unwrap();
        assert_eq!(serial.len(), GROUPS as usize);
        for lanes in [1, 2, 4] {
            let (par, _) = run_parallel(&store, lanes).unwrap();
            assert_eq!(par, serial, "lanes={lanes}");
        }
    }
}
