//! Multi-node cluster workload: a segmented fact joined to a dim that must
//! re-segment through the exchange, run on 1 node and on a K-node cluster,
//! plus a node kill → buddy reads → recovery drill. Feeds `repro::cluster`.

use vdb_core::Engine;
use vdb_types::{DbResult, Row, Value};

/// Distinct join keys in the dim table (and the fact's key domain).
pub const DIM_KEYS: i64 = 64;

/// Distinct group-by values in the fact table.
pub const GROUPS: i64 = 32;

/// Build a `nodes`-wide engine: fact `f(k, g, v)` segmented on `k`, dim
/// `d(k, w)` segmented on `w` — NOT the join key — so `f JOIN d ON f.k =
/// d.k` re-segments the dim side through the exchange. Rows are moved out
/// of the WOS so the timed queries scan encoded ROS containers.
pub fn build(nodes: usize, rows: usize) -> DbResult<Engine> {
    let db = Engine::builder().nodes(nodes).open()?;
    db.execute("CREATE TABLE f (k INT, g INT, v INT)")?;
    db.execute(
        "CREATE PROJECTION f_super AS SELECT k, g, v FROM f ORDER BY g \
         SEGMENTED BY HASH(k) ALL NODES",
    )?;
    db.execute("CREATE TABLE d (k INT, w VARCHAR)")?;
    db.execute(
        "CREATE PROJECTION d_super AS SELECT k, w FROM d ORDER BY w \
         SEGMENTED BY HASH(w) ALL NODES",
    )?;
    let fact: Vec<Row> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Integer(i % DIM_KEYS),
                Value::Integer(i % GROUPS),
                Value::Integer(i),
            ]
        })
        .collect();
    db.load("f", &fact)?;
    let dim: Vec<Row> = (0..DIM_KEYS)
        .map(|k| {
            vec![
                Value::Integer(k),
                Value::Varchar(format!("name{:03}", k % 7)),
            ]
        })
        .collect();
    db.load("d", &dim)?;
    db.tuple_mover_tick()?;
    Ok(db)
}

/// Deterministic (fully ordered) query mix: segment-local aggregation, a
/// resegmented join, and a selective filter — the three distributed shapes.
pub fn query_mix() -> Vec<&'static str> {
    vec![
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM f GROUP BY g ORDER BY g",
        "SELECT w, COUNT(*), SUM(v) FROM f JOIN d ON f.k = d.k GROUP BY w ORDER BY w",
        "SELECT k, v FROM f WHERE v < 100 ORDER BY v, k",
    ]
}

/// Run the whole mix once, returning the per-query row sets.
pub fn run_mix(db: &Engine) -> DbResult<Vec<Vec<Row>>> {
    query_mix().iter().map(|q| db.query(q)).collect()
}
