//! Workload for the vectorized expression engine: a scan with an
//! arithmetic + CASE projection and a disjunctive filter, driven through
//! the columnar FilterOp → ProjectOp pipeline and through a pre-refactor
//! row-at-a-time baseline (pivot every batch, `Expr::matches` /
//! `Expr::eval` per row). A second variant feeds an RLE category column to
//! measure the per-run short-circuit.

use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::filter::{FilterOp, ProjectOp};
use vdb_exec::operator::{Operator, ValuesOp};
use vdb_exec::vector::{TypedVector, VectorData};
use vdb_types::{BinOp, DbResult, Expr, Value};

const BATCH: usize = 1024;

/// Distinct categories in the RLE variant.
pub const CATEGORIES: i64 = 50;

/// Typed batches: `a` counts up, `b` cycles mod 1000, `f` is a float.
pub fn typed_batches(rows: usize) -> Vec<Batch> {
    (0..rows as i64)
        .collect::<Vec<_>>()
        .chunks(BATCH)
        .map(|c| {
            let a: Vec<i64> = c.to_vec();
            let b: Vec<i64> = c.iter().map(|&i| (i * 7) % 1000).collect();
            let f: Vec<f64> = c.iter().map(|&i| (i % 977) as f64).collect();
            Batch::new(vec![
                ColumnSlice::Typed(TypedVector::new(VectorData::Int64(a), None)),
                ColumnSlice::Typed(TypedVector::new(VectorData::Int64(b), None)),
                ColumnSlice::Typed(TypedVector::new(VectorData::Float64(f), None)),
            ])
        })
        .collect()
}

/// The same data as plain `Value` columns (the baseline representation).
pub fn plain_batches(rows: usize) -> Vec<Batch> {
    typed_batches(rows)
        .into_iter()
        .map(|b| {
            Batch::new(
                b.columns
                    .iter()
                    .map(|c| ColumnSlice::Plain(c.to_values()))
                    .collect(),
            )
        })
        .collect()
}

/// Disjunctive filter: `a < rows/4 OR b >= 900`.
pub fn filter_pred(rows: usize) -> Expr {
    Expr::or(
        Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(rows as i64 / 4)),
        Expr::binary(BinOp::Ge, Expr::col(1, "b"), Expr::int(900)),
    )
}

/// Select list: arithmetic, CASE, and float math.
pub fn project_exprs() -> Vec<Expr> {
    vec![
        Expr::binary(
            BinOp::Add,
            Expr::col(0, "a"),
            Expr::binary(BinOp::Mul, Expr::col(1, "b"), Expr::int(2)),
        ),
        Expr::case(
            vec![(
                Expr::binary(BinOp::Ge, Expr::col(1, "b"), Expr::int(500)),
                Expr::binary(BinOp::Mul, Expr::col(0, "a"), Expr::int(2)),
            )],
            Some(Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::int(1))),
        ),
        Expr::binary(BinOp::Mul, Expr::col(2, "f"), Expr::lit(Value::Float(0.5))),
    ]
}

/// RLE batches: a category column in long runs plus a typed value column.
pub fn rle_batches(rows: usize) -> Vec<Batch> {
    let run_len = 512usize;
    let mut out = Vec::new();
    let mut produced = 0usize;
    let mut cat = 0i64;
    while produced < rows {
        let n = (rows - produced).min(BATCH * 4);
        let mut runs = Vec::new();
        let mut left = n;
        while left > 0 {
            let take = left.min(run_len);
            runs.push((Value::Integer(cat % CATEGORIES), take as u32));
            cat += 1;
            left -= take;
        }
        let value: Vec<i64> = (produced as i64..(produced + n) as i64).collect();
        out.push(Batch::new(vec![
            ColumnSlice::rle(runs),
            ColumnSlice::Typed(TypedVector::new(VectorData::Int64(value), None)),
        ]));
        produced += n;
    }
    out
}

/// [`rle_batches`] expanded to plain values.
pub fn rle_expanded_batches(rows: usize) -> Vec<Batch> {
    rle_batches(rows)
        .into_iter()
        .map(|b| {
            Batch::new(
                b.columns
                    .iter()
                    .map(|c| ColumnSlice::Plain(c.to_values()))
                    .collect(),
            )
        })
        .collect()
}

/// RLE-variant filter: `cat = 7 OR cat >= 40` (per-run tests).
pub fn rle_pred() -> Expr {
    Expr::or(
        Expr::eq(Expr::col(0, "cat"), Expr::int(7)),
        Expr::binary(BinOp::Ge, Expr::col(0, "cat"), Expr::int(40)),
    )
}

/// RLE-variant projection: a single-column CASE (evaluates once per run)
/// plus native arithmetic on the value column.
pub fn rle_exprs() -> Vec<Expr> {
    vec![
        Expr::case(
            vec![(
                Expr::binary(BinOp::Ge, Expr::col(0, "cat"), Expr::int(40)),
                Expr::binary(BinOp::Mul, Expr::col(0, "cat"), Expr::int(100)),
            )],
            Some(Expr::col(0, "cat")),
        ),
        Expr::binary(BinOp::Add, Expr::col(1, "v"), Expr::int(1)),
    ]
}

/// Result fingerprint: survivor count plus a sampled checksum (every 101st
/// output row, all columns) so the paths are checked for agreement without
/// the checksum dominating the timing.
#[derive(Debug, PartialEq)]
pub struct Fingerprint {
    pub rows: u64,
    pub checksum: i64,
}

fn fold(checksum: &mut i64, v: &Value) {
    let bits = match v {
        Value::Integer(x) | Value::Timestamp(x) => *x,
        Value::Float(f) => f.to_bits() as i64,
        Value::Boolean(b) => i64::from(*b),
        Value::Varchar(s) => s.len() as i64,
        Value::Null => -1,
    };
    *checksum = checksum.wrapping_mul(31).wrapping_add(bits);
}

/// Columnar pipeline: FilterOp (vectorized predicate) → ProjectOp
/// (expression engine) → batch drain. Also returns how many row pivots
/// the pipeline performed on this thread (expected: zero).
pub fn run_vectorized(
    batches: Vec<Batch>,
    pred: Expr,
    exprs: Vec<Expr>,
) -> DbResult<(Fingerprint, u64)> {
    let pivots_before = vdb_exec::row_pivot_count();
    let filter = FilterOp::new(Box::new(ValuesOp::new(batches)), pred);
    let mut project = ProjectOp::new(Box::new(filter), exprs);
    let mut fp = Fingerprint {
        rows: 0,
        checksum: 0,
    };
    let mut next_sample = 0u64;
    while let Some(batch) = project.next_batch()? {
        let n = batch.len() as u64;
        // Sample via column accessors — no pivot.
        while next_sample < fp.rows + n {
            let li = (next_sample - fp.rows) as usize;
            let pi = batch.physical_index(li);
            for col in &batch.columns {
                fold(&mut fp.checksum, &col.value_at(pi));
            }
            next_sample += 101;
        }
        fp.rows += n;
    }
    Ok((fp, vdb_exec::row_pivot_count() - pivots_before))
}

/// Pre-refactor baseline: pivot each batch to rows, evaluate the predicate
/// and every select-list expression per row.
pub fn run_row_path(batches: Vec<Batch>, pred: Expr, exprs: Vec<Expr>) -> DbResult<Fingerprint> {
    let mut fp = Fingerprint {
        rows: 0,
        checksum: 0,
    };
    let mut next_sample = 0u64;
    for batch in batches {
        for row in batch.into_rows() {
            if !pred.matches(&row)? {
                continue;
            }
            let mut projected = Vec::with_capacity(exprs.len());
            for e in &exprs {
                projected.push(e.eval(&row)?);
            }
            if fp.rows == next_sample {
                for v in &projected {
                    fold(&mut fp.checksum, v);
                }
                next_sample += 101;
            }
            fp.rows += 1;
        }
    }
    Ok(fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorized_and_row_paths_agree() {
        let rows = 20_000;
        let (v, pivots) =
            run_vectorized(typed_batches(rows), filter_pred(rows), project_exprs()).unwrap();
        let r = run_row_path(plain_batches(rows), filter_pred(rows), project_exprs()).unwrap();
        assert_eq!(v, r);
        assert!(v.rows > 0);
        assert_eq!(pivots, 0, "columnar pipeline must not pivot");
    }

    #[test]
    fn rle_variant_agrees_and_stays_pivot_free() {
        let rows = 20_000;
        let (v, pivots) = run_vectorized(rle_batches(rows), rle_pred(), rle_exprs()).unwrap();
        let r = run_row_path(rle_expanded_batches(rows), rle_pred(), rle_exprs()).unwrap();
        assert_eq!(v, r);
        assert_eq!(pivots, 0);
    }
}
