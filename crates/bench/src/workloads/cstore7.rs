//! Table 3 workload: the C-Store paper's simplified-TPC-H test harness.
//!
//! The 2005 C-Store paper (§9) evaluated on a simplified TPC-H schema —
//! `lineitem` and `orders` with a reduced column set — with seven queries
//! mixing single-table aggregations over `l_shipdate`/`l_suppkey` and
//! fact-fact joins grouped by order date and return flag. The exact
//! constants are scale-dependent; we reconstruct the query *shapes* from
//! the paper's description (documented per query below) and pick constants
//! with comparable selectivities.
//!
//! Both engines run equivalent physical work: Vertica through SQL against
//! its projections, C-Store through the tuple-at-a-time iterators of
//! `vdb-cstore`.

use rand::{Rng, SeedableRng};
use vdb_core::Engine;
use vdb_cstore::{collect, CStoreDb, CStoreGroupBy, CStoreHashJoin};
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_types::{BinOp, ColumnDef, DataType, DbResult, Expr, Row, TableSchema, Value};

pub const DAY: i64 = 86_400;
/// Dates span 1992-01-01 .. ~1998 in day-granular timestamps.
pub const BASE_DATE: i64 = 694_224_000;
pub const N_DAYS: i64 = 2_400;
pub const N_SUPPLIERS: i64 = 100;

/// lineitem(l_orderkey, l_suppkey, l_shipdate, l_extendedprice,
///          l_returnflag)
pub fn lineitem_schema() -> TableSchema {
    TableSchema::new(
        "lineitem",
        vec![
            ColumnDef::new("l_orderkey", DataType::Integer),
            ColumnDef::new("l_suppkey", DataType::Integer),
            ColumnDef::new("l_shipdate", DataType::Timestamp),
            ColumnDef::new("l_extendedprice", DataType::Float),
            ColumnDef::new("l_returnflag", DataType::Varchar),
        ],
    )
}

/// orders(o_orderkey, o_orderdate)
pub fn orders_schema() -> TableSchema {
    TableSchema::new(
        "orders",
        vec![
            ColumnDef::new("o_orderkey", DataType::Integer),
            ColumnDef::new("o_orderdate", DataType::Timestamp),
        ],
    )
}

/// Generate (lineitem, orders): ~4 lineitems per order.
pub fn generate(lineitem_rows: usize, seed: u64) -> (Vec<Row>, Vec<Row>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_orders = (lineitem_rows / 4).max(1);
    let flags = ["A", "N", "R"];
    let mut orders = Vec::with_capacity(n_orders);
    let mut order_dates = Vec::with_capacity(n_orders);
    for ok in 0..n_orders as i64 {
        let date = BASE_DATE + rng.gen_range(0..N_DAYS) * DAY;
        order_dates.push(date);
        orders.push(vec![Value::Integer(ok), Value::Timestamp(date)]);
    }
    let mut lineitems = Vec::with_capacity(lineitem_rows);
    for _ in 0..lineitem_rows {
        let ok = rng.gen_range(0..n_orders as i64);
        // Ship within ~0..60 days of the order date.
        let ship = order_dates[ok as usize] + rng.gen_range(1..60i64) * DAY;
        lineitems.push(vec![
            Value::Integer(ok),
            Value::Integer(rng.gen_range(0..N_SUPPLIERS)),
            Value::Timestamp(ship),
            Value::Float((rng.gen_range(100..100_000) as f64) / 100.0),
            Value::Varchar(flags[rng.gen_range(0..3usize)].to_string()),
        ]);
    }
    (lineitems, orders)
}

/// Reference dates with paper-comparable selectivities.
pub struct QueryConstants {
    /// Q1: shipdate > d1 (selective tail, ~2% of days).
    pub d1: i64,
    /// Q2: shipdate = d2 (one day).
    pub d2: i64,
    /// Q3: shipdate > d3 (~25%).
    pub d3: i64,
    /// Q4: orderdate > d4 (~10%).
    pub d4: i64,
    /// Q5: orderdate = d5 (one day).
    pub d5: i64,
    /// Q6: shipdate > d6 (~25%).
    pub d6: i64,
    /// Q7: orderdate > d7 (~50%).
    pub d7: i64,
}

pub fn constants() -> QueryConstants {
    QueryConstants {
        d1: BASE_DATE + (N_DAYS - 50) * DAY,
        d2: BASE_DATE + 1000 * DAY,
        d3: BASE_DATE + (N_DAYS * 3 / 4) * DAY,
        d4: BASE_DATE + (N_DAYS * 9 / 10) * DAY,
        d5: BASE_DATE + 1000 * DAY,
        d6: BASE_DATE + (N_DAYS * 3 / 4) * DAY,
        d7: BASE_DATE + (N_DAYS / 2) * DAY,
    }
}

/// Install schema + projections and bulk load the Vertica-side database.
pub fn setup_vertica(lineitems: &[Row], orders: &[Row]) -> DbResult<Engine> {
    let db = Engine::builder().open()?;
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INT, l_suppkey INT, l_shipdate TIMESTAMP, \
         l_extendedprice FLOAT, l_returnflag VARCHAR)",
    )?;
    db.execute(
        "CREATE PROJECTION lineitem_super AS \
         SELECT l_orderkey, l_suppkey, l_shipdate, l_extendedprice, l_returnflag \
         FROM lineitem ORDER BY l_shipdate, l_suppkey \
         SEGMENTED BY HASH(l_orderkey) ALL NODES",
    )?;
    db.execute("CREATE TABLE orders (o_orderkey INT, o_orderdate TIMESTAMP)")?;
    db.execute(
        "CREATE PROJECTION orders_super AS SELECT o_orderkey, o_orderdate FROM orders \
         ORDER BY o_orderdate UNSEGMENTED ALL NODES",
    )?;
    db.load("lineitem", lineitems)?;
    db.load("orders", orders)?;
    Ok(db)
}

/// Load the C-Store-side database (same logical sort orders).
pub fn setup_cstore(lineitems: Vec<Row>, orders: Vec<Row>) -> DbResult<CStoreDb> {
    let mut db = CStoreDb::new();
    db.load_table(lineitem_schema(), lineitems, &[2, 1])?;
    db.load_table(orders_schema(), orders, &[1])?;
    Ok(db)
}

/// The seven queries as SQL (Vertica side).
pub fn vertica_sql(q: usize, c: &QueryConstants) -> String {
    match q {
        // Q1: ship-date histogram over a recent window.
        1 => format!(
            "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > {} \
             GROUP BY l_shipdate",
            c.d1
        ),
        // Q2: supplier activity on one day.
        2 => format!(
            "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = {} \
             GROUP BY l_suppkey",
            c.d2
        ),
        // Q3: supplier activity since a date.
        3 => format!(
            "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > {} \
             GROUP BY l_suppkey",
            c.d3
        ),
        // Q4: order-date histogram over the recent tail.
        4 => format!(
            "SELECT o_orderdate, COUNT(*) FROM orders WHERE o_orderdate > {} \
             GROUP BY o_orderdate",
            c.d4
        ),
        // Q5: per-supplier lineitems for orders placed on one day (join).
        5 => format!(
            "SELECT l_suppkey, COUNT(*) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND o_orderdate = {} GROUP BY l_suppkey",
            c.d5
        ),
        // Q6: order-date histogram of recently shipped lineitems (join).
        6 => format!(
            "SELECT o_orderdate, COUNT(*) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_shipdate > {} GROUP BY o_orderdate",
            c.d6
        ),
        // Q7: revenue by return flag for the newer half of orders (join).
        7 => format!(
            "SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND o_orderdate > {} GROUP BY l_returnflag",
            c.d7
        ),
        _ => panic!("queries are 1..=7"),
    }
}

/// The seven queries as C-Store iterator pipelines.
pub fn run_cstore(db: &CStoreDb, q: usize, c: &QueryConstants) -> DbResult<Vec<Row>> {
    let count = |input: usize| AggCall::new(AggFunc::CountStar, input, "cnt");
    match q {
        1 => {
            let scan = db.scan(
                "lineitem",
                &[2],
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(0, "l_shipdate"),
                    Expr::lit(Value::Timestamp(c.d1)),
                )),
            )?;
            collect(CStoreGroupBy::new(scan, vec![0], vec![count(0)])?)
        }
        2 => {
            let scan = db.scan(
                "lineitem",
                &[1, 2],
                Some(Expr::eq(
                    Expr::col(1, "l_shipdate"),
                    Expr::lit(Value::Timestamp(c.d2)),
                )),
            )?;
            collect(CStoreGroupBy::new(scan, vec![0], vec![count(0)])?)
        }
        3 => {
            let scan = db.scan(
                "lineitem",
                &[1, 2],
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(1, "l_shipdate"),
                    Expr::lit(Value::Timestamp(c.d3)),
                )),
            )?;
            collect(CStoreGroupBy::new(scan, vec![0], vec![count(0)])?)
        }
        4 => {
            let scan = db.scan(
                "orders",
                &[1],
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(0, "o_orderdate"),
                    Expr::lit(Value::Timestamp(c.d4)),
                )),
            )?;
            collect(CStoreGroupBy::new(scan, vec![0], vec![count(0)])?)
        }
        5 => {
            let left = db.scan("lineitem", &[0, 1], None)?;
            let right = db.scan(
                "orders",
                &[0, 1],
                Some(Expr::eq(
                    Expr::col(1, "o_orderdate"),
                    Expr::lit(Value::Timestamp(c.d5)),
                )),
            )?;
            let join = CStoreHashJoin::new(left, right, 0, 0)?;
            collect(CStoreGroupBy::new(join, vec![1], vec![count(1)])?)
        }
        6 => {
            let left = db.scan(
                "lineitem",
                &[0, 2],
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(1, "l_shipdate"),
                    Expr::lit(Value::Timestamp(c.d6)),
                )),
            )?;
            let right = db.scan("orders", &[0, 1], None)?;
            let join = CStoreHashJoin::new(left, right, 0, 0)?;
            // join layout: l_orderkey, l_shipdate, o_orderkey, o_orderdate.
            collect(CStoreGroupBy::new(join, vec![3], vec![count(3)])?)
        }
        7 => {
            let left = db.scan("lineitem", &[0, 3, 4], None)?;
            let right = db.scan(
                "orders",
                &[0, 1],
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(1, "o_orderdate"),
                    Expr::lit(Value::Timestamp(c.d7)),
                )),
            )?;
            let join = CStoreHashJoin::new(left, right, 0, 0)?;
            // layout: l_orderkey, l_extendedprice, l_returnflag, o_*, o_*.
            collect(CStoreGroupBy::new(
                join,
                vec![2],
                vec![AggCall::new(AggFunc::Sum, 1, "rev")],
            )?)
        }
        _ => panic!("queries are 1..=7"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both engines must agree on every query — the baseline is a
    /// correctness oracle as well as a performance comparator.
    #[test]
    fn engines_agree_on_all_seven_queries() {
        let (li, ord) = generate(4_000, 7);
        let vertica = setup_vertica(&li, &ord).unwrap();
        let cstore = setup_cstore(li, ord).unwrap();
        let c = constants();
        for q in 1..=7 {
            let mut v = vertica.query(&vertica_sql(q, &c)).unwrap();
            let mut s = run_cstore(&cstore, q, &c).unwrap();
            v.sort();
            s.sort();
            assert_eq!(v, s, "query Q{q} diverged");
            if q != 2 && q != 5 {
                assert!(!v.is_empty(), "Q{q} returned nothing");
            }
        }
    }

    #[test]
    fn generator_shape() {
        let (li, ord) = generate(1000, 1);
        assert_eq!(li.len(), 1000);
        assert_eq!(ord.len(), 250);
        // Every lineitem points at a real order.
        let max_ok = ord.len() as i64;
        assert!(li.iter().all(|r| r[0].as_i64().unwrap() < max_ok));
    }
}
