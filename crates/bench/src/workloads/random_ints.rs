//! Table 4's first dataset: "a text file containing a million random
//! integers between 1 and 10 million".

use rand::{Rng, SeedableRng};

/// Generate `n` uniform integers in `[1, 10_000_000]`.
pub fn generate(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=10_000_000i64)).collect()
}

/// Render as the paper's text file: one integer per line.
pub fn as_text(values: &[i64]) -> String {
    let mut s = String::with_capacity(values.len() * 8);
    for v in values {
        s.push_str(&v.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let vals = generate(10_000, 42);
        assert!(vals.iter().all(|&v| (1..=10_000_000).contains(&v)));
        let text = as_text(&vals);
        // ~7 digits + newline ≈ 7.9 bytes/row (paper's raw figure).
        let per_row = text.len() as f64 / vals.len() as f64;
        assert!((7.0..9.0).contains(&per_row), "bytes/row = {per_row}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(generate(100, 7), generate(100, 7));
        assert_ne!(generate(100, 7), generate(100, 8));
    }
}
