//! `vdb-bench` — workload generators and reproduction harnesses for every
//! table and figure of the paper.
//!
//! | Experiment | Harness |
//! |---|---|
//! | Table 1 & 2 (lock matrices) | [`repro::table1_2`] |
//! | Table 3 (C-Store vs Vertica, Q1–Q7 + disk) | [`repro::table3`] |
//! | Table 4 (compression) | [`repro::table4`] |
//! | Figure 1 (projections) | [`repro::figure1`] |
//! | Figure 2 (storage layout + partition pruning) | [`repro::figure2`] |
//! | Figure 3 (parallel pipelined plan) | [`repro::figure3`] |
//!
//! `cargo run -p vdb_bench --bin repro -- all` prints every reproduction;
//! the Criterion benches in `benches/` time the same code paths.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod repro;
pub mod workloads;
