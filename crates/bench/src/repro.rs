//! Reproduction harnesses: one function per table/figure, each returning
//! the formatted reproduction (the `repro` binary prints them; EXPERIMENTS.md
//! records a captured run).

use crate::workloads::{cstore7, meter, random_ints};
use std::fmt::Write as _;
use std::time::Instant;
use vdb_encoding::{ColumnWriter, EncodingType};
use vdb_types::{DbResult, Expr, Value};

/// Tables 1 and 2: regenerate the lock matrices from the live
/// implementation (the unit tests verify them cell-by-cell against the
/// paper; this prints them in the paper's layout).
pub fn table1_2() -> String {
    format!(
        "== Table 1: Lock Compatibility Matrix ==\n{}\n\
         == Table 2: Lock Conversion Matrix ==\n{}",
        vdb_txn::locks::render_compatibility_table(),
        vdb_txn::locks::render_conversion_table()
    )
}

/// Table 3: C-Store vs Vertica on the seven-query harness.
pub fn table3(lineitem_rows: usize) -> DbResult<String> {
    let (li, ord) = cstore7::generate(lineitem_rows, 7);
    let vertica = cstore7::setup_vertica(&li, &ord)?;
    let cstore = cstore7::setup_cstore(li, ord)?;
    let c = cstore7::constants();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 3: Vertica vs C-Store ({lineitem_rows} lineitem rows) =="
    );
    let _ = writeln!(
        out,
        "{:<8}{:>14}{:>14}{:>9}",
        "Query", "C-Store(ms)", "Vertica(ms)", "ratio"
    );
    let mut total_c = 0.0;
    let mut total_v = 0.0;
    for q in 1..=7 {
        // Warm + verify agreement once.
        let mut vr = vertica.query(&cstore7::vertica_sql(q, &c))?;
        let mut cr = cstore7::run_cstore(&cstore, q, &c)?;
        vr.sort();
        cr.sort();
        assert_eq!(vr, cr, "Q{q} results diverged");
        let t = Instant::now();
        let _ = cstore7::run_cstore(&cstore, q, &c)?;
        let ms_c = t.elapsed().as_secs_f64() * 1000.0;
        let t = Instant::now();
        let _ = vertica.query(&cstore7::vertica_sql(q, &c))?;
        let ms_v = t.elapsed().as_secs_f64() * 1000.0;
        total_c += ms_c;
        total_v += ms_v;
        let _ = writeln!(
            out,
            "Q{q:<7}{ms_c:>14.1}{ms_v:>14.1}{:>9.2}",
            ms_c / ms_v.max(0.001)
        );
    }
    let _ = writeln!(
        out,
        "{:<8}{:>14.1}{:>14.1}{:>9.2}",
        "Total",
        total_c,
        total_v,
        total_c / total_v.max(0.001)
    );
    let _ = writeln!(
        out,
        "Disk     C-Store: {} bytes   Vertica: {} bytes   ratio {:.2}",
        cstore.disk_bytes(),
        vertica.disk_bytes(),
        cstore.disk_bytes() as f64 / vertica.disk_bytes().max(1) as f64
    );
    let _ = writeln!(
        out,
        "(paper: total 18.7s vs 9.6s ≈ 1.9x; disk 1987MB vs 949MB ≈ 2.1x)"
    );
    Ok(out)
}

/// Encode a column the way a DBD-designed Vertica projection stores it:
/// the Database Designer's storage-optimization phase tries every encoding
/// empirically and keeps the smallest (§6.3); per-block Auto competes too.
fn vertica_column_bytes(values: &[Value]) -> usize {
    let mut best = usize::MAX;
    for enc in EncodingType::CONCRETE
        .iter()
        .copied()
        .chain([EncodingType::Auto])
    {
        let mut w = ColumnWriter::new(enc);
        w.extend(values.iter().cloned());
        let (data, index) = w.finish();
        best = best.min(data.len() + index.encode().len());
    }
    best
}

/// Table 4: compression on random integers and meter data.
pub fn table4(n_ints: usize, meter_rows: usize) -> DbResult<String> {
    let mut out = String::new();
    // --- 1M random integers (§8.2.1) -----------------------------------
    let ints = random_ints::generate(n_ints, 42);
    let text = random_ints::as_text(&ints);
    let raw = text.len();
    let gz = vdb_compress::compress(text.as_bytes()).len();
    let mut sorted = ints.clone();
    sorted.sort_unstable();
    let sorted_text = random_ints::as_text(&sorted);
    let gz_sorted = vdb_compress::compress(sorted_text.as_bytes()).len();
    // Vertica: sorted projection column, Auto-encoded.
    let col: Vec<Value> = sorted.iter().map(|&v| Value::Integer(v)).collect();
    let vertica = vertica_column_bytes(&col);
    let _ = writeln!(out, "== Table 4a: {n_ints} random integers ==");
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>8}{:>10}",
        "Method", "Bytes", "Ratio", "B/row"
    );
    for (name, bytes) in [
        ("Raw", raw),
        ("gzip-class", gz),
        ("gzip+sort", gz_sorted),
        ("Vertica", vertica),
    ] {
        let _ = writeln!(
            out,
            "{name:<16}{bytes:>12}{:>8.1}{:>10.2}",
            raw as f64 / bytes as f64,
            bytes as f64 / n_ints as f64
        );
    }
    let _ = writeln!(
        out,
        "(paper @1M rows: raw 7.9 B/row; gzip 3.7; gzip+sort 2.4; Vertica 0.6)\n"
    );
    // --- meter data (§8.2.2) -------------------------------------------
    // Scale the series counts with the row budget so each series keeps the
    // paper's ~hundreds of samples (200M rows over 300 metrics × 2000
    // meters ≈ 333 samples/series); tiny runs would otherwise degenerate
    // to one sample per series.
    let config = scaled_meter_config(meter_rows);
    let rows = meter::generate(meter_rows, &config);
    let csv = meter::as_csv(&rows);
    let raw = csv.len();
    let gz = vdb_compress::compress(csv.as_bytes()).len();
    let _ = writeln!(out, "== Table 4b: {meter_rows} meter records ==");
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>8}{:>10}",
        "Method", "Bytes", "Ratio", "B/row"
    );
    let _ = writeln!(
        out,
        "{:<16}{raw:>12}{:>8.1}{:>10.2}",
        "Raw CSV",
        1.0,
        raw as f64 / meter_rows as f64
    );
    let _ = writeln!(
        out,
        "{:<16}{gz:>12}{:>8.1}{:>10.2}",
        "gzip-class",
        raw as f64 / gz as f64,
        gz as f64 / meter_rows as f64
    );
    // Vertica: per-column sizes over the (metric, meter, ts) sort order.
    let names = ["metric", "meter", "ts", "value"];
    let mut vertica_total = 0usize;
    let mut per_col = String::new();
    for c in 0..4 {
        let col: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        let bytes = vertica_column_bytes(&col);
        vertica_total += bytes;
        let _ = writeln!(per_col, "    column {:<10}{bytes:>12} bytes", names[c]);
    }
    let _ = writeln!(
        out,
        "{:<16}{vertica_total:>12}{:>8.1}{:>10.2}",
        "Vertica",
        raw as f64 / vertica_total as f64,
        vertica_total as f64 / meter_rows as f64
    );
    out.push_str(&per_col);
    let _ = writeln!(
        out,
        "(paper @200M rows: raw 32 B/row; gzip 5.5; Vertica 2.2 — metric 5KB, \
         meter 35MB, ts 20MB, value 363MB)"
    );
    Ok(out)
}

/// Typed-vector executor micro-benchmark: filter → group-by → SUM over
/// plain and RLE-heavy batches, typed/selection-vector path vs the
/// pre-refactor row path. Returns the report plus machine-readable
/// `(metric, value)` pairs for `BENCH_repro.json`.
pub fn exec_vector(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::exec_vector as wl;
    // Each measurement consumes a freshly built input; batch construction
    // happens before the clock starts so the timings compare only the
    // pipelines.
    let typed = wl::typed_batches(rows);
    let t = Instant::now();
    let groups = wl::run_filter_groupby(typed, wl::half_predicate(rows))?;
    let typed_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(groups, wl::GROUPS as usize);
    let plain = wl::plain_batches(rows);
    let t = Instant::now();
    let groups = wl::run_row_baseline(plain, wl::half_predicate(rows))?;
    let row_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(groups, wl::GROUPS as usize);
    let rle = wl::rle_batches(rows);
    let t = Instant::now();
    let (_, encoded) = wl::run_pipelined(rle)?;
    let rle_typed_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(encoded, rows as u64);
    let rle_expanded = wl::rle_expanded_batches(rows);
    let t = Instant::now();
    let (_, encoded) = wl::run_pipelined(rle_expanded)?;
    let rle_row_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(encoded, 0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Typed-vector executor: filter→groupby→SUM ({rows} rows) =="
    );
    let _ = writeln!(
        out,
        "{:<28}{:>12}{:>12}{:>10}",
        "Pipeline", "row(ms)", "typed(ms)", "speedup"
    );
    let _ = writeln!(
        out,
        "{:<28}{row_ms:>12.1}{typed_ms:>12.1}{:>10.2}",
        "plain batches",
        row_ms / typed_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "{:<28}{rle_row_ms:>12.1}{rle_typed_ms:>12.1}{:>10.2}",
        "RLE batches (pipelined)",
        rle_row_ms / rle_typed_ms.max(0.001)
    );
    let metrics = vec![
        ("exec_vector_rows".to_string(), rows as f64),
        ("exec_vector_row_ms".to_string(), row_ms),
        ("exec_vector_typed_ms".to_string(), typed_ms),
        (
            "exec_vector_speedup".to_string(),
            row_ms / typed_ms.max(0.001),
        ),
        ("exec_vector_rle_row_ms".to_string(), rle_row_ms),
        ("exec_vector_rle_typed_ms".to_string(), rle_typed_ms),
        (
            "exec_vector_rle_speedup".to_string(),
            rle_row_ms / rle_typed_ms.max(0.001),
        ),
    ];
    Ok((out, metrics))
}

/// Vectorized expression engine: a 1M-row scan with an arithmetic + CASE
/// projection and a disjunctive filter, through the columnar
/// FilterOp → ProjectOp pipeline vs the pre-refactor row-at-a-time path,
/// on plain/typed batches and on an RLE category column (per-run
/// short-circuit). Paths are asserted to agree (and the columnar pipeline
/// to perform zero row pivots) before anything is timed.
pub fn exec_expr(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::exec_expr as wl;
    // Correctness + pivot-freedom first.
    let (v, pivots) = wl::run_vectorized(
        wl::typed_batches(rows),
        wl::filter_pred(rows),
        wl::project_exprs(),
    )?;
    let r = wl::run_row_path(
        wl::plain_batches(rows),
        wl::filter_pred(rows),
        wl::project_exprs(),
    )?;
    if v != r {
        return Err(vdb_types::DbError::Execution(
            "vectorized expression pipeline diverged from the row path".into(),
        ));
    }
    let (vr, rle_pivots) =
        wl::run_vectorized(wl::rle_batches(rows), wl::rle_pred(), wl::rle_exprs())?;
    let rr = wl::run_row_path(
        wl::rle_expanded_batches(rows),
        wl::rle_pred(),
        wl::rle_exprs(),
    )?;
    if vr != rr {
        return Err(vdb_types::DbError::Execution(
            "vectorized RLE expression pipeline diverged from the row path".into(),
        ));
    }
    // Timings: inputs are rebuilt per run (both sides pay construction
    // outside the clock); best-of-2 damps scheduler noise.
    let time_vec =
        |mk: &dyn Fn() -> Vec<vdb_exec::Batch>, pred: &Expr, exprs: &[Expr]| -> DbResult<f64> {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let batches = mk();
                let t = Instant::now();
                let _ = wl::run_vectorized(batches, pred.clone(), exprs.to_vec())?;
                best = best.min(t.elapsed().as_secs_f64() * 1000.0);
            }
            Ok(best)
        };
    let time_row =
        |mk: &dyn Fn() -> Vec<vdb_exec::Batch>, pred: &Expr, exprs: &[Expr]| -> DbResult<f64> {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let batches = mk();
                let t = Instant::now();
                let _ = wl::run_row_path(batches, pred.clone(), exprs.to_vec())?;
                best = best.min(t.elapsed().as_secs_f64() * 1000.0);
            }
            Ok(best)
        };
    let pred = wl::filter_pred(rows);
    let exprs = wl::project_exprs();
    let vec_ms = time_vec(&|| wl::typed_batches(rows), &pred, &exprs)?;
    let row_ms = time_row(&|| wl::plain_batches(rows), &pred, &exprs)?;
    let rle_vec_ms = time_vec(&|| wl::rle_batches(rows), &wl::rle_pred(), &wl::rle_exprs())?;
    let rle_row_ms = time_row(
        &|| wl::rle_expanded_batches(rows),
        &wl::rle_pred(),
        &wl::rle_exprs(),
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Vectorized expressions: filter(OR) → project(arith + CASE) ({rows} rows) =="
    );
    let _ = writeln!(
        out,
        "{:<28}{:>12}{:>12}{:>10}",
        "Pipeline", "row(ms)", "vec(ms)", "speedup"
    );
    let _ = writeln!(
        out,
        "{:<28}{row_ms:>12.1}{vec_ms:>12.1}{:>10.2}",
        "typed batches",
        row_ms / vec_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "{:<28}{rle_row_ms:>12.1}{rle_vec_ms:>12.1}{:>10.2}",
        "RLE category (per-run)",
        rle_row_ms / rle_vec_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "row pivots inside the columnar pipeline: {pivots} (plain), {rle_pivots} (RLE)"
    );
    let metrics = vec![
        ("exec_expr_rows".to_string(), rows as f64),
        ("exec_expr_row_ms".to_string(), row_ms),
        ("exec_expr_vec_ms".to_string(), vec_ms),
        ("exec_expr_speedup".to_string(), row_ms / vec_ms.max(0.001)),
        ("exec_expr_rle_row_ms".to_string(), rle_row_ms),
        ("exec_expr_rle_vec_ms".to_string(), rle_vec_ms),
        (
            "exec_expr_rle_speedup".to_string(),
            rle_row_ms / rle_vec_ms.max(0.001),
        ),
        (
            "exec_expr_pipeline_pivots".to_string(),
            (pivots + rle_pivots) as f64,
        ),
    ];
    Ok((out, metrics))
}

/// Morsel-driven parallel execution: a 16-container store scanned +
/// hash-aggregated end to end through the serial typed path and through
/// the parallel subsystem at 1/2/4 lanes, recording speedup-vs-lanes.
/// Results are asserted identical across paths before anything is timed.
pub fn exec_parallel(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::exec_parallel as wl;
    const CONTAINERS: usize = 16;
    let store = wl::build_store(rows, CONTAINERS)?;
    // Correctness first: every lane count must reproduce the serial rows.
    let (serial_rows, _) = wl::run_serial(&store)?;
    for lanes in [1usize, 2, 4] {
        let (par_rows, _) = wl::run_parallel(&store, lanes)?;
        if par_rows != serial_rows {
            return Err(vdb_types::DbError::Execution(format!(
                "parallel group-by at {lanes} lanes diverged from serial"
            )));
        }
    }
    // Best-of-2 per configuration to damp scheduler noise.
    let best = |f: &dyn Fn() -> DbResult<(Vec<vdb_types::Row>, f64)>| -> DbResult<f64> {
        let (_, a) = f()?;
        let (_, b) = f()?;
        Ok(a.min(b))
    };
    let serial_ms = best(&|| wl::run_serial(&store))?;
    let mut lane_ms = Vec::new();
    for lanes in [1usize, 2, 4] {
        lane_ms.push((lanes, best(&|| wl::run_parallel(&store, lanes))?));
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Morsel-parallel scan+group-by over {CONTAINERS} ROS containers ({rows} rows, {cores} core{}) ==",
        if cores == 1 { "" } else { "s" }
    );
    let _ = writeln!(out, "{:<22}{:>12}{:>10}", "Configuration", "ms", "speedup");
    let _ = writeln!(
        out,
        "{:<22}{serial_ms:>12.1}{:>10.2}",
        "serial typed path", 1.0
    );
    let mut metrics = vec![
        ("exec_parallel_rows".to_string(), rows as f64),
        ("exec_parallel_containers".to_string(), CONTAINERS as f64),
        ("exec_parallel_cores".to_string(), cores as f64),
        ("exec_parallel_serial_ms".to_string(), serial_ms),
    ];
    for (lanes, ms) in &lane_ms {
        let speedup = serial_ms / ms.max(0.001);
        let _ = writeln!(
            out,
            "{:<22}{ms:>12.1}{speedup:>10.2}",
            format!("{lanes} lane(s)")
        );
        metrics.push((format!("exec_parallel_ms_{lanes}"), *ms));
        metrics.push((format!("exec_parallel_speedup_{lanes}"), speedup));
    }
    if cores == 1 {
        let _ = writeln!(
            out,
            "note: single-CPU host — lanes cannot overlap, so the speedup shows \
             the subsystem's overhead floor; on multi-core hardware the lanes \
             scale with cores (per-worker partial aggregation is independent)."
        );
    }
    Ok((out, metrics))
}

/// Morsel-parallel partitioned hash join: a 16-container fact store joined
/// to a 4-container dimension store through the serial hash join and
/// through [`vdb_exec::parallel_join::ParallelHashJoinOp`] at 1/2/4 lanes,
/// recording total and build/probe speedup-vs-lanes. Results are asserted
/// identical across paths before anything is timed.
pub fn exec_parallel_join(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::exec_parallel_join as wl;
    const FACT_CONTAINERS: usize = 16;
    const DIM_CONTAINERS: usize = 4;
    let fact = wl::build_fact(rows, FACT_CONTAINERS)?;
    let dim = wl::build_dim(DIM_CONTAINERS)?;
    // Correctness first: every timed lane count — including the inline
    // 1-lane path — must reproduce the serial rows, order included
    // (morsel-ordered concat + seq-sorted build lists).
    let (serial_rows, _) = wl::run_serial(&fact, &dim)?;
    for lanes in [1usize, 2, 4] {
        let (par_rows, _, _) = wl::run_parallel(&fact, &dim, lanes)?;
        if par_rows != serial_rows {
            return Err(vdb_types::DbError::Execution(format!(
                "parallel hash join at {lanes} lanes diverged from serial"
            )));
        }
    }
    // Interleaved best-of-2 per configuration: serial and parallel runs
    // alternate within each trial, so allocator/page-cache drift across
    // the repro run cannot systematically bias one side.
    let mut serial_ms = f64::INFINITY;
    let mut lane_times: Vec<(usize, f64, (f64, f64))> = [1usize, 2, 4]
        .iter()
        .map(|&l| (l, f64::INFINITY, (0.0, 0.0)))
        .collect();
    for _ in 0..2 {
        let (_, ms) = wl::run_serial(&fact, &dim)?;
        serial_ms = serial_ms.min(ms);
        for entry in lane_times.iter_mut() {
            let (_, ms, phases) = wl::run_parallel(&fact, &dim, entry.0)?;
            if ms < entry.1 {
                entry.1 = ms;
                entry.2 = phases;
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Morsel-parallel hash join: {rows}-row fact ({FACT_CONTAINERS} containers) ⋈ \
         {}-row dim ({DIM_CONTAINERS} containers), {cores} core{} ==",
        wl::DIM_KEYS,
        if cores == 1 { "" } else { "s" }
    );
    let _ = writeln!(
        out,
        "{:<22}{:>12}{:>12}{:>12}{:>10}",
        "Configuration", "ms", "build(ms)", "probe(ms)", "speedup"
    );
    let _ = writeln!(
        out,
        "{:<22}{serial_ms:>12.1}{:>12}{:>12}{:>10.2}",
        "serial hash join", "-", "-", 1.0
    );
    let mut metrics = vec![
        ("exec_parallel_join_rows".to_string(), rows as f64),
        ("exec_parallel_join_cores".to_string(), cores as f64),
        ("exec_parallel_join_serial_ms".to_string(), serial_ms),
    ];
    for (lanes, ms, (build_ms, probe_ms)) in &lane_times {
        let speedup = serial_ms / ms.max(0.001);
        let _ = writeln!(
            out,
            "{:<22}{ms:>12.1}{build_ms:>12.1}{probe_ms:>12.1}{speedup:>10.2}",
            format!("{lanes} lane(s)")
        );
        metrics.push((format!("exec_parallel_join_ms_{lanes}"), *ms));
        metrics.push((format!("exec_parallel_join_build_ms_{lanes}"), *build_ms));
        metrics.push((format!("exec_parallel_join_probe_ms_{lanes}"), *probe_ms));
        metrics.push((format!("exec_parallel_join_speedup_{lanes}"), speedup));
    }
    if cores == 1 {
        let _ = writeln!(
            out,
            "note: single-CPU host — lanes cannot overlap, so the speedup shows \
             the subsystem's overhead floor; on multi-core hardware the \
             partitioned build and typed probe scale with cores."
        );
    }
    Ok((out, metrics))
}

/// Compressed-domain execution (§6.1): dictionary-code group-by vs
/// materialized string keys, a narrow-range scan under SMA pruning +
/// selection-pushdown decode vs a full scan, and the FOR/bit-packed and
/// delta-of-delta codec footprints vs Plain. Representations are asserted
/// to agree before anything is timed; the scan's pruning counters are
/// surfaced as metrics.
pub fn exec_compressed(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::exec_compressed as wl;
    // --- dict-code group-by -------------------------------------------
    let dict_rows = wl::run_groupby(wl::dict_batches(rows))?;
    let plain_rows = wl::run_groupby(wl::plain_batches(rows))?;
    if dict_rows != plain_rows {
        return Err(vdb_types::DbError::Execution(
            "dict-coded group-by diverged from materialized keys".into(),
        ));
    }
    // Best-of-2; inputs rebuilt per run so both sides pay construction
    // outside the clock.
    let mut dict_ms = f64::INFINITY;
    let mut plain_ms = f64::INFINITY;
    for _ in 0..2 {
        let batches = wl::plain_batches(rows);
        let t = Instant::now();
        let _ = wl::run_groupby(batches)?;
        plain_ms = plain_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        let batches = wl::dict_batches(rows);
        let t = Instant::now();
        let _ = wl::run_groupby(batches)?;
        dict_ms = dict_ms.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    // --- selection-pushdown scan --------------------------------------
    const CONTAINERS: usize = 8;
    const WIDTH: i64 = 1000;
    let store = wl::build_scan_store(rows, CONTAINERS)?;
    let pred = wl::narrow_predicate(rows as i64 / 2, WIDTH);
    let (n_full, _, _) = wl::run_scan(&store, None)?;
    let (n_sel, _, _) = wl::run_scan(&store, Some(pred.clone()))?;
    if n_full != rows || n_sel != WIDTH as usize {
        return Err(vdb_types::DbError::Execution(format!(
            "scan row counts off: full {n_full}/{rows}, selective {n_sel}/{WIDTH}"
        )));
    }
    let mut full_ms = f64::INFINITY;
    let mut sel_ms = f64::INFINITY;
    let mut sel_stats = vdb_exec::scan::ScanStats::default();
    for _ in 0..2 {
        let (_, ms, _) = wl::run_scan(&store, None)?;
        full_ms = full_ms.min(ms);
        let (_, ms, s) = wl::run_scan(&store, Some(pred.clone()))?;
        if ms < sel_ms {
            sel_ms = ms;
            sel_stats = s;
        }
    }
    // --- codec footprints ---------------------------------------------
    let for_col = wl::for_column(rows);
    let for_ratio = wl::encoded_bytes(&for_col, EncodingType::ForBitPack)? as f64
        / wl::encoded_bytes(&for_col, EncodingType::Plain)?.max(1) as f64;
    let dod_col = wl::dod_column(rows);
    let dod_ratio = wl::encoded_bytes(&dod_col, EncodingType::DeltaDelta)? as f64
        / wl::encoded_bytes(&dod_col, EncodingType::Plain)?.max(1) as f64;
    // --- report --------------------------------------------------------
    let mut out = String::new();
    let _ = writeln!(out, "== Compressed-domain execution ({rows} rows) ==");
    let _ = writeln!(
        out,
        "{:<34}{:>12}{:>12}{:>10}",
        "Stage", "plain(ms)", "coded(ms)", "speedup"
    );
    let _ = writeln!(
        out,
        "{:<34}{plain_ms:>12.1}{dict_ms:>12.1}{:>10.2}",
        format!("group-by {} string keys", wl::KEYS),
        plain_ms / dict_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "{:<34}{full_ms:>12.1}{sel_ms:>12.1}{:>10.2}",
        format!("scan {WIDTH}-row range of {rows}"),
        full_ms / sel_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "selective scan: {} containers pruned, {} blocks pruned, {} rows scanned, \
         {} row-decodes skipped",
        sel_stats.containers_pruned_minmax,
        sel_stats.blocks_pruned,
        sel_stats.rows_scanned,
        sel_stats.rows_decode_skipped
    );
    let _ = writeln!(
        out,
        "codec footprint vs Plain: FOR/bit-pack {:.2}x, delta-of-delta {:.2}x",
        for_ratio, dod_ratio
    );
    let metrics = vec![
        ("exec_compressed_rows".to_string(), rows as f64),
        ("exec_compressed_groupby_plain_ms".to_string(), plain_ms),
        ("exec_compressed_groupby_dict_ms".to_string(), dict_ms),
        (
            "exec_compressed_groupby_speedup".to_string(),
            plain_ms / dict_ms.max(0.001),
        ),
        ("exec_compressed_scan_full_ms".to_string(), full_ms),
        ("exec_compressed_scan_selective_ms".to_string(), sel_ms),
        (
            "exec_compressed_scan_speedup".to_string(),
            full_ms / sel_ms.max(0.001),
        ),
        (
            "scan_containers_pruned_minmax".to_string(),
            sel_stats.containers_pruned_minmax as f64,
        ),
        (
            "scan_blocks_pruned".to_string(),
            sel_stats.blocks_pruned as f64,
        ),
        (
            "scan_rows_scanned".to_string(),
            sel_stats.rows_scanned as f64,
        ),
        (
            "scan_rows_decode_skipped".to_string(),
            sel_stats.rows_decode_skipped as f64,
        ),
        ("exec_compressed_for_ratio".to_string(), for_ratio),
        ("exec_compressed_dod_ratio".to_string(), dod_ratio),
    ];
    Ok((out, metrics))
}

/// Torture smoke: a short trickle-load run (writers + tuple mover + query
/// fire, see `vdb_tests::torture`) that must finish with zero
/// snapshot-isolation violations, reporting sustained ingest throughput
/// and query tail latency under concurrent ingest.
pub fn torture(secs: f64) -> DbResult<(String, Vec<(String, f64)>)> {
    let config = vdb_tests::torture::TortureConfig {
        secs,
        ..vdb_tests::torture::TortureConfig::from_env()
    };
    let report = vdb_tests::torture::run(&config);
    if !report.violations.is_empty() {
        return Err(vdb_types::DbError::Execution(format!(
            "torture run found {} snapshot-isolation violations; first: {}",
            report.violations.len(),
            report.violations[0]
        )));
    }
    let mut out = String::from("== Torture: concurrent ingest under query fire ==\n");
    let _ = writeln!(
        out,
        "{:.1}s, {} writers / {} readers: {} commits ({} rows in, {} deletes), \
         {} queries, 0 violations",
        report.elapsed_secs,
        config.writers,
        config.readers,
        report.commits,
        report.rows_ingested,
        report.deletes,
        report.queries
    );
    let _ = writeln!(
        out,
        "ingest {:.0} rows/s, query p99 {:.2} ms under ingest",
        report.ingest_rows_per_sec, report.query_p99_ms
    );
    let metrics = vec![
        (
            "ingest_rows_per_sec".to_string(),
            report.ingest_rows_per_sec,
        ),
        ("query_p99_under_ingest_ms".to_string(), report.query_p99_ms),
    ];
    Ok((out, metrics))
}

/// Serving-layer smoke: concurrent sessions firing a fixed mix (parallel
/// group-by, selective filter, parallel hash join) at one
/// [`vdb_core::serve::Server`] — plan cache, admission control and the
/// shared morsel pool all in the loop. Served results are asserted equal
/// to direct `Database` execution before anything is timed; the metrics
/// feed CI's serve-smoke gate (p99 bounded at 8 sessions, cache hit rate,
/// pool-reuse counters).
pub fn serve(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::serve as wl;
    const CHUNKS: usize = 8;
    let db = wl::build_db(rows, CHUNKS)?;
    let mix = wl::query_mix();
    // Correctness first: the served path must reproduce direct execution.
    let expected: Vec<Vec<vdb_types::Row>> = mix
        .iter()
        .map(|q| db.query(q))
        .collect::<DbResult<Vec<_>>>()?;
    let server = db.server().clone();
    {
        let session = server.session();
        for (q, want) in mix.iter().zip(&expected) {
            let got = session.query(q)?;
            if &got != want {
                return Err(vdb_types::DbError::Execution(format!(
                    "served result diverged from direct execution for: {q}"
                )));
            }
        }
    }
    let pool = vdb_exec::pool::shared();
    let pool_before = pool.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Serving layer: sessions × (parallel group-by, filter, parallel join) \
         over {rows} rows in {CHUNKS} containers ({} pool workers) ==",
        pool.workers()
    );
    let _ = writeln!(
        out,
        "{:<12}{:>12}{:>12}{:>12}{:>12}",
        "Sessions", "statements", "qps", "p50 ms", "p99 ms"
    );
    let mut metrics: Vec<(String, f64)> = vec![
        ("serve_rows".to_string(), rows as f64),
        ("serve_pool_workers".to_string(), pool.workers() as f64),
    ];
    for sessions in [1usize, 8, 64] {
        // Roughly constant statement budget per phase, so the 64-session
        // phase measures contention, not a larger workload.
        let per_session = (960 / sessions).max(6);
        let phase = wl::run_phase(&server, &mix, sessions, per_session)?;
        let _ = writeln!(
            out,
            "{sessions:<12}{:>12}{:>12.0}{:>12.2}{:>12.2}",
            phase.statements, phase.qps, phase.p50_ms, phase.p99_ms
        );
        metrics.push((format!("serve_qps_{sessions}"), phase.qps));
        metrics.push((format!("serve_p50_ms_{sessions}"), phase.p50_ms));
        metrics.push((format!("serve_p99_ms_{sessions}"), phase.p99_ms));
    }
    let stats = server.stats();
    let pool_after = pool.stats();
    let task_sets = (pool_after.task_sets - pool_before.task_sets) as f64;
    let worker_tasks = (pool_after.tasks_by_workers - pool_before.tasks_by_workers) as f64;
    let spawned = (pool_after.workers_spawned - pool_before.workers_spawned) as f64;
    let _ = writeln!(
        out,
        "plan cache: {:.3} hit rate ({} hits / {} misses, {} invalidations); \
         admission: {} admitted, {} queue rejections",
        stats.cache_hit_rate(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_invalidations,
        stats.admitted,
        stats.queue_rejections
    );
    let _ = writeln!(
        out,
        "shared pool: {task_sets:.0} task sets, {worker_tasks:.0} worker-run tasks, \
         {spawned:.0} threads spawned during the run (persistent workers reused)"
    );
    metrics.push((
        "serve_plan_cache_hit_rate".to_string(),
        stats.cache_hit_rate(),
    ));
    metrics.push(("serve_admitted".to_string(), stats.admitted as f64));
    metrics.push(("serve_pool_task_sets".to_string(), task_sets));
    metrics.push(("serve_pool_tasks_by_workers".to_string(), worker_tasks));
    metrics.push(("serve_pool_workers_spawned".to_string(), spawned));
    Ok((out, metrics))
}

/// Multi-node cluster drill: the same segmented-fact ⋈ resegmented-dim mix
/// on 1 node and on a 4-node K=1 cluster (results asserted identical before
/// anything is timed), then a node kill → buddy-read pass → recovery,
/// recording distributed speedup, degraded latency, recovery time and
/// exchange traffic for CI's cluster-smoke gate.
pub fn cluster(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    use crate::workloads::cluster as wl;
    const NODES: usize = 4;
    let single = wl::build(1, rows)?;
    let clustered = wl::build(NODES, rows)?;
    // Correctness first: distribution must be invisible in the answers.
    let expected = wl::run_mix(&single)?;
    if wl::run_mix(&clustered)? != expected {
        return Err(vdb_types::DbError::Execution(
            "distributed results diverged from single-node execution".into(),
        ));
    }
    // Best-of-2, interleaved so allocator drift cannot bias one side.
    let mut single_ms = f64::INFINITY;
    let mut dist_ms = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let _ = wl::run_mix(&single)?;
        single_ms = single_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        let t = Instant::now();
        let _ = wl::run_mix(&clustered)?;
        dist_ms = dist_ms.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    // Kill a node: the mix must still answer (buddy reads), timed degraded.
    clustered.cluster().fail_node(2);
    if wl::run_mix(&clustered)? != expected {
        return Err(vdb_types::DbError::Execution(
            "buddy reads diverged from single-node execution".into(),
        ));
    }
    let mut degraded_ms = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let _ = wl::run_mix(&clustered)?;
        degraded_ms = degraded_ms.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    // Recover from buddy containers, timed, then prove the recovered node
    // really serves by failing a *different* node and re-running the mix.
    let t = Instant::now();
    let stats = clustered.cluster().recover_node(2)?;
    let recovery_ms = t.elapsed().as_secs_f64() * 1000.0;
    clustered.cluster().fail_node(0);
    if wl::run_mix(&clustered)? != expected {
        return Err(vdb_types::DbError::Execution(
            "post-recovery buddy reads diverged from single-node execution".into(),
        ));
    }
    clustered.cluster().recover_node(0)?;
    let exchange_bytes = clustered.cluster().exchange_bytes_sent();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let speedup = single_ms / dist_ms.max(0.001);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Cluster: {rows}-row fact ⋈ {}-key dim on {NODES} nodes (K=1, {cores} core{}) ==",
        wl::DIM_KEYS,
        if cores == 1 { "" } else { "s" }
    );
    let _ = writeln!(out, "{:<26}{:>12}{:>10}", "Configuration", "ms", "speedup");
    let _ = writeln!(out, "{:<26}{single_ms:>12.1}{:>10.2}", "1 node", 1.0);
    let _ = writeln!(
        out,
        "{:<26}{dist_ms:>12.1}{speedup:>10.2}",
        format!("{NODES} nodes (all up)")
    );
    let _ = writeln!(
        out,
        "{:<26}{degraded_ms:>12.1}{:>10.2}",
        format!("{NODES} nodes (1 down)"),
        single_ms / degraded_ms.max(0.001)
    );
    let _ = writeln!(
        out,
        "node recovery from buddies: {recovery_ms:.1} ms ({} projections); \
         exchange traffic: {exchange_bytes} bytes",
        stats.projections_recovered
    );
    if cores == 1 {
        let _ = writeln!(
            out,
            "note: single-CPU host — node-local plans cannot overlap, so the \
             distributed run shows the simulation's overhead floor; on \
             multi-core hardware the per-node partials run concurrently."
        );
    }
    let metrics = vec![
        ("cluster_rows".to_string(), rows as f64),
        ("cluster_nodes".to_string(), NODES as f64),
        ("cluster_cores".to_string(), cores as f64),
        ("cluster_single_ms".to_string(), single_ms),
        ("cluster_dist_ms".to_string(), dist_ms),
        ("cluster_distributed_speedup".to_string(), speedup),
        ("cluster_degraded_ms".to_string(), degraded_ms),
        ("cluster_recovery_ms".to_string(), recovery_ms),
        (
            "cluster_projections_recovered".to_string(),
            stats.projections_recovered as f64,
        ),
        ("cluster_exchange_bytes".to_string(), exchange_bytes as f64),
    ];
    Ok((out, metrics))
}

/// Trace-driven automatic physical design (§6.3 closed-loop): a ts-sorted
/// table answers a hot metric-filtered mix through serving sessions (the
/// traffic populates the query trace), then [`vdb_core::Database::auto_design`]
/// enumerates / costs / deploys projections online and the same mix re-runs.
/// Results are asserted identical before anything is compared; the measured
/// `design_speedup` feeds CI's bench-smoke gate.
pub fn design(rows: usize) -> DbResult<(String, Vec<(String, f64)>)> {
    const METRICS: i64 = 300;
    let engine = vdb_core::Engine::builder().open()?;
    engine.execute("CREATE TABLE m (metric INT, meter INT, ts INT, value INT)")?;
    // The seed design is time-ordered — right for ingest, wrong for the
    // metric-filtered workload below.
    engine.execute(
        "CREATE PROJECTION m_super AS SELECT metric, meter, ts, value FROM m \
         ORDER BY ts SEGMENTED BY HASH(meter) ALL NODES",
    )?;
    let data: Vec<vdb_types::Row> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Integer(i % METRICS),
                Value::Integer(i % 2000),
                Value::Integer(1_330_000_000 + i),
                Value::Integer(i % 977),
            ]
        })
        .collect();
    engine.load("m", &data)?;
    let mix = [
        "SELECT meter, value FROM m WHERE metric = 7",
        "SELECT meter, value FROM m WHERE metric = 113",
        "SELECT COUNT(*) FROM m WHERE metric = 42",
        "SELECT metric, SUM(value) FROM m WHERE metric = 251 GROUP BY metric",
    ];
    let session = engine.session();
    let run_mix = |session: &vdb_core::Session| -> DbResult<Vec<Vec<vdb_types::Row>>> {
        mix.iter()
            .map(|q| {
                let mut rows = session.query(q)?;
                rows.sort();
                Ok(rows)
            })
            .collect()
    };
    let time_mix = |session: &vdb_core::Session| -> DbResult<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for q in &mix {
                let _ = session.query(q)?;
            }
            best = best.min(t.elapsed().as_secs_f64() * 1000.0);
        }
        Ok(best)
    };
    // Warm pass collects expected results and seeds the trace; the timed
    // passes add hits (every execution is traced, timed or not).
    let expected = run_mix(&session)?;
    let before_ms = time_mix(&session)?;
    let report = engine.auto_design(vdb_core::DesignPolicy::QueryOptimized)?;
    if report.installed.is_empty() {
        return Err(vdb_types::DbError::Execution(format!(
            "auto_design installed nothing from {} traced statements",
            report.traced_statements
        )));
    }
    // One untimed pass replans through the invalidated cache (both timed
    // sides then run warm-cache), and proves the answers are unchanged.
    if run_mix(&session)? != expected {
        return Err(vdb_types::DbError::Execution(
            "auto-designed projections changed query results".into(),
        ));
    }
    let after_ms = time_mix(&session)?;
    let speedup = before_ms / after_ms.max(0.001);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Automatic physical design: trace → enumerate → cost → deploy ({rows} rows) =="
    );
    let _ = writeln!(
        out,
        "{} traced statements; {} projection(s) installed online:",
        report.traced_statements,
        report.installed.len()
    );
    for p in &report.installed {
        let _ = writeln!(
            out,
            "  {} (predicted {:.1}x): {}",
            p.name, p.predicted_speedup, p.rationale
        );
    }
    let _ = writeln!(
        out,
        "hot mix ({} statements): before {before_ms:.1} ms, after {after_ms:.1} ms, \
         speedup {speedup:.2}x",
        mix.len()
    );
    let metrics = vec![
        ("design_rows".to_string(), rows as f64),
        (
            "design_traced_statements".to_string(),
            report.traced_statements as f64,
        ),
        (
            "design_projections_installed".to_string(),
            report.installed.len() as f64,
        ),
        ("design_before_ms".to_string(), before_ms),
        ("design_after_ms".to_string(), after_ms),
        ("design_speedup".to_string(), speedup),
    ];
    Ok((out, metrics))
}

/// Render a flat `name → number` map plus per-section wall-clock timings as
/// the `BENCH_repro.json` document (hand-rolled; no serializer dependency).
pub fn bench_json(sections: &[(String, f64)], metrics: &[(String, f64)]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::from("{\n  \"sections\": [\n");
    for (i, (name, ms)) in sections.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{name}\", \"wall_ms\": {}}}{}",
            num(*ms),
            if i + 1 < sections.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n  \"metrics\": {\n");
    for (i, (name, v)) in metrics.iter().enumerate() {
        let _ = writeln!(
            s,
            "    \"{name}\": {}{}",
            num(*v),
            if i + 1 < metrics.len() { "," } else { "" }
        );
    }
    s.push_str("  }\n}\n");
    s
}

/// Meter-data generator parameters scaled to a row budget, preserving the
/// paper's samples-per-series ratio.
pub fn scaled_meter_config(target_rows: usize) -> meter::MeterConfig {
    let per_series = 300usize;
    let series = (target_rows / per_series).max(1);
    // Keep the paper's ~1:7 metric:meter ratio.
    let n_metrics = ((series as f64 / 7.0).sqrt().ceil() as i64).max(1);
    let n_meters = (series as i64 / n_metrics).max(1);
    meter::MeterConfig {
        n_metrics,
        n_meters,
        seed: 2012,
    }
}

/// Figure 1: a table with a super projection and a narrow (cust, price)
/// projection; shows the physical designs and the narrow-scan advantage.
pub fn figure1(rows: usize) -> DbResult<String> {
    let db = vdb_core::Engine::builder().open()?;
    db.execute("CREATE TABLE sales (sale_id INT, cust VARCHAR, price FLOAT, date TIMESTAMP)")?;
    db.execute(
        "CREATE PROJECTION sales_super AS SELECT sale_id, cust, price, date FROM sales \
         ORDER BY date SEGMENTED BY HASH(sale_id) ALL NODES",
    )?;
    db.execute(
        "CREATE PROJECTION sales_cust_price AS SELECT cust, price FROM sales \
         ORDER BY cust SEGMENTED BY HASH(cust) ALL NODES",
    )?;
    let mut data = Vec::with_capacity(rows);
    for i in 0..rows as i64 {
        data.push(vec![
            Value::Integer(i),
            Value::Varchar(format!("cust{}", i % 97)),
            Value::Float((i % 1000) as f64 / 10.0),
            Value::Timestamp(1_330_000_000 + i * 60),
        ]);
    }
    db.load("sales", &data)?;
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 1: tables vs projections ({rows} rows) ==");
    for fam in ["sales_super", "sales_cust_price"] {
        let def = db.cluster().family_def(fam).unwrap();
        let _ = writeln!(out, "{}", def.describe());
    }
    // The narrow projection answers cust/price queries with less I/O: the
    // optimizer picks it automatically.
    let explain = db.execute("EXPLAIN SELECT cust, SUM(price) FROM sales GROUP BY cust")?;
    let text: String = explain.rows.iter().map(|r| format!("{}\n", r[0])).collect();
    let _ = writeln!(out, "\nplan for SELECT cust, SUM(price) ... GROUP BY cust:");
    out.push_str(&text);
    assert!(
        text.contains("sales_cust_price"),
        "optimizer should pick the narrow projection: {text}"
    );
    let t = Instant::now();
    db.query("SELECT cust, SUM(price) FROM sales GROUP BY cust")?;
    let narrow_ms = t.elapsed().as_secs_f64() * 1000.0;
    let t = Instant::now();
    db.query("SELECT date, COUNT(*) FROM sales GROUP BY date LIMIT 5")?;
    let super_ms = t.elapsed().as_secs_f64() * 1000.0;
    let _ = writeln!(
        out,
        "narrow-projection aggregate: {narrow_ms:.1} ms; super-projection scan: {super_ms:.1} ms"
    );
    Ok(out)
}

/// Figure 2: physical storage layout (partitions × local segments ×
/// containers × files) plus partition-pruned vs full scans.
pub fn figure2(rows_per_month: usize) -> DbResult<String> {
    use vdb_storage::partition::PartitionSpec;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema};

    let schema = TableSchema::new(
        "sales",
        vec![
            ColumnDef::new("cid", DataType::Integer),
            ColumnDef::new("ts", DataType::Timestamp),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "sales_b0", &[1], &[0]);
    let spec = PartitionSpec::by_year_month(1, "ts");
    let mut store =
        ProjectionStore::new(def, Some(spec), 3, std::sync::Arc::new(MemBackend::new()));
    let mut rows: Vec<Row> = Vec::new();
    for m in 3..=6u32 {
        for d in 0..rows_per_month as i64 {
            rows.push(vec![
                Value::Integer(d * 7919 % 100_000),
                Value::Timestamp(vdb_types::date::timestamp_from_civil(
                    2012,
                    m,
                    1 + (d % 27) as u32,
                    0,
                    0,
                    0,
                )),
            ]);
        }
    }
    store.insert_direct_ros(rows, Epoch(1))?;
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 2: physical storage layout ==");
    out.push_str(&vdb_storage::layout::render(&store));
    // Partition pruning: scan April only.
    let april = vdb_types::Expr::eq(vdb_types::Expr::col(0, "pk"), vdb_types::Expr::int(201_204));
    let snap = store.scan_snapshot(Epoch(1));
    let mut pruned_scan = vdb_exec::scan::ScanOperator::new(
        store.backend().clone(),
        snap.containers.clone(),
        vec![],
        vec![0, 1],
        None,
        Some(april),
        vec![],
    );
    let stats = pruned_scan.stats();
    let pruned_rows = vdb_exec::operator::collect_rows(&mut pruned_scan)?.len();
    let s = stats.lock().clone();
    let _ = writeln!(
        out,
        "scan of partition 201204: {pruned_rows} rows; containers pruned {}/{} \
         (rows touched {} of {})",
        s.containers_pruned_partition,
        s.containers_total,
        s.rows_scanned,
        4 * rows_per_month
    );
    Ok(out)
}

/// Figure 3: the multi-threaded pipelined plan — EXPLAIN rendering plus a
/// 1-lane vs N-lane prepass timing: parallel partial GroupBys over
/// non-overlapping input slices (the StorageUnion thread-per-container
/// pattern) merged by a final GroupBy, exactly the prepass/final split the
/// figure shows.
pub fn figure3(rows: usize) -> DbResult<String> {
    use vdb_exec::aggregate::{AggCall, AggFunc};
    use vdb_exec::exchange::ParallelUnionOp;
    use vdb_exec::filter::ProjectOp;
    use vdb_exec::groupby::{two_phase_aggs, HashGroupByOp};
    use vdb_exec::operator::{collect_rows, BoxedOperator, ValuesOp};
    use vdb_exec::MemoryBudget;

    let db = vdb_core::Engine::builder().open()?;
    db.execute("CREATE TABLE t (g INT, v INT)")?;
    db.execute(
        "CREATE PROJECTION t_super AS SELECT g, v FROM t ORDER BY g \
         SEGMENTED BY HASH(v) ALL NODES",
    )?;
    db.execute("INSERT INTO t VALUES (1, 1)")?;
    let explain = db.execute("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM t WHERE v > 0 GROUP BY g")?;
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 3: pipelined multi-threaded plan ==");
    for r in &explain.rows {
        let _ = writeln!(out, "{}", r[0]);
    }
    // ParallelUnion scaling: each lane runs a *prepass* GroupBy over a
    // non-overlapping slice of the input (one thread per ROS container in
    // the figure); a final GroupBy merges the partials.
    let data: Vec<vdb_types::Row> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Integer(i % 1000),
                Value::Integer(i),
                Value::Float((i % 977) as f64),
            ]
        })
        .collect();
    let aggs = vec![
        AggCall::new(AggFunc::CountStar, 0, "cnt"),
        AggCall::new(AggFunc::Sum, 1, "sum"),
        AggCall::new(AggFunc::Min, 2, "min"),
        AggCall::new(AggFunc::Max, 2, "max"),
        AggCall::new(AggFunc::Avg, 2, "avg"),
    ];
    let run = |lanes: usize, data: &[vdb_types::Row]| -> DbResult<f64> {
        let (partial, final_aggs, project) = two_phase_aggs(1, &aggs).unwrap();
        // Materialize per-lane batches up front (reading containers is the
        // storage layer's job; this times the aggregation pipeline).
        let chunk = data.len().div_ceil(lanes);
        let lanes_batches: Vec<Vec<vdb_exec::Batch>> = data
            .chunks(chunk)
            .map(|slice| {
                slice
                    .chunks(1024)
                    .map(|c| vdb_exec::Batch::from_rows(c.to_vec()))
                    .collect()
            })
            .collect();
        let t = Instant::now();
        let children: Vec<BoxedOperator> = lanes_batches
            .into_iter()
            .map(|batches| {
                // Lane partials are computed on worker threads; group
                // columns stay [0] so partials merge exactly.
                Box::new(HashGroupByOp::new(
                    Box::new(ValuesOp::new(batches)),
                    vec![0],
                    partial.clone(),
                    MemoryBudget::unlimited(),
                )) as BoxedOperator
            })
            .collect();
        let union = ParallelUnionOp::new(children);
        let final_gb = HashGroupByOp::new(
            Box::new(union),
            vec![0],
            final_aggs.clone(),
            MemoryBudget::unlimited(),
        );
        let mut proj = ProjectOp::new(Box::new(final_gb), project.clone());
        let n = collect_rows(&mut proj)?.len();
        assert_eq!(n, 1000);
        Ok(t.elapsed().as_secs_f64() * 1000.0)
    };
    let ms1 = run(1, &data)?;
    let ms4 = run(4, &data)?;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let _ = writeln!(
        out,
        "parallel prepass GroupBy over {rows} rows: 1 lane {ms1:.1} ms, 4 lanes {ms4:.1} ms \
         (speedup {:.2}x on {cores} core{})",
        ms1 / ms4.max(0.001),
        if cores == 1 { "" } else { "s" }
    );
    if cores == 1 {
        let _ = writeln!(
            out,
            "note: this host exposes a single CPU, so lanes cannot overlap; the \
             measurement shows the parallel infrastructure adds no overhead. On \
             multi-core hardware the lanes scale with cores (per-lane work is \
             independent partial aggregation)."
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_2_renders() {
        let t = table1_2();
        assert!(t.contains("Compatibility"));
        assert!(t.lines().count() > 16);
    }

    #[test]
    fn table3_small_scale_shape_holds() {
        let out = table3(20_000).unwrap();
        assert!(out.contains("Total"), "{out}");
        assert!(out.contains("Disk"), "{out}");
        // Disk shape: C-Store must need more bytes than Vertica.
        let line = out.lines().find(|l| l.starts_with("Disk")).unwrap();
        let ratio: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(ratio > 1.2, "C-Store should need >1.2x disk, got {ratio}");
    }

    #[test]
    fn table4_small_scale_shape_holds() {
        let out = table4(50_000, 50_000).unwrap();
        // Vertica must beat gzip on both datasets (the experiment's point).
        assert!(out.contains("Vertica"), "{out}");
        for section in out.split("== Table") {
            if !section.contains("Vertica") {
                continue;
            }
            let bytes_of = |name: &str| -> f64 {
                section
                    .lines()
                    .find(|l| l.starts_with(name))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(f64::NAN)
            };
            let gz = bytes_of("gzip-class");
            let v = bytes_of("Vertica");
            assert!(
                v < gz,
                "Vertica ({v}) must beat gzip-class ({gz}) in section: {section}"
            );
        }
    }

    #[test]
    fn figure1_uses_narrow_projection() {
        let out = figure1(20_000).unwrap();
        assert!(out.contains("sales_cust_price"));
    }

    #[test]
    fn figure2_prunes_partitions() {
        let out = figure2(500).unwrap();
        assert!(out.contains("partition 201203"), "{out}");
        assert!(out.contains("containers pruned"), "{out}");
        // 3 of 4 partitions pruned × 3 local segments = 9 containers.
        assert!(out.contains("containers pruned 9/12"), "{out}");
    }

    #[test]
    fn exec_expr_reports_speedups_and_zero_pivots() {
        let (out, metrics) = exec_expr(60_000).unwrap();
        assert!(out.contains("Vectorized expressions"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("exec_expr_rows"), 60_000.0);
        assert!(get("exec_expr_row_ms") > 0.0);
        assert!(get("exec_expr_vec_ms") > 0.0);
        assert!(get("exec_expr_speedup") > 0.0);
        assert_eq!(get("exec_expr_pipeline_pivots"), 0.0);
    }

    #[test]
    fn exec_parallel_reports_speedups() {
        let (out, metrics) = exec_parallel(60_000).unwrap();
        assert!(out.contains("serial typed path"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("exec_parallel_rows"), 60_000.0);
        assert!(get("exec_parallel_serial_ms") > 0.0);
        assert!(get("exec_parallel_speedup_4") > 0.0);
    }

    #[test]
    fn exec_parallel_join_reports_speedups() {
        let (out, metrics) = exec_parallel_join(40_000).unwrap();
        assert!(out.contains("serial hash join"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("exec_parallel_join_rows"), 40_000.0);
        assert!(get("exec_parallel_join_serial_ms") > 0.0);
        assert!(get("exec_parallel_join_speedup_4") > 0.0);
        assert!(get("exec_parallel_join_build_ms_4") >= 0.0);
        assert!(get("exec_parallel_join_probe_ms_4") >= 0.0);
    }

    #[test]
    fn exec_compressed_reports_speedups_and_pruning() {
        let (out, metrics) = exec_compressed(40_000).unwrap();
        assert!(out.contains("Compressed-domain execution"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("exec_compressed_rows"), 40_000.0);
        assert!(get("exec_compressed_groupby_speedup") > 0.0);
        assert!(get("exec_compressed_scan_speedup") > 0.0);
        assert!(get("scan_blocks_pruned") > 0.0);
        assert!(get("scan_rows_decode_skipped") > 0.0);
        assert!(get("exec_compressed_for_ratio") <= 0.5);
        assert!(get("exec_compressed_dod_ratio") <= 0.5);
    }

    #[test]
    fn cluster_reports_speedup_and_recovery() {
        let (out, metrics) = cluster(20_000).unwrap();
        assert!(out.contains("node recovery from buddies"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("cluster_rows"), 20_000.0);
        assert_eq!(get("cluster_nodes"), 4.0);
        assert!(get("cluster_distributed_speedup") > 0.0);
        assert!(get("cluster_recovery_ms") > 0.0);
        assert!(get("cluster_projections_recovered") >= 1.0);
        assert!(get("cluster_exchange_bytes") > 0.0);
    }

    #[test]
    fn design_reports_speedup_and_installs() {
        let (out, metrics) = design(40_000).unwrap();
        assert!(out.contains("Automatic physical design"), "{out}");
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("design_rows"), 40_000.0);
        assert!(get("design_traced_statements") >= 4.0);
        assert!(get("design_projections_installed") >= 1.0);
        assert!(
            get("design_speedup") > 1.0,
            "design must pay for itself: {out}"
        );
    }

    #[test]
    fn figure3_parallel_plan() {
        let out = figure3(100_000).unwrap();
        assert!(out.contains("GroupBy"), "{out}");
        assert!(out.contains("speedup"), "{out}");
    }
}
