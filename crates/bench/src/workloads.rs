//! Workload generators.

pub mod cstore7;
pub mod meter;
pub mod random_ints;
