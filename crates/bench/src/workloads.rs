//! Workload generators.

pub mod cluster;
pub mod cstore7;
pub mod exec_compressed;
pub mod exec_expr;
pub mod exec_parallel;
pub mod exec_parallel_join;
pub mod exec_vector;
pub mod meter;
pub mod random_ints;
pub mod serve;
