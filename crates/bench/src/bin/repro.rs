//! `repro` — print the reproduction of every table and figure, and write
//! `BENCH_repro.json` (section wall-clock timings + executor metrics) so
//! the perf trajectory is tracked run over run.
//!
//! Usage: `repro [all|table1|table3|table4|fig1|fig2|fig3|vector|exec_expr|exec_parallel|exec_parallel_join|exec_compressed|cluster|torture|serve|design] [--full]`
//! `--full` runs paper-scale inputs (minutes); default scales finish in
//! seconds. The JSON lands in the current directory. Exits nonzero when
//! any requested target fails (CI's bench-smoke gate relies on this).

use std::time::Instant;
use vdb_bench::repro;

type TargetResult = Result<(String, Vec<(String, f64)>), vdb_types::DbError>;

/// Lift a text-only harness into the `(report, metrics)` shape.
fn plain(r: Result<String, vdb_types::DbError>) -> TargetResult {
    r.map(|text| (text, Vec::new()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let (li_rows, ints, meter_rows, fig_rows) = if full {
        (6_000_000, 1_000_000, 10_000_000, 2_000_000)
    } else {
        (600_000, 1_000_000, 2_000_000, 200_000)
    };
    let vector_rows = if full { 4_000_000 } else { 1_000_000 };
    let parallel_rows = if full { 4_000_000 } else { 1_000_000 };
    let mut sections: Vec<(String, f64)> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut failed = false;
    let mut matched = false;
    {
        let mut run = |name: &str, f: &mut dyn FnMut() -> TargetResult| {
            matched = true;
            let t = Instant::now();
            match f() {
                Ok((text, m)) => {
                    sections.push((name.to_string(), t.elapsed().as_secs_f64() * 1000.0));
                    metrics.extend(m);
                    println!("{text}");
                }
                Err(e) => {
                    failed = true;
                    eprintln!("{name} failed: {e}");
                }
            }
        };
        let wants = |name: &str| what == "all" || what == name;
        if what == "table1" || what == "table2" || what == "all" {
            run("table1_2", &mut || plain(Ok(repro::table1_2())));
        }
        if wants("table3") {
            run("table3", &mut || plain(repro::table3(li_rows)));
        }
        if wants("table4") {
            run("table4", &mut || plain(repro::table4(ints, meter_rows)));
        }
        if wants("fig1") {
            run("fig1", &mut || plain(repro::figure1(fig_rows)));
        }
        if wants("fig2") {
            run("fig2", &mut || plain(repro::figure2(fig_rows / 20)));
        }
        if wants("fig3") {
            run("fig3", &mut || plain(repro::figure3(fig_rows * 5)));
        }
        if wants("vector") {
            run("exec_vector", &mut || repro::exec_vector(vector_rows));
        }
        if wants("exec_expr") {
            run("exec_expr", &mut || repro::exec_expr(vector_rows));
        }
        if wants("exec_parallel") {
            run("exec_parallel", &mut || repro::exec_parallel(parallel_rows));
        }
        if wants("exec_parallel_join") {
            run("exec_parallel_join", &mut || {
                repro::exec_parallel_join(parallel_rows)
            });
        }
        if wants("exec_compressed") {
            run("exec_compressed", &mut || {
                repro::exec_compressed(vector_rows)
            });
        }
        if wants("cluster") {
            let cluster_rows = if full { 1_000_000 } else { 120_000 };
            run("cluster", &mut || repro::cluster(cluster_rows));
        }
        if wants("torture") {
            let torture_secs = if full { 10.0 } else { 2.0 };
            run("torture", &mut || repro::torture(torture_secs));
        }
        if wants("serve") {
            let serve_rows = if full { 400_000 } else { 80_000 };
            run("serve", &mut || repro::serve(serve_rows));
        }
        if wants("design") {
            run("design", &mut || repro::design(fig_rows));
        }
    }
    if !matched {
        eprintln!(
            "unknown target {what}; use all|table1|table3|table4|fig1|fig2|fig3|vector|\
             exec_expr|exec_parallel|exec_parallel_join|exec_compressed|cluster|torture|serve|\
             design"
        );
        std::process::exit(2);
    }
    let json = repro::bench_json(&sections, &metrics);
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_repro.json ({} sections)", sections.len()),
        Err(e) => {
            // CI's bench-smoke gate reads this file; a stale checked-in
            // copy must not pass for a fresh run.
            failed = true;
            eprintln!("could not write BENCH_repro.json: {e}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
