//! `repro` — print the reproduction of every table and figure.
//!
//! Usage: `repro [all|table1|table3|table4|fig1|fig2|fig3] [--full]`
//! `--full` runs paper-scale inputs (minutes); default scales finish in
//! seconds.

use vdb_bench::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let (li_rows, ints, meter_rows, fig_rows) = if full {
        (6_000_000, 1_000_000, 10_000_000, 2_000_000)
    } else {
        (600_000, 1_000_000, 2_000_000, 200_000)
    };
    let run = |name: &str, text: Result<String, vdb_types::DbError>| match text {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("{name} failed: {e}"),
    };
    match what {
        "table1" | "table2" => println!("{}", repro::table1_2()),
        "table3" => run("table3", repro::table3(li_rows)),
        "table4" => run("table4", repro::table4(ints, meter_rows)),
        "fig1" => run("fig1", repro::figure1(fig_rows)),
        "fig2" => run("fig2", repro::figure2(fig_rows / 20)),
        "fig3" => run("fig3", repro::figure3(fig_rows * 5)),
        "all" => {
            println!("{}", repro::table1_2());
            run("table3", repro::table3(li_rows));
            run("table4", repro::table4(ints, meter_rows));
            run("fig1", repro::figure1(fig_rows));
            run("fig2", repro::figure2(fig_rows / 20));
            run("fig3", repro::figure3(fig_rows * 5));
        }
        other => {
            eprintln!("unknown target {other}; use all|table1|table3|table4|fig1|fig2|fig3");
            std::process::exit(2);
        }
    }
}
