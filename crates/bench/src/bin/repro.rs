//! `repro` — print the reproduction of every table and figure, and write
//! `BENCH_repro.json` (section wall-clock timings + executor metrics) so
//! the perf trajectory is tracked run over run.
//!
//! Usage: `repro [all|table1|table3|table4|fig1|fig2|fig3|vector] [--full]`
//! `--full` runs paper-scale inputs (minutes); default scales finish in
//! seconds. The JSON lands in the current directory.

use std::time::Instant;
use vdb_bench::repro;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let (li_rows, ints, meter_rows, fig_rows) = if full {
        (6_000_000, 1_000_000, 10_000_000, 2_000_000)
    } else {
        (600_000, 1_000_000, 2_000_000, 200_000)
    };
    let vector_rows = if full { 4_000_000 } else { 1_000_000 };
    let mut sections: Vec<(String, f64)> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut run = |name: &str, f: &mut dyn FnMut() -> Result<String, vdb_types::DbError>| {
        let t = Instant::now();
        match f() {
            Ok(text) => {
                sections.push((name.to_string(), t.elapsed().as_secs_f64() * 1000.0));
                println!("{text}");
            }
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    };
    let wants = |name: &str| what == "all" || what == name;
    let mut matched = false;
    if what == "table1" || what == "table2" || what == "all" {
        matched = true;
        run("table1_2", &mut || Ok(repro::table1_2()));
    }
    if wants("table3") {
        matched = true;
        run("table3", &mut || repro::table3(li_rows));
    }
    if wants("table4") {
        matched = true;
        run("table4", &mut || repro::table4(ints, meter_rows));
    }
    if wants("fig1") {
        matched = true;
        run("fig1", &mut || repro::figure1(fig_rows));
    }
    if wants("fig2") {
        matched = true;
        run("fig2", &mut || repro::figure2(fig_rows / 20));
    }
    if wants("fig3") {
        matched = true;
        run("fig3", &mut || repro::figure3(fig_rows * 5));
    }
    if wants("vector") {
        matched = true;
        let t = Instant::now();
        match repro::exec_vector(vector_rows) {
            Ok((text, m)) => {
                sections.push(("exec_vector".into(), t.elapsed().as_secs_f64() * 1000.0));
                metrics.extend(m);
                println!("{text}");
            }
            Err(e) => eprintln!("vector failed: {e}"),
        }
    }
    if !matched {
        eprintln!("unknown target {what}; use all|table1|table3|table4|fig1|fig2|fig3|vector");
        std::process::exit(2);
    }
    let json = repro::bench_json(&sections, &metrics);
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_repro.json ({} sections)", sections.len()),
        Err(e) => eprintln!("could not write BENCH_repro.json: {e}"),
    }
}
