//! Table 3: Vertica vs the C-Store baseline on the seven-query harness.
//! Prints the full reproduction table once, then benches each query pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdb_bench::workloads::cstore7;

fn bench(c: &mut Criterion) {
    // Printed reproduction at a moderate scale.
    println!("{}", vdb_bench::repro::table3(200_000).unwrap());

    // Criterion timing at a CI-friendly scale.
    let (li, ord) = cstore7::generate(60_000, 7);
    let vertica = cstore7::setup_vertica(&li, &ord).unwrap();
    let cstore = cstore7::setup_cstore(li, ord).unwrap();
    let consts = cstore7::constants();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for q in 1..=7usize {
        g.bench_with_input(BenchmarkId::new("cstore", q), &q, |b, &q| {
            b.iter(|| cstore7::run_cstore(&cstore, q, &consts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vertica", q), &q, |b, &q| {
            b.iter(|| vertica.query(&cstore7::vertica_sql(q, &consts)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
