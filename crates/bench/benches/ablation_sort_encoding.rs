//! Ablation: sorted vs unsorted encoding effectiveness (§3.4: "the same
//! encoding schemes in Vertica are often far more effective than in other
//! systems because of Vertica's sorted physical storage"). Encodes the
//! identical low-cardinality column sorted and unsorted, reporting sizes
//! and timing the encode.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vdb_encoding::{ColumnWriter, EncodingType};
use vdb_types::Value;

fn bench(c: &mut Criterion) {
    let n = 500_000;
    let sorted: Vec<Value> = (0..n).map(|i| Value::Integer(i / 1000)).collect();
    let mut shuffled = sorted.clone();
    shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(9));
    let size_of = |vals: &[Value]| {
        let mut w = ColumnWriter::new(EncodingType::Auto);
        w.extend(vals.iter().cloned());
        let (d, i) = w.finish();
        d.len() + i.encode().len()
    };
    let s_sorted = size_of(&sorted);
    let s_shuffled = size_of(&shuffled);
    println!(
        "== ablation: sorted vs unsorted encoding ==\n\
         sorted:   {s_sorted} bytes ({:.3} B/row)\n\
         unsorted: {s_shuffled} bytes ({:.3} B/row)\n\
         sorting buys {:.0}x",
        s_sorted as f64 / n as f64,
        s_shuffled as f64 / n as f64,
        s_shuffled as f64 / s_sorted as f64
    );
    assert!(s_sorted * 10 < s_shuffled, "sorting must dominate");
    let mut g = c.benchmark_group("ablation_sort_encoding");
    g.sample_size(10);
    g.bench_function("encode_sorted", |b| b.iter(|| size_of(&sorted)));
    g.bench_function("encode_unsorted", |b| b.iter(|| size_of(&shuffled)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
