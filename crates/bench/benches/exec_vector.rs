//! Typed vectors + selection vectors vs the pre-refactor row path:
//! filter → group-by → SUM over plain and RLE-heavy batches.
//!
//! `typed_*` runs the vectorized FilterOp (selection vectors, native
//! buffers) into the hash group-by's column accessors; `row_*` pivots every
//! batch into `Vec<Value>` rows and evaluates per row, which is what the
//! engine did before the typed vector layer.

use criterion::{criterion_group, criterion_main, Criterion};
use vdb_bench::workloads::exec_vector::{
    half_predicate, plain_batches, rle_batches, rle_expanded_batches, run_filter_groupby,
    run_pipelined, run_row_baseline, typed_batches, GROUPS,
};

const ROWS: usize = 1_000_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_vector");
    g.sample_size(10);
    g.bench_function("typed_filter_groupby", |b| {
        b.iter_batched(
            || typed_batches(ROWS),
            |batches| {
                let groups = run_filter_groupby(batches, half_predicate(ROWS)).unwrap();
                assert_eq!(groups, GROUPS as usize);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("row_filter_groupby", |b| {
        b.iter_batched(
            || plain_batches(ROWS),
            |batches| {
                let groups = run_row_baseline(batches, half_predicate(ROWS)).unwrap();
                assert_eq!(groups, GROUPS as usize);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("typed_rle_pipelined", |b| {
        b.iter_batched(
            || rle_batches(ROWS),
            |batches| {
                let (_, encoded) = run_pipelined(batches).unwrap();
                assert_eq!(encoded, ROWS as u64, "all rows via run math");
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("row_rle_pipelined", |b| {
        b.iter_batched(
            || rle_expanded_batches(ROWS),
            |batches| {
                let (_, encoded) = run_pipelined(batches).unwrap();
                assert_eq!(encoded, 0, "expanded input leaves no run math");
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
