//! Figure 3: the multi-threaded pipelined plan. Benches the resegmenting
//! ParallelUnion GroupBy at 1, 2 and 4 lanes, plus the prepass two-phase
//! plan against a single-phase hash aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_exec::exchange::parallel_segmented;
use vdb_exec::filter::ProjectOp;
use vdb_exec::groupby::{two_phase_aggs, HashGroupByOp, PrepassGroupByOp, PREPASS_GROUPS};
use vdb_exec::operator::{collect_rows, BoxedOperator, ValuesOp};
use vdb_exec::MemoryBudget;
use vdb_types::{Row, Value};

fn data(n: i64, groups: i64) -> Vec<Row> {
    (0..n)
        .map(|i| vec![Value::Integer(i % groups), Value::Integer(i)])
        .collect()
}

fn aggs() -> Vec<AggCall> {
    vec![
        AggCall::new(AggFunc::CountStar, 0, "cnt"),
        AggCall::new(AggFunc::Sum, 1, "sum"),
    ]
}

fn bench(c: &mut Criterion) {
    println!("{}", vdb_bench::repro::figure3(500_000).unwrap());
    let rows = data(300_000, 512);
    let mut g = c.benchmark_group("fig3_parallelism");
    g.sample_size(10);
    for lanes in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("lanes", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let mut op = parallel_segmented(
                    Box::new(ValuesOp::from_rows(rows.clone())) as BoxedOperator,
                    vec![0],
                    lanes,
                    |lane| {
                        Box::new(HashGroupByOp::new(
                            lane,
                            vec![0],
                            aggs(),
                            MemoryBudget::unlimited(),
                        ))
                    },
                );
                assert_eq!(collect_rows(&mut op).unwrap().len(), 512);
            })
        });
    }
    // Prepass (two-phase) vs single-phase.
    g.bench_function("prepass_two_phase", |b| {
        b.iter(|| {
            let (partial, final_aggs, project) = two_phase_aggs(1, &aggs()).unwrap();
            let prepass = PrepassGroupByOp::new(
                Box::new(ValuesOp::from_rows(rows.clone())),
                vec![0],
                partial,
                PREPASS_GROUPS,
            );
            let final_gb = HashGroupByOp::new(
                Box::new(prepass),
                vec![0],
                final_aggs,
                MemoryBudget::unlimited(),
            );
            let mut proj = ProjectOp::new(Box::new(final_gb), project);
            assert_eq!(collect_rows(&mut proj).unwrap().len(), 512);
        })
    });
    g.bench_function("single_phase_hash", |b| {
        b.iter(|| {
            let mut op = HashGroupByOp::new(
                Box::new(ValuesOp::from_rows(rows.clone())),
                vec![0],
                aggs(),
                MemoryBudget::unlimited(),
            );
            assert_eq!(collect_rows(&mut op).unwrap().len(), 512);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
