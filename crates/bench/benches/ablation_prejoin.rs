//! Ablation: prejoin projections (§3.3). The paper found query-time hash
//! joins with small dimensions good enough that prejoins are rarely worth
//! their load cost; this bench shows both sides — query speed (prejoin
//! scan vs hash join) and load cost (prejoin denormalization at load).

use criterion::{criterion_group, criterion_main, Criterion};
use vdb_core::Engine;
use vdb_types::{Row, Value};

fn setup(with_prejoin: bool, n: i64) -> Engine {
    let db = Engine::builder().open().unwrap();
    db.execute("CREATE TABLE dim (id INT, grp INT)").unwrap();
    db.execute(
        "CREATE PROJECTION dim_super AS SELECT id, grp FROM dim ORDER BY id \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    let dims: Vec<Row> = (0..100)
        .map(|i| vec![Value::Integer(i), Value::Integer(i % 7)])
        .collect();
    db.load("dim", &dims).unwrap();
    db.execute("CREATE TABLE fact (fid INT, did INT, amt INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION fact_super AS SELECT fid, did, amt FROM fact ORDER BY fid \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    if with_prejoin {
        // Built programmatically: prejoin DDL is not in the SQL subset.
        let schema = db.cluster().table_schema("fact").unwrap();
        let mut def = vdb_storage::projection::ProjectionDef::super_projection(
            &schema,
            "fact_prejoin",
            &[0],
            &[],
        );
        def.prejoin = vec![vdb_storage::projection::PrejoinDim {
            dim_table: "dim".into(),
            fact_key: 1,
            dim_key: 0,
            dim_columns: vec![1],
        }];
        def.column_names.push("grp".into());
        def.column_types.push(vdb_types::DataType::Integer);
        def.encodings.push(vdb_encoding::EncodingType::Auto);
        db.cluster().create_projection(def).unwrap();
    }
    let facts: Vec<Row> = (0..n)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % 100),
                Value::Integer(i % 1000),
            ]
        })
        .collect();
    db.load("fact", &facts).unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let q = "SELECT grp, SUM(amt) FROM fact, dim WHERE did = id GROUP BY grp";
    let with = setup(true, 100_000);
    let without = setup(false, 100_000);
    // Same answers either way.
    let mut a = with.query(q).unwrap();
    let mut b2 = without.query(q).unwrap();
    a.sort();
    b2.sort();
    assert_eq!(a, b2);
    let mut g = c.benchmark_group("ablation_prejoin");
    g.sample_size(10);
    g.bench_function("query_prejoin_scan", |b| b.iter(|| with.query(q).unwrap()));
    g.bench_function("query_hash_join", |b| b.iter(|| without.query(q).unwrap()));
    // Load cost: the other half of the paper's argument.
    let facts: Vec<Row> = (0..20_000i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % 100),
                Value::Integer(i % 1000),
            ]
        })
        .collect();
    g.bench_function("load_with_prejoin", |b| {
        b.iter_batched(
            || setup(true, 1),
            |db| db.load("fact", &facts).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("load_without_prejoin", |b| {
        b.iter_batched(
            || setup(false, 1),
            |db| db.load("fact", &facts).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
