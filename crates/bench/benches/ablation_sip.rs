//! Ablation: Sideways Information Passing (§6.1). The same selective
//! fact-dimension join with the SIP filter wired into the fact scan vs
//! disabled — SIP drops non-matching fact rows at the scan instead of
//! carrying them to the join.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vdb_exec::plan::{execute_collect, ExecContext, JoinType, PhysicalPlan};
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore, StorageBackend};
use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema, Value};

fn fact_ctx(n: i64) -> ExecContext {
    let schema = TableSchema::new(
        "fact",
        vec![
            ColumnDef::new("dim_id", DataType::Integer),
            ColumnDef::new("amount", DataType::Integer),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "fact_super", &[0], &[]);
    let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let mut store = ProjectionStore::new(def, None, 1, backend.clone());
    let rows: Vec<Row> = (0..n)
        .map(|i| vec![Value::Integer(i % 10_000), Value::Integer(i)])
        .collect();
    store.insert_direct_ros(rows, Epoch(1)).unwrap();
    let mut ctx = ExecContext::new(backend);
    ctx.snapshots
        .insert("fact_super".into(), store.scan_snapshot(Epoch(1)));
    ctx
}

fn plan(with_sip: bool) -> PhysicalPlan {
    // Tiny selective build side: 20 of 10k dim ids survive.
    let dim_rows: Vec<Row> = (0..20).map(|i| vec![Value::Integer(i * 13)]).collect();
    PhysicalPlan::HashJoin {
        left: Box::new(PhysicalPlan::Scan {
            projection: "fact_super".into(),
            output_columns: vec![0, 1],
            predicate: None,
            partition_predicate: None,
            sip: if with_sip { vec![(0, vec![0])] } else { vec![] },
        }),
        right: Box::new(PhysicalPlan::Values {
            rows: dim_rows,
            arity: 1,
        }),
        left_keys: vec![0],
        right_keys: vec![0],
        join_type: JoinType::Inner,
        sip: with_sip.then_some(0),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sip");
    g.sample_size(10);
    for (name, with_sip) in [("sip_on", true), ("sip_off", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || fact_ctx(400_000),
                |mut ctx| {
                    let rows = execute_collect(&plan(with_sip), &mut ctx).unwrap();
                    assert_eq!(rows.len(), 800, "20 ids × 40 fact rows each");
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
