//! Ablation: direct execution on encoded data (§6.1). A pipelined GroupBy
//! consuming RLE runs without expansion vs the same aggregation forced to
//! expand runs into plain values first.

use criterion::{criterion_group, criterion_main, Criterion};
use vdb_exec::aggregate::{AggCall, AggFunc};
use vdb_exec::batch::{Batch, ColumnSlice};
use vdb_exec::groupby::PipelinedGroupByOp;
use vdb_exec::operator::{collect_rows, Operator, ValuesOp};

/// 2M logical rows as 2k runs of 1k identical values.
fn rle_batches() -> Vec<Batch> {
    (0..200)
        .map(|b| {
            Batch::new(vec![ColumnSlice::rle(
                (0..10)
                    .map(|r| (vdb_types::Value::Integer(b * 10 + r), 1000u32))
                    .collect(),
            )])
        })
        .collect()
}

fn expanded_batches() -> Vec<Batch> {
    rle_batches()
        .into_iter()
        .map(|b| Batch::new(vec![ColumnSlice::Plain(b.columns[0].to_values())]))
        .collect()
}

fn run(batches: Vec<Batch>) -> u64 {
    let mut op = PipelinedGroupByOp::new(
        Box::new(ValuesOp::new(batches)),
        vec![0],
        vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
    );
    let rows = collect_rows(&mut op).unwrap();
    assert_eq!(rows.len(), 2000);
    let encoded = op.run_aggregated_rows();
    let _ = op.name();
    encoded
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_encoded_exec");
    g.sample_size(10);
    g.bench_function("rle_runs_direct", |b| {
        b.iter_batched(
            rle_batches,
            |batches| assert_eq!(run(batches), 2_000_000, "all rows via run math"),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("expanded_values", |b| {
        b.iter_batched(
            expanded_batches,
            |batches| assert_eq!(run(batches), 0, "no run math possible"),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
