//! Tables 1 & 2: the lock model. Prints both matrices (regenerated from
//! the implementation) and benches the concurrency the `I` mode exists
//! for — parallel bulk loads acquiring/releasing insert locks.

use criterion::{criterion_group, criterion_main, Criterion};
use vdb_txn::{LockManager, LockMode};
use vdb_types::TxnId;

fn bench(c: &mut Criterion) {
    println!("{}", vdb_bench::repro::table1_2());
    let mut g = c.benchmark_group("table1_2_locks");
    g.sample_size(20);
    // Parallel loads: N transactions take compatible I locks.
    g.bench_function("parallel_insert_locks_x100", |b| {
        b.iter(|| {
            let lm = LockManager::new();
            for t in 0..100u64 {
                lm.acquire(TxnId(t), "sales", LockMode::I).unwrap();
            }
            for t in 0..100u64 {
                lm.release_all(TxnId(t));
            }
        })
    });
    // Full compatibility sweep (49 pairs) as the microbenchmark.
    g.bench_function("compatibility_sweep", |b| {
        b.iter(|| {
            let mut yes = 0;
            for req in vdb_txn::locks::ALL_MODES {
                for granted in vdb_txn::locks::ALL_MODES {
                    if req.compatible_with(granted) {
                        yes += 1;
                    }
                }
            }
            assert_eq!(yes, 20, "Table 1 has exactly 20 Yes cells");
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
