//! Table 4: compression. Prints the reproduction (sizes/ratios), then
//! benches the encode throughput of each method.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vdb_bench::workloads::{meter, random_ints};
use vdb_encoding::{ColumnWriter, EncodingType};
use vdb_types::Value;

fn bench(c: &mut Criterion) {
    println!("{}", vdb_bench::repro::table4(1_000_000, 500_000).unwrap());

    let n = 200_000;
    let ints = random_ints::generate(n, 42);
    let text = random_ints::as_text(&ints);
    let mut sorted = ints.clone();
    sorted.sort_unstable();
    let col: Vec<Value> = sorted.iter().map(|&v| Value::Integer(v)).collect();

    let mut g = c.benchmark_group("table4_encode");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("gzip_class_text", |b| {
        b.iter(|| vdb_compress::compress(text.as_bytes()))
    });
    g.bench_function("vertica_sorted_column", |b| {
        b.iter(|| {
            let mut w = ColumnWriter::new(EncodingType::Auto);
            w.extend(col.iter().cloned());
            w.finish()
        })
    });
    // Meter CSV vs columnar.
    let rows = meter::generate(100_000, &vdb_bench::repro::scaled_meter_config(100_000));
    let csv = meter::as_csv(&rows);
    g.throughput(Throughput::Bytes(csv.len() as u64));
    g.bench_function("gzip_class_meter_csv", |b| {
        b.iter(|| vdb_compress::compress(csv.as_bytes()))
    });
    g.bench_function("vertica_meter_columns", |b| {
        b.iter(|| {
            (0..4)
                .map(|ci| {
                    let mut w = ColumnWriter::new(EncodingType::Auto);
                    w.extend(rows.iter().map(|r| r[ci].clone()));
                    let (d, i) = w.finish();
                    d.len() + i.encode().len()
                })
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
