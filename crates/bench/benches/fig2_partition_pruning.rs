//! Figure 2: physical storage separation. Benches a one-month query with
//! partition pruning against the same query with pruning disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vdb_exec::operator::collect_rows;
use vdb_exec::scan::ScanOperator;
use vdb_storage::partition::PartitionSpec;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore};
use vdb_types::{ColumnDef, DataType, Epoch, Expr, Row, TableSchema, Value};

fn store(rows_per_month: usize) -> ProjectionStore {
    let schema = TableSchema::new(
        "sales",
        vec![
            ColumnDef::new("cid", DataType::Integer),
            ColumnDef::new("ts", DataType::Timestamp),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "sales_b0", &[1], &[0]);
    let spec = PartitionSpec::by_year_month(1, "ts");
    let mut s = ProjectionStore::new(def, Some(spec), 3, Arc::new(MemBackend::new()));
    let mut rows: Vec<Row> = Vec::new();
    for m in 1..=12u32 {
        for d in 0..rows_per_month as i64 {
            rows.push(vec![
                Value::Integer(d * 7919 % 100_000),
                Value::Timestamp(vdb_types::date::timestamp_from_civil(
                    2012,
                    m,
                    1 + (d % 27) as u32,
                    0,
                    0,
                    0,
                )),
            ]);
        }
    }
    s.insert_direct_ros(rows, Epoch(1)).unwrap();
    s
}

fn bench(c: &mut Criterion) {
    println!("{}", vdb_bench::repro::figure2(10_000).unwrap());
    let s = store(20_000);
    let april_key = Expr::eq(Expr::col(0, "pk"), Expr::int(201_204));
    let run = |partition_pred: Option<Expr>| {
        let snap = s.scan_snapshot(Epoch(1));
        let mut scan = ScanOperator::new(
            s.backend().clone(),
            snap.containers,
            vec![],
            vec![0, 1],
            None,
            partition_pred,
            vec![],
        );
        collect_rows(&mut scan).unwrap().len()
    };
    let mut g = c.benchmark_group("fig2_partition_pruning");
    g.sample_size(10);
    g.bench_function("pruned_one_month", |b| {
        b.iter(|| {
            let n = run(Some(april_key.clone()));
            assert_eq!(n, 20_000);
        })
    });
    g.bench_function("unpruned_full_scan", |b| {
        b.iter(|| {
            let n = run(None);
            assert_eq!(n, 240_000);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
