//! Ablation: the tuple mover's exponential strata (§4) vs a naive policy
//! that merges every container whenever more than one exists. Strata bound
//! the number of times any tuple is rewritten; naive merging rewrites the
//! whole projection on every load.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore, TupleMover, TupleMoverConfig};
use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema, Value};

fn store() -> ProjectionStore {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Integer),
            ColumnDef::new("v", DataType::Integer),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
    ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()))
}

fn rows(load: i64, n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| vec![Value::Integer(load * n + i), Value::Integer(i)])
        .collect()
}

/// `loads` bulk loads of `per_load` rows with a mergeout pass after each.
fn run(mover: &TupleMover, loads: i64, per_load: i64) -> usize {
    let mut s = store();
    for l in 0..loads {
        s.insert_direct_ros(rows(l, per_load), Epoch(l as u64 + 1))
            .unwrap();
        mover.run_mergeout(&mut s, Epoch::ZERO).unwrap();
    }
    s.container_count()
}

fn bench(c: &mut Criterion) {
    let strata = TupleMover::new(TupleMoverConfig {
        strata_base_bytes: 2048,
        strata_factor: 8,
        merge_threshold: 4,
        ..Default::default()
    });
    // "Naive": threshold 2 and one giant stratum — merges everything into
    // one container after nearly every load.
    let naive = TupleMover::new(TupleMoverConfig {
        strata_base_bytes: u64::MAX / 4,
        strata_factor: 2,
        merge_threshold: 2,
        ..Default::default()
    });
    let mut g = c.benchmark_group("ablation_tuple_mover");
    g.sample_size(10);
    g.bench_function("strata_mergeout", |b| {
        b.iter(|| {
            let n = run(&strata, 40, 500);
            assert!(n < 40, "containers must consolidate: {n}");
        })
    });
    g.bench_function("naive_merge_all", |b| b.iter(|| run(&naive, 40, 500)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
