//! Figure 1: projections. Benches the same aggregate answered by the
//! narrow (cust, price) projection vs forced through the super projection.

use criterion::{criterion_group, criterion_main, Criterion};
use vdb_core::Engine;
use vdb_types::Value;

fn setup(narrow: bool) -> Engine {
    let db = Engine::builder().open().unwrap();
    db.execute("CREATE TABLE sales (sale_id INT, cust VARCHAR, price FLOAT, date TIMESTAMP)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION sales_super AS SELECT sale_id, cust, price, date FROM sales \
         ORDER BY date SEGMENTED BY HASH(sale_id) ALL NODES",
    )
    .unwrap();
    if narrow {
        db.execute(
            "CREATE PROJECTION sales_cust_price AS SELECT cust, price FROM sales \
             ORDER BY cust SEGMENTED BY HASH(cust) ALL NODES",
        )
        .unwrap();
    }
    let rows: Vec<vdb_types::Row> = (0..100_000i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Varchar(format!("cust{}", i % 97)),
                Value::Float((i % 1000) as f64 / 10.0),
                Value::Timestamp(1_330_000_000 + i * 60),
            ]
        })
        .collect();
    db.load("sales", &rows).unwrap();
    db
}

fn bench(c: &mut Criterion) {
    println!("{}", vdb_bench::repro::figure1(100_000).unwrap());
    let with_narrow = setup(true);
    let super_only = setup(false);
    let q = "SELECT cust, SUM(price) FROM sales GROUP BY cust";
    let mut g = c.benchmark_group("fig1_projections");
    g.sample_size(10);
    g.bench_function("narrow_projection", |b| {
        b.iter(|| with_narrow.query(q).unwrap())
    });
    g.bench_function("super_projection_only", |b| {
        b.iter(|| super_only.query(q).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
