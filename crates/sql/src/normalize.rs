//! SQL normalization for plan-cache keying and prepared statements.
//!
//! The serving layer caches bound + physical plans keyed on SQL text, but
//! raw text is a terrible key: `SELECT  A` and `select a -- hi` are the
//! same query. This module canonicalizes a statement through the lexer:
//!
//! * whitespace and comments vanish (tokens are re-rendered one-space
//!   separated),
//! * identifiers fold to lowercase (the binder resolves every name
//!   case-insensitively, so this cannot alias distinct queries — only
//!   result-column *labels* lose their original case on a cache hit),
//! * literals (`42`, `1.5`, `'x'`) are lifted out into a parameter vector
//!   and replaced by `?` slots, and explicit `?` placeholders become
//!   *unbound* slots a prepared statement fills at execute time.
//!
//! The canonical [`NormalizedSql::template`] identifies the statement
//! *shape*; the plan-cache key is template **plus** rendered parameter
//! values ([`NormalizedSql::cache_key`]), because a physical plan embeds
//! its literal constants (predicates are constant-folded during binding) —
//! `... WHERE v > 10` and `... WHERE v > 20` must not share a plan.
//! Parameterization still pays twice: repeated statements hit regardless
//! of formatting, and prepared statements reuse one parsed template across
//! bindings.

use crate::lexer::{lex, Sym, Token};
use vdb_types::{DbError, DbResult, Value};

/// A statement canonicalized by [`normalize`]: literal-free text segments
/// with parameter slots between them.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedSql {
    /// Canonical text fragments; slots sit between consecutive segments
    /// (`segments.len() == slots.len() + 1`).
    segments: Vec<String>,
    /// One entry per slot, in text order. `Some` = a literal lifted from
    /// the original text; `None` = an explicit `?` awaiting a binding.
    slots: Vec<Option<Value>>,
}

impl NormalizedSql {
    /// The canonical statement shape: segments joined with `?` slots.
    /// Identical for any formatting / literal choice of the same query.
    pub fn template(&self) -> String {
        self.segments.join(" ? ").trim().to_string()
    }

    /// Number of explicit `?` placeholders (unbound slots).
    pub fn placeholder_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// First canonical token (lowercased), for statement-kind dispatch
    /// ("select", "insert", "explain", ...). Empty string for empty input.
    pub fn leading_word(&self) -> &str {
        self.segments
            .first()
            .map(|s| s.split(' ').next().unwrap_or(""))
            .unwrap_or("")
    }

    /// Bind `params` to the unbound slots (in order) and render the full
    /// executable SQL text. Errors if the parameter count mismatches or a
    /// value cannot be rendered as a SQL literal.
    pub fn render(&self, params: &[Value]) -> DbResult<String> {
        let want = self.placeholder_count();
        if params.len() != want {
            return Err(DbError::Binder(format!(
                "statement has {want} parameter placeholder(s), got {} value(s)",
                params.len()
            )));
        }
        let mut next_param = params.iter();
        let mut out = String::with_capacity(self.segments.iter().map(String::len).sum());
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                let value = match &self.slots[i - 1] {
                    Some(v) => v,
                    None => next_param.next().expect("placeholder count checked"),
                };
                out.push(' ');
                out.push_str(&render_literal(value)?);
                out.push(' ');
            }
            out.push_str(seg);
        }
        Ok(out.trim().to_string())
    }

    /// The plan-cache key: template ⊕ every slot's bound value. Two
    /// statements share a key iff they compile to the same plan.
    pub fn cache_key(&self, params: &[Value]) -> DbResult<String> {
        let want = self.placeholder_count();
        if params.len() != want {
            return Err(DbError::Binder(format!(
                "statement has {want} parameter placeholder(s), got {} value(s)",
                params.len()
            )));
        }
        let mut next_param = params.iter();
        let mut key = self.template();
        for slot in &self.slots {
            let value = match slot {
                Some(v) => v,
                None => next_param.next().expect("placeholder count checked"),
            };
            key.push('\u{1}');
            key.push_str(&render_literal(value)?);
        }
        Ok(key)
    }
}

/// Canonicalize one SQL statement (see the module docs for the rules).
pub fn normalize(sql: &str) -> DbResult<NormalizedSql> {
    let tokens = lex(sql)?;
    let mut segments = vec![String::new()];
    let mut slots = Vec::new();
    let push = |segments: &mut Vec<String>, text: &str| {
        let seg = segments.last_mut().expect("segments never empty");
        if !seg.is_empty() {
            seg.push(' ');
        }
        seg.push_str(text);
    };
    for t in &tokens {
        match t {
            Token::Integer(v) => {
                slots.push(Some(Value::Integer(*v)));
                segments.push(String::new());
            }
            Token::Float(v) => {
                slots.push(Some(Value::Float(*v)));
                segments.push(String::new());
            }
            Token::Str(s) => {
                slots.push(Some(Value::Varchar(s.clone())));
                segments.push(String::new());
            }
            Token::Symbol(Sym::Question) => {
                slots.push(None);
                segments.push(String::new());
            }
            Token::Ident(s) => push(&mut segments, &render_ident(s)),
            Token::Symbol(sym) => push(&mut segments, sym_text(*sym)),
        }
    }
    Ok(NormalizedSql { segments, slots })
}

/// Lowercase plain identifiers; re-quote anything that needs it so the
/// rendered text lexes back to the same identifier.
fn render_ident(s: &str) -> String {
    let plain = !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        s.to_ascii_lowercase()
    } else {
        format!("\"{s}\"")
    }
}

/// Render a parameter/literal value back into SQL literal text that lexes
/// to the same [`Value`].
pub fn render_literal(value: &Value) -> DbResult<String> {
    Ok(match value {
        Value::Null => "NULL".to_string(),
        Value::Integer(v) => v.to_string(),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(DbError::Binder(format!(
                    "cannot render non-finite float parameter {v} as a SQL literal"
                )));
            }
            // `{:?}` round-trips f64 and always includes `.` or `e`.
            format!("{v:?}")
        }
        Value::Varchar(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Timestamp(_) => {
            return Err(DbError::Binder(
                "timestamp parameters are not supported; pass an integer epoch".into(),
            ))
        }
    })
}

fn sym_text(sym: Sym) -> &'static str {
    match sym {
        Sym::LParen => "(",
        Sym::RParen => ")",
        Sym::Comma => ",",
        Sym::Semicolon => ";",
        Sym::Star => "*",
        Sym::Plus => "+",
        Sym::Minus => "-",
        Sym::Slash => "/",
        Sym::Percent => "%",
        Sym::Eq => "=",
        Sym::Ne => "<>",
        Sym::Lt => "<",
        Sym::Le => "<=",
        Sym::Gt => ">",
        Sym::Ge => ">=",
        Sym::Dot => ".",
        Sym::Question => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_case_do_not_change_the_template() {
        let a = normalize("SELECT  G, sum(V)  FROM T -- comment\n WHERE v > 10").unwrap();
        let b = normalize("select g, SUM(v) from t where V > 10").unwrap();
        assert_eq!(a.template(), b.template());
        assert_eq!(a.cache_key(&[]).unwrap(), b.cache_key(&[]).unwrap());
    }

    #[test]
    fn different_literals_share_a_template_but_not_a_key() {
        let a = normalize("select * from t where v > 10").unwrap();
        let b = normalize("select * from t where v > 20").unwrap();
        assert_eq!(a.template(), b.template());
        assert_ne!(a.cache_key(&[]).unwrap(), b.cache_key(&[]).unwrap());
    }

    #[test]
    fn placeholders_bind_in_order_and_render_executable_sql() {
        let n = normalize("select * from t where g = ? and v > ?").unwrap();
        assert_eq!(n.placeholder_count(), 2);
        let sql = n
            .render(&[Value::Varchar("x'y".into()), Value::Integer(7)])
            .unwrap();
        assert_eq!(sql, "select * from t where g = 'x''y' and v > 7");
        // Bound text must normalize back to the same template.
        assert_eq!(normalize(&sql).unwrap().template(), n.template());
    }

    #[test]
    fn param_count_mismatch_is_a_binder_error() {
        let n = normalize("select * from t where v = ?").unwrap();
        assert!(matches!(n.render(&[]), Err(DbError::Binder(_))));
        assert!(matches!(
            n.render(&[Value::Integer(1), Value::Integer(2)]),
            Err(DbError::Binder(_))
        ));
    }

    #[test]
    fn literal_render_round_trips_through_the_lexer() {
        for (v, text) in [
            (Value::Integer(-42), "-42"),
            (Value::Float(1.5), "1.5"),
            (Value::Float(1e300), "1e300"),
            (Value::Varchar("it's".into()), "'it''s'"),
            (Value::Null, "NULL"),
            (Value::Boolean(true), "TRUE"),
        ] {
            assert_eq!(render_literal(&v).unwrap(), text);
            assert!(lex(text).is_ok(), "{text} must lex");
        }
        assert!(render_literal(&Value::Float(f64::NAN)).is_err());
        assert!(render_literal(&Value::Timestamp(0)).is_err());
    }

    #[test]
    fn quoted_and_odd_identifiers_requote() {
        let n = normalize("select \"Weird Col\" from t").unwrap();
        assert_eq!(n.template(), "select \"Weird Col\" from t");
        assert_eq!(n.leading_word(), "select");
    }
}
