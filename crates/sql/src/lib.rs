//! `vdb-sql` — the SQL front end.
//!
//! Vertica reused PostgreSQL's parser/analyzer (§2.1.1); this crate is a
//! from-scratch replacement covering the dialect the examples, tests and
//! benchmarks need: DDL (`CREATE TABLE ... PARTITION BY`,
//! `CREATE PROJECTION ... ORDER BY ... SEGMENTED BY HASH(...)`), DML
//! (`INSERT`, `UPDATE`, `DELETE`, `ALTER TABLE ... DROP PARTITION`),
//! `SELECT` with joins, grouping, HAVING, DISTINCT, window functions,
//! ORDER BY / LIMIT, and `EXPLAIN`.
//!
//! Pipeline: [`lexer`] → [`parser`] (name-based [`ast`]) → [`binder`]
//! (resolves names against a schema provider into the optimizer's
//! [`vdb_optimizer::BoundQuery`] / storage definitions).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use binder::{bind, BoundStatement, SchemaProvider};
pub use normalize::{normalize, NormalizedSql};
pub use parser::parse_statement;

use vdb_types::DbResult;

/// Parse and bind one SQL statement.
pub fn compile(sql: &str, schemas: &dyn SchemaProvider) -> DbResult<BoundStatement> {
    let stmt = parse_statement(sql)?;
    bind(stmt, schemas)
}
