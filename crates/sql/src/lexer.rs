//! SQL lexer: case-insensitive keywords, quoted strings, numbers.

use vdb_types::{DbError, DbResult};

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, uppercased for keywords comparison; the
    /// original text is kept for identifiers.
    Ident(String),
    Integer(i64),
    Float(f64),
    Str(String),
    Symbol(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
    /// `?` — a prepared-statement parameter placeholder. The parser
    /// rejects it; [`crate::normalize()`] substitutes bound parameter values
    /// before the text reaches the parser.
    Question,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '?' => {
                out.push(Token::Symbol(Sym::Question));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(DbError::Parse("unterminated string literal".into()));
                    }
                    if b[i] == b'\'' {
                        // '' escape
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(b[i] as char);
                    i += 1;
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        // Stop on `..` or second dot.
                        if is_float || (i + 1 < b.len() && b[i + 1] == b'.') {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                // exponent
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Integer(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && b[i] != b'"' {
                        i += 1;
                    }
                    if i >= b.len() {
                        return Err(DbError::Parse("unterminated quoted identifier".into()));
                    }
                    out.push(Token::Ident(input[start..i].to_string()));
                    i += 1;
                } else {
                    let start = i;
                    while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.push(Token::Ident(input[start..i].to_string()));
                }
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_select() {
        let toks = lex("SELECT a, count(*) FROM t WHERE x >= 1.5 AND y <> 'a''b'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("a'b".into())));
        assert!(toks.contains(&Token::Symbol(Sym::Ne)));
    }

    #[test]
    fn comments_and_quoted_idents() {
        let toks = lex("SELECT \"Weird Name\" -- trailing\nFROM t").unwrap();
        assert_eq!(toks[1], Token::Ident("Weird Name".into()));
        assert!(toks[2].is_kw("from"));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn numbers() {
        let toks = lex("1 2.5 3e2 42").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Integer(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Integer(42)
            ]
        );
    }
}
