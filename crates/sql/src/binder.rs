//! Name resolution: AST → bound statements over positional column indexes.

use crate::ast::*;
use std::collections::BTreeMap;
use vdb_exec::aggregate::AggFunc;
use vdb_exec::analytic::WindowFunc;
use vdb_exec::plan::JoinType;
use vdb_optimizer::query::{AggItem, BoundQuery, JoinEdge, OrderItem, QueryTable, WindowCall};
use vdb_storage::projection::{ProjectionDef, Segmentation};
use vdb_types::schema::SortKey;
use vdb_types::{ColumnDef, DataType, DbError, DbResult, Expr, Func, Row, TableSchema, Value};

/// Catalog access the binder needs.
pub trait SchemaProvider {
    fn table_schema(&self, name: &str) -> Option<TableSchema>;
}

impl SchemaProvider for BTreeMap<String, TableSchema> {
    fn table_schema(&self, name: &str) -> Option<TableSchema> {
        self.get(name).cloned()
    }
}

/// A fully bound statement, ready for the engine.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    CreateTable {
        schema: TableSchema,
        /// Over table columns.
        partition_by: Option<Expr>,
    },
    CreateProjection {
        def: ProjectionDef,
    },
    DropTable(String),
    DropProjection(String),
    Insert {
        table: String,
        rows: Vec<Row>,
    },
    Delete {
        table: String,
        /// Over table columns.
        predicate: Option<Expr>,
    },
    Update {
        table: String,
        /// (table column, value expression over table columns).
        sets: Vec<(usize, Expr)>,
        predicate: Option<Expr>,
    },
    DropPartition {
        table: String,
        key: Value,
    },
    Select(BoundQuery),
    Explain(BoundQuery),
    Begin,
    Commit,
    Rollback,
}

/// Bind a parsed statement.
pub fn bind(stmt: Statement, schemas: &dyn SchemaProvider) -> DbResult<BoundStatement> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            partition_by,
        } => {
            let schema = TableSchema::new(
                name,
                columns
                    .into_iter()
                    .map(|c| {
                        let mut d = ColumnDef::new(c.name, c.data_type);
                        if c.not_null {
                            d = d.not_null();
                        }
                        d
                    })
                    .collect(),
            );
            let partition_by = match partition_by {
                None => None,
                Some(e) => Some(bind_table_expr(&e, &schema)?),
            };
            Ok(BoundStatement::CreateTable {
                schema,
                partition_by,
            })
        }
        Statement::CreateProjection {
            name,
            table,
            columns,
            order_by,
            segmentation,
        } => {
            let schema = schemas
                .table_schema(&table)
                .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
            let col_indexes: Vec<usize> = if columns.is_empty() {
                (0..schema.arity()).collect()
            } else {
                columns
                    .iter()
                    .map(|(c, _)| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| DbError::Binder(format!("no column {c} in {table}")))
                    })
                    .collect::<DbResult<_>>()?
            };
            let encodings: Vec<vdb_encoding::EncodingType> = if columns.is_empty() {
                vec![vdb_encoding::EncodingType::Auto; col_indexes.len()]
            } else {
                columns
                    .iter()
                    .map(|(c, e)| match e {
                        None => Ok(vdb_encoding::EncodingType::Auto),
                        Some(name) => vdb_encoding::EncodingType::parse(name).ok_or_else(|| {
                            DbError::Binder(format!("unknown encoding {name} for column {c}"))
                        }),
                    })
                    .collect::<DbResult<_>>()?
            };
            let column_names: Vec<String> = col_indexes
                .iter()
                .map(|&i| schema.columns[i].name.clone())
                .collect();
            let column_types: Vec<DataType> = col_indexes
                .iter()
                .map(|&i| schema.columns[i].data_type)
                .collect();
            let proj_pos = |name: &str| -> DbResult<usize> {
                column_names
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        DbError::Binder(format!("column {name} not in projection {}", &name))
                    })
            };
            let sort_keys: Vec<SortKey> = order_by
                .iter()
                .map(|c| Ok(SortKey::asc(proj_pos(c)?)))
                .collect::<DbResult<_>>()?;
            let segmentation = match segmentation {
                SegmentationAst::Unsegmented => Segmentation::Replicated,
                SegmentationAst::Hash(cols) => {
                    let pairs: Vec<(usize, &str)> = cols
                        .iter()
                        .map(|c| Ok((proj_pos(c)?, c.as_str())))
                        .collect::<DbResult<_>>()?;
                    Segmentation::hash_of(&pairs)
                }
                SegmentationAst::Default => match sort_keys.first() {
                    Some(k) => {
                        Segmentation::hash_of(&[(k.column, column_names[k.column].as_str())])
                    }
                    None => Segmentation::Replicated,
                },
            };
            Ok(BoundStatement::CreateProjection {
                def: ProjectionDef {
                    name,
                    anchor_table: table,
                    columns: col_indexes,
                    column_names,
                    column_types,
                    sort_keys,
                    encodings,
                    segmentation,
                    prejoin: vec![],
                },
            })
        }
        Statement::DropTable(n) => Ok(BoundStatement::DropTable(n)),
        Statement::DropProjection(n) => Ok(BoundStatement::DropProjection(n)),
        Statement::Insert { table, rows } => {
            let schema = schemas
                .table_schema(&table)
                .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
            let bound: Vec<Row> = rows
                .into_iter()
                .map(|row| {
                    row.iter()
                        .map(|e| {
                            let expr = bind_constant(e)?;
                            expr.eval(&[])
                        })
                        .collect::<DbResult<Row>>()
                })
                .collect::<DbResult<_>>()?;
            for r in &bound {
                if r.len() != schema.arity() {
                    return Err(DbError::Binder(format!(
                        "INSERT arity {} does not match table {} ({})",
                        r.len(),
                        table,
                        schema.arity()
                    )));
                }
            }
            Ok(BoundStatement::Insert { table, rows: bound })
        }
        Statement::Delete { table, predicate } => {
            let schema = schemas
                .table_schema(&table)
                .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
            let predicate = match predicate {
                None => None,
                Some(p) => Some(bind_table_expr(&p, &schema)?),
            };
            Ok(BoundStatement::Delete { table, predicate })
        }
        Statement::Update {
            table,
            sets,
            predicate,
        } => {
            let schema = schemas
                .table_schema(&table)
                .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
            let sets = sets
                .into_iter()
                .map(|(c, e)| {
                    let col = schema
                        .column_index(&c)
                        .ok_or_else(|| DbError::Binder(format!("no column {c}")))?;
                    Ok((col, bind_table_expr(&e, &schema)?))
                })
                .collect::<DbResult<_>>()?;
            let predicate = match predicate {
                None => None,
                Some(p) => Some(bind_table_expr(&p, &schema)?),
            };
            Ok(BoundStatement::Update {
                table,
                sets,
                predicate,
            })
        }
        Statement::DropPartition { table, key } => Ok(BoundStatement::DropPartition { table, key }),
        Statement::Select(s) => Ok(BoundStatement::Select(bind_select(s, schemas)?)),
        Statement::Explain(s) => Ok(BoundStatement::Explain(bind_select(s, schemas)?)),
        Statement::Begin => Ok(BoundStatement::Begin),
        Statement::Commit => Ok(BoundStatement::Commit),
        Statement::Rollback => Ok(BoundStatement::Rollback),
    }
}

// ---------------------------------------------------------------------------
// scope / expression binding
// ---------------------------------------------------------------------------

struct Scope {
    /// (alias, schema, global offset) per FROM table.
    tables: Vec<(String, TableSchema, usize)>,
}

impl Scope {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        let mut found = None;
        for (alias, schema, offset) in &self.tables {
            if let Some(q) = qualifier {
                if !alias.eq_ignore_ascii_case(q) && !schema.name.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(c) = schema.column_index(name) {
                if found.is_some() && qualifier.is_none() {
                    return Err(DbError::Binder(format!("ambiguous column {name}")));
                }
                found = Some(offset + c);
                if qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| {
            DbError::Binder(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))
        })
    }

    fn table_of_global(&self, g: usize) -> (usize, usize) {
        for (t, (_, schema, offset)) in self.tables.iter().enumerate() {
            if g >= *offset && g < offset + schema.arity() {
                return (t, g - offset);
            }
        }
        unreachable!("global column out of range")
    }
}

/// Bind a scalar expression (no aggregates/windows) in a scope, producing
/// global column indexes.
fn bind_scalar(e: &SqlExpr, scope: &Scope) -> DbResult<Expr> {
    Ok(match e {
        SqlExpr::Column { qualifier, name } => {
            let g = scope.resolve(qualifier.as_deref(), name)?;
            Expr::col(g, name.clone())
        }
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_scalar(left, scope)?),
            right: Box::new(bind_scalar(right, scope)?),
        },
        SqlExpr::Unary { op, input } => Expr::Unary {
            op: *op,
            input: Box::new(bind_scalar(input, scope)?),
        },
        SqlExpr::Func { name, args } => {
            let func = Func::parse(name)
                .ok_or_else(|| DbError::Binder(format!("unknown function {name}")))?;
            Expr::Call {
                func,
                args: args
                    .iter()
                    .map(|a| bind_scalar(a, scope))
                    .collect::<DbResult<_>>()?,
            }
        }
        SqlExpr::IsNull { input, negated } => Expr::IsNull {
            input: Box::new(bind_scalar(input, scope)?),
            negated: *negated,
        },
        SqlExpr::InList {
            input,
            list,
            negated,
        } => Expr::InList {
            input: Box::new(bind_scalar(input, scope)?),
            list: list.clone(),
            negated: *negated,
        },
        SqlExpr::Between { input, low, high } => Expr::Between {
            input: Box::new(bind_scalar(input, scope)?),
            low: Box::new(bind_scalar(low, scope)?),
            high: Box::new(bind_scalar(high, scope)?),
        },
        SqlExpr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((bind_scalar(c, scope)?, bind_scalar(v, scope)?)))
                .collect::<DbResult<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(bind_scalar(e, scope)?)),
                None => None,
            },
        },
        SqlExpr::Cast { input, to } => Expr::Cast {
            input: Box::new(bind_scalar(input, scope)?),
            to: *to,
        },
        SqlExpr::Aggregate { .. } => {
            return Err(DbError::Binder(
                "aggregate calls are only allowed at the top of a SELECT item".into(),
            ))
        }
        SqlExpr::Window { .. } => {
            return Err(DbError::Binder(
                "window calls are only allowed at the top of a SELECT item".into(),
            ))
        }
    })
}

/// Bind an expression whose scope is a single table (DDL/DML contexts);
/// column indexes are table-local.
fn bind_table_expr(e: &SqlExpr, schema: &TableSchema) -> DbResult<Expr> {
    let scope = Scope {
        tables: vec![(schema.name.clone(), schema.clone(), 0)],
    };
    bind_scalar(e, &scope)
}

/// Bind a constant expression (INSERT values).
fn bind_constant(e: &SqlExpr) -> DbResult<Expr> {
    let scope = Scope { tables: vec![] };
    bind_scalar(e, &scope)
}

// ---------------------------------------------------------------------------
// SELECT binding
// ---------------------------------------------------------------------------

fn bind_select(s: SelectStmt, schemas: &dyn SchemaProvider) -> DbResult<BoundQuery> {
    // Scope: FROM table + joined tables.
    let mut tables = Vec::new();
    let mut scope = Scope { tables: Vec::new() };
    let mut offset = 0;
    let mut add_table =
        |tref: &TableRef, scope: &mut Scope, tables: &mut Vec<QueryTable>| -> DbResult<()> {
            let schema = schemas
                .table_schema(&tref.name)
                .ok_or_else(|| DbError::NotFound(format!("table {}", tref.name)))?;
            let alias = tref.alias.clone().unwrap_or_else(|| tref.name.clone());
            scope.tables.push((alias.clone(), schema.clone(), offset));
            offset += schema.arity();
            tables.push(QueryTable {
                table: tref.name.clone(),
                alias,
            });
            Ok(())
        };
    add_table(&s.from, &mut scope, &mut tables)?;
    for j in &s.joins {
        add_table(&j.table, &mut scope, &mut tables)?;
    }

    let n = tables.len();
    let mut table_filters: Vec<Option<Expr>> = vec![None; n];
    let mut residual_filters: Vec<Expr> = Vec::new();
    // (table pair, join type) → edge under construction.
    let mut edges: Vec<JoinEdge> = Vec::new();

    let add_conjunct_to = |expr: Expr,
                           scope: &Scope,
                           table_filters: &mut Vec<Option<Expr>>,
                           residual: &mut Vec<Expr>| {
        let refs = expr.referenced_columns();
        let tables_referenced: Vec<usize> = {
            let mut ts: Vec<usize> = refs.iter().map(|&g| scope.table_of_global(g).0).collect();
            ts.sort_unstable();
            ts.dedup();
            ts
        };
        if tables_referenced.len() == 1 {
            let t = tables_referenced[0];
            let local = expr
                .remap_columns(&|g| Some(scope.table_of_global(g).1))
                .expect("single-table remap");
            table_filters[t] = Some(match table_filters[t].take() {
                Some(prev) => Expr::and(prev, local),
                None => local,
            });
        } else {
            residual.push(expr);
        }
    };

    // ON clauses.
    for (ji, j) in s.joins.iter().enumerate() {
        let right_table = ji + 1;
        let conjuncts = bind_scalar(&j.on, &scope)?.split_conjuncts();
        let mut left_cols = Vec::new();
        let mut right_cols = Vec::new();
        let mut other_table = None;
        for c in conjuncts {
            if let Expr::Binary {
                op: vdb_types::BinOp::Eq,
                left,
                right,
            } = &c
            {
                if let (Expr::Column { index: a, .. }, Expr::Column { index: b, .. }) =
                    (left.as_ref(), right.as_ref())
                {
                    let (ta, ca) = scope.table_of_global(*a);
                    let (tb, cb) = scope.table_of_global(*b);
                    if ta != tb && (ta == right_table || tb == right_table) {
                        let (rt_col, ot, ot_col) = if ta == right_table {
                            (ca, tb, cb)
                        } else {
                            (cb, ta, ca)
                        };
                        if other_table.is_none() {
                            other_table = Some(ot);
                        }
                        if other_table == Some(ot) {
                            right_cols.push(rt_col);
                            left_cols.push(ot_col);
                            continue;
                        }
                    }
                }
            }
            if c == Expr::Literal(Value::Boolean(true)) {
                continue;
            }
            // Non-equi ON condition.
            if j.join_type == JoinType::Inner {
                add_conjunct_to(c, &scope, &mut table_filters, &mut residual_filters);
            } else {
                return Err(DbError::Binder(
                    "outer joins support only equality ON conditions".into(),
                ));
            }
        }
        if left_cols.is_empty() && j.join_type != JoinType::Inner {
            return Err(DbError::Binder("outer join missing equi-join keys".into()));
        }
        if !left_cols.is_empty() {
            edges.push(JoinEdge {
                left_table: other_table.unwrap(),
                left_columns: left_cols,
                right_table,
                right_columns: right_cols,
                join_type: j.join_type,
            });
        }
    }

    // WHERE.
    if let Some(w) = &s.where_clause {
        for c in bind_scalar(w, &scope)?.split_conjuncts() {
            // Cross-table equi conjuncts become (inner) join edges.
            if let Expr::Binary {
                op: vdb_types::BinOp::Eq,
                left,
                right,
            } = &c
            {
                if let (Expr::Column { index: a, .. }, Expr::Column { index: b, .. }) =
                    (left.as_ref(), right.as_ref())
                {
                    let (ta, ca) = scope.table_of_global(*a);
                    let (tb, cb) = scope.table_of_global(*b);
                    if ta != tb {
                        // Merge into an existing inner edge if present.
                        if let Some(e) = edges.iter_mut().find(|e| {
                            e.join_type == JoinType::Inner
                                && ((e.left_table == ta && e.right_table == tb)
                                    || (e.left_table == tb && e.right_table == ta))
                        }) {
                            if e.left_table == ta {
                                e.left_columns.push(ca);
                                e.right_columns.push(cb);
                            } else {
                                e.left_columns.push(cb);
                                e.right_columns.push(ca);
                            }
                        } else {
                            edges.push(JoinEdge {
                                left_table: ta,
                                left_columns: vec![ca],
                                right_table: tb,
                                right_columns: vec![cb],
                                join_type: JoinType::Inner,
                            });
                        }
                        continue;
                    }
                }
            }
            add_conjunct_to(c, &scope, &mut table_filters, &mut residual_filters);
        }
    }

    // SELECT list: split into plain exprs / aggregates / windows.
    let mut select = Vec::new();
    let mut aggregates = Vec::new();
    let mut windows = Vec::new();
    let out_name = |alias: &Option<String>, e: &SqlExpr, i: usize| -> String {
        alias.clone().unwrap_or_else(|| match e {
            SqlExpr::Column { name, .. } => name.clone(),
            SqlExpr::Aggregate { name, .. } => name.to_lowercase(),
            SqlExpr::Window { name, .. } => name.to_lowercase(),
            _ => format!("col{i}"),
        })
    };
    for (i, item) in s.items.iter().enumerate() {
        let name = out_name(&item.alias, &item.expr, i);
        match &item.expr {
            SqlExpr::Aggregate {
                name: fname,
                distinct,
                arg,
            } => {
                let func = parse_agg(fname, *distinct, arg.is_none())?;
                let input = match arg {
                    None => None,
                    Some(a) => Some(bind_scalar(a, &scope)?),
                };
                aggregates.push(AggItem {
                    func,
                    input,
                    output_name: name,
                });
            }
            SqlExpr::Window {
                name: fname,
                args,
                partition_by,
                order_by,
            } => {
                windows.push(bind_window(
                    fname,
                    args,
                    partition_by,
                    order_by,
                    name,
                    &scope,
                )?);
            }
            other => {
                select.push((bind_scalar(other, &scope)?, name));
            }
        }
    }

    // GROUP BY.
    let group_by: Vec<Expr> = s
        .group_by
        .iter()
        .map(|e| bind_scalar(e, &scope))
        .collect::<DbResult<_>>()?;
    if !aggregates.is_empty() || !group_by.is_empty() {
        if !windows.is_empty() {
            return Err(DbError::Binder(
                "window functions cannot be combined with GROUP BY".into(),
            ));
        }
        // Aggregates must come after the grouping columns in the SELECT
        // list (the engine's output layout is group columns then
        // aggregates).
        let first_agg = s
            .items
            .iter()
            .position(|i| matches!(i.expr, SqlExpr::Aggregate { .. }));
        if let Some(fa) = first_agg {
            if s.items[fa..]
                .iter()
                .any(|i| !matches!(i.expr, SqlExpr::Aggregate { .. }))
            {
                return Err(DbError::Binder(
                    "aggregates must follow the grouping columns in the SELECT list".into(),
                ));
            }
        }
        // Non-aggregate select items must be exactly the GROUP BY list, in
        // order (grouping columns lead the output).
        if select.len() != group_by.len() || select.iter().zip(&group_by).any(|((e, _), g)| e != g)
        {
            return Err(DbError::Binder(
                "in aggregate queries the non-aggregate SELECT items must list the \
                 GROUP BY expressions, in order, before the aggregates"
                    .into(),
            ));
        }
    }

    // HAVING over output layout (group cols then aggregates).
    let having = match &s.having {
        None => None,
        Some(h) => Some(bind_having(h, &scope, &select, &aggregates, &s.group_by)?),
    };

    // ORDER BY over output columns.
    let output_names: Vec<String> = select
        .iter()
        .map(|(_, n)| n.clone())
        .chain(aggregates.iter().map(|a| a.output_name.clone()))
        .chain(windows.iter().map(|w| w.output_name.clone()))
        .collect();
    let order_by = s
        .order_by
        .iter()
        .map(|o| {
            let col = match &o.expr {
                SqlExpr::Literal(Value::Integer(k)) if *k >= 1 => (*k - 1) as usize,
                SqlExpr::Column { name, .. } => output_names
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        DbError::Binder(format!("ORDER BY column {name} not in output"))
                    })?,
                other => {
                    // Expression matching a select item.
                    let bound = bind_scalar(other, &scope)?;
                    select
                        .iter()
                        .position(|(e, _)| e == &bound)
                        .ok_or_else(|| {
                            DbError::Binder("ORDER BY expression not in SELECT list".into())
                        })?
                }
            };
            if col >= output_names.len() {
                return Err(DbError::Binder(format!(
                    "ORDER BY position {} out of range",
                    col + 1
                )));
            }
            Ok(OrderItem {
                output_column: col,
                ascending: o.ascending,
            })
        })
        .collect::<DbResult<Vec<_>>>()?;

    Ok(BoundQuery {
        tables,
        table_filters,
        joins: edges,
        residual_filters,
        select,
        distinct: s.distinct,
        group_by,
        aggregates,
        having,
        windows,
        order_by,
        limit: s.limit,
        offset: s.offset,
    })
}

fn parse_agg(name: &str, distinct: bool, star: bool) -> DbResult<AggFunc> {
    if star {
        if name.eq_ignore_ascii_case("COUNT") {
            return Ok(AggFunc::CountStar);
        }
        return Err(DbError::Binder(format!("{name}(*) is not valid")));
    }
    AggFunc::parse(name, distinct)
        .ok_or_else(|| DbError::Binder(format!("unknown aggregate {name}")))
}

fn bind_window(
    fname: &str,
    args: &[SqlExpr],
    partition_by: &[SqlExpr],
    order_by: &[(SqlExpr, bool)],
    output_name: String,
    scope: &Scope,
) -> DbResult<WindowCall> {
    let col_of = |e: &SqlExpr| -> DbResult<usize> {
        match bind_scalar(e, scope)? {
            Expr::Column { index, .. } => Ok(index),
            other => Err(DbError::Binder(format!(
                "window specifications require plain columns, got {other}"
            ))),
        }
    };
    let func = match fname.to_ascii_uppercase().as_str() {
        "ROW_NUMBER" => WindowFunc::RowNumber,
        "RANK" => WindowFunc::Rank,
        "DENSE_RANK" => WindowFunc::DenseRank,
        "LAG" => WindowFunc::Lag(col_of(
            args.first()
                .ok_or_else(|| DbError::Binder("LAG needs an argument".into()))?,
        )?),
        "LEAD" => WindowFunc::Lead(col_of(
            args.first()
                .ok_or_else(|| DbError::Binder("LEAD needs an argument".into()))?,
        )?),
        agg @ ("SUM" | "MIN" | "MAX" | "AVG" | "COUNT") => {
            let f = AggFunc::parse(agg, false).unwrap();
            WindowFunc::Agg(
                f,
                col_of(
                    args.first()
                        .ok_or_else(|| DbError::Binder(format!("{agg} OVER needs an argument")))?,
                )?,
            )
        }
        other => return Err(DbError::Binder(format!("unknown window function {other}"))),
    };
    Ok(WindowCall {
        func,
        partition_by: partition_by.iter().map(&col_of).collect::<DbResult<_>>()?,
        order_by: order_by
            .iter()
            .map(|(e, asc)| Ok((col_of(e)?, *asc)))
            .collect::<DbResult<_>>()?,
        output_name,
    })
}

/// Bind HAVING: column refs resolve to output names; aggregate calls must
/// match an existing aggregate and resolve to its output column.
fn bind_having(
    h: &SqlExpr,
    scope: &Scope,
    select: &[(Expr, String)],
    aggregates: &[AggItem],
    _group_by_ast: &[SqlExpr],
) -> DbResult<Expr> {
    let g = select.len();
    Ok(match h {
        SqlExpr::Aggregate {
            name,
            distinct,
            arg,
        } => {
            let func = parse_agg(name, *distinct, arg.is_none())?;
            let input = match arg {
                None => None,
                Some(a) => Some(bind_scalar(a, scope)?),
            };
            let idx = aggregates
                .iter()
                .position(|a| a.func == func && a.input == input)
                .ok_or_else(|| {
                    DbError::Binder(format!(
                        "HAVING aggregate {name} must also appear in the SELECT list"
                    ))
                })?;
            Expr::col(g + idx, aggregates[idx].output_name.clone())
        }
        SqlExpr::Column { name, qualifier } => {
            // Output-name resolution first, then group expression match.
            let pos = select
                .iter()
                .position(|(_, n)| n.eq_ignore_ascii_case(name))
                .or_else(|| {
                    aggregates
                        .iter()
                        .position(|a| a.output_name.eq_ignore_ascii_case(name))
                        .map(|i| g + i)
                });
            match pos {
                Some(p) => Expr::col(p, name.clone()),
                None => {
                    // A group-by column referenced by its base name.
                    let bound = bind_scalar(
                        &SqlExpr::Column {
                            qualifier: qualifier.clone(),
                            name: name.clone(),
                        },
                        scope,
                    )?;
                    let p = select
                        .iter()
                        .position(|(e, _)| e == &bound)
                        .ok_or_else(|| {
                            DbError::Binder(format!("HAVING column {name} not grouped"))
                        })?;
                    Expr::col(p, name.clone())
                }
            }
        }
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_having(left, scope, select, aggregates, _group_by_ast)?),
            right: Box::new(bind_having(
                right,
                scope,
                select,
                aggregates,
                _group_by_ast,
            )?),
        },
        SqlExpr::Unary { op, input } => Expr::Unary {
            op: *op,
            input: Box::new(bind_having(
                input,
                scope,
                select,
                aggregates,
                _group_by_ast,
            )?),
        },
        SqlExpr::Between { input, low, high } => Expr::Between {
            input: Box::new(bind_having(
                input,
                scope,
                select,
                aggregates,
                _group_by_ast,
            )?),
            low: Box::new(bind_having(low, scope, select, aggregates, _group_by_ast)?),
            high: Box::new(bind_having(high, scope, select, aggregates, _group_by_ast)?),
        },
        other => {
            return Err(DbError::Binder(format!(
                "unsupported HAVING expression: {other:?}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn schemas() -> BTreeMap<String, TableSchema> {
        let mut m = BTreeMap::new();
        m.insert(
            "sales".to_string(),
            TableSchema::new(
                "sales",
                vec![
                    ColumnDef::new("id", DataType::Integer),
                    ColumnDef::new("cust_id", DataType::Integer),
                    ColumnDef::new("amt", DataType::Float),
                    ColumnDef::new("ts", DataType::Timestamp),
                ],
            ),
        );
        m.insert(
            "customer".to_string(),
            TableSchema::new(
                "customer",
                vec![
                    ColumnDef::new("cid", DataType::Integer),
                    ColumnDef::new("state", DataType::Varchar),
                ],
            ),
        );
        m
    }

    fn bind_sql(sql: &str) -> DbResult<BoundStatement> {
        bind(parse_statement(sql)?, &schemas())
    }

    #[test]
    fn bind_simple_select() {
        let BoundStatement::Select(q) =
            bind_sql("SELECT amt, id FROM sales WHERE amt > 10").unwrap()
        else {
            panic!()
        };
        assert_eq!(q.tables.len(), 1);
        assert!(q.table_filters[0].is_some());
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.output_names(), vec!["amt", "id"]);
    }

    #[test]
    fn bind_join_extracts_edges() {
        let BoundStatement::Select(q) = bind_sql(
            "SELECT state, COUNT(*) FROM sales s JOIN customer c ON s.cust_id = c.cid \
             WHERE s.amt > 5 GROUP BY state",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left_table, 0);
        assert_eq!(q.joins[0].left_columns, vec![1]);
        assert_eq!(q.joins[0].right_columns, vec![0]);
        assert!(q.table_filters[0].is_some());
        assert!(q.is_aggregate());
        // state is global column 5 (4 sales cols + cid).
        assert_eq!(q.group_by[0].referenced_columns(), vec![5]);
    }

    #[test]
    fn bind_comma_join_from_where() {
        let BoundStatement::Select(q) = bind_sql(
            "SELECT s.id FROM sales s, customer c WHERE s.cust_id = c.cid AND c.state = 'MA'",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(q.joins.len(), 1);
        assert!(q.table_filters[1].is_some(), "state filter on customer");
    }

    #[test]
    fn aggregate_select_order_enforced() {
        // Aggregates before group columns: rejected.
        let err = bind_sql("SELECT COUNT(*), state FROM customer GROUP BY state");
        assert!(matches!(err, Err(DbError::Binder(_))));
        // Correct order passes.
        assert!(bind_sql("SELECT state, COUNT(*) FROM customer GROUP BY state").is_ok());
    }

    #[test]
    fn having_binds_to_aggregate_output() {
        let BoundStatement::Select(q) = bind_sql(
            "SELECT state, COUNT(*) AS c FROM customer GROUP BY state HAVING COUNT(*) > 3",
        )
        .unwrap() else {
            panic!()
        };
        let h = q.having.unwrap();
        // COUNT(*) is output column 1 (after 1 group column).
        assert_eq!(h.referenced_columns(), vec![1]);
    }

    #[test]
    fn order_by_name_position_and_expr() {
        let BoundStatement::Select(q) =
            bind_sql("SELECT id, amt FROM sales ORDER BY amt DESC, 1").unwrap()
        else {
            panic!()
        };
        assert_eq!(q.order_by[0].output_column, 1);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.order_by[1].output_column, 0);
    }

    #[test]
    fn bind_window_call() {
        let BoundStatement::Select(q) = bind_sql(
            "SELECT id, SUM(amt) OVER (PARTITION BY cust_id ORDER BY ts) AS running \
             FROM sales",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(q.windows.len(), 1);
        assert_eq!(q.windows[0].partition_by, vec![1]);
        assert_eq!(q.windows[0].output_name, "running");
    }

    #[test]
    fn bind_ddl_and_dml() {
        let BoundStatement::CreateTable {
            schema,
            partition_by,
        } = bind_sql("CREATE TABLE t2 (a INT NOT NULL, ts TIMESTAMP) PARTITION BY YEAR_MONTH(ts)")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(schema.arity(), 2);
        assert!(partition_by.is_some());
        let BoundStatement::Insert { rows, .. } =
            bind_sql("INSERT INTO customer VALUES (1, 'MA'), (2, NULL)").unwrap()
        else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Value::Null);
        let BoundStatement::CreateProjection { def } = bind_sql(
            "CREATE PROJECTION sales_b0 AS SELECT id, amt, ts, cust_id FROM sales \
             ORDER BY ts SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(def.columns, vec![0, 2, 3, 1]);
        assert_eq!(def.sort_keys.len(), 1);
        assert_eq!(def.sort_keys[0].column, 2, "ts is projection column 2");
    }

    #[test]
    fn create_projection_encoding_clause() {
        let BoundStatement::CreateProjection { def } = bind_sql(
            "CREATE PROJECTION sales_e AS SELECT id ENCODING DELTAVAL, amt, \
             cust_id ENCODING RLE FROM sales ORDER BY cust_id",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            def.encodings,
            vec![
                vdb_encoding::EncodingType::DeltaValue,
                vdb_encoding::EncodingType::Auto,
                vdb_encoding::EncodingType::Rle,
            ]
        );
        assert!(matches!(
            bind_sql("CREATE PROJECTION p AS SELECT id ENCODING BOGUS FROM sales"),
            Err(DbError::Binder(_))
        ));
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(
            bind_sql("SELECT nope FROM sales"),
            Err(DbError::Binder(_))
        ));
        assert!(matches!(
            bind_sql("SELECT id FROM nonexistent"),
            Err(DbError::NotFound(_))
        ));
        // Ambiguous: id exists only in sales, cid only in customer — make a
        // genuinely ambiguous name by self-join aliasing.
        let err = bind_sql("SELECT cid FROM customer a JOIN customer b ON a.cid = b.cid");
        assert!(matches!(err, Err(DbError::Binder(_))), "{err:?}");
    }

    #[test]
    fn update_binds_set_list() {
        let BoundStatement::Update {
            sets, predicate, ..
        } = bind_sql("UPDATE sales SET amt = amt * 2 WHERE id = 3").unwrap()
        else {
            panic!()
        };
        assert_eq!(sets[0].0, 2);
        assert!(predicate.is_some());
    }
}
