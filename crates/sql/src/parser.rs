//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{lex, Sym, Token};
use vdb_exec::plan::JoinType;
use vdb_types::{BinOp, DataType, DbError, DbResult, UnOp, Value};

/// Parse one statement (trailing semicolon optional).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    if !p.at_end() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn error(&self, msg: &str) -> DbError {
        DbError::Parse(format!(
            "{msg} (near token {:?})",
            self.peek().cloned().unwrap_or(Token::Ident("<end>".into()))
        ))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> DbResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            t => Err(DbError::Parse(format!("expected identifier, got {t:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("PROJECTION") {
                return self.create_projection();
            }
            return Err(self.error("expected TABLE or PROJECTION after CREATE"));
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                return Ok(Statement::DropTable(self.ident()?));
            }
            if self.eat_kw("PROJECTION") {
                return Ok(Statement::DropProjection(self.ident()?));
            }
            return Err(self.error("expected TABLE or PROJECTION after DROP"));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("ALTER") {
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            self.expect_kw("DROP")?;
            self.expect_kw("PARTITION")?;
            let key = match self.next()? {
                Token::Integer(i) => Value::Integer(i),
                Token::Str(s) => Value::Varchar(s),
                t => {
                    return Err(DbError::Parse(format!(
                        "expected partition literal, got {t:?}"
                    )))
                }
            };
            return Ok(Statement::DropPartition { table, key });
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") || self.eat_kw("ABORT") {
            return Ok(Statement::Rollback);
        }
        Err(self.error("unrecognized statement"))
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty_name = self.ident()?;
            let data_type = DataType::parse_sql(&ty_name)?;
            let mut not_null = false;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                not_null = true;
            }
            columns.push(ColumnDefAst {
                name: col_name,
                data_type,
                not_null,
            });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        let partition_by = if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::CreateTable {
            name,
            columns,
            partition_by,
        })
    }

    /// CREATE PROJECTION p AS SELECT c1 \[ENCODING RLE\], c2 FROM t
    ///   ORDER BY c1, c2
    ///   [SEGMENTED BY HASH(c1) [ALL NODES] | UNSEGMENTED [ALL NODES]]
    fn create_projection(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("AS")?;
        self.expect_kw("SELECT")?;
        let mut columns = Vec::new();
        if self.eat_symbol(Sym::Star) {
            // '*' handled by binder (empty column list = all columns).
        } else {
            loop {
                let col = self.ident()?;
                let encoding = if self.eat_kw("ENCODING") {
                    Some(self.ident()?)
                } else {
                    None
                };
                columns.push((col, encoding));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.ident()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let segmentation = if self.eat_kw("SEGMENTED") {
            self.expect_kw("BY")?;
            self.expect_kw("HASH")?;
            self.expect_symbol(Sym::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            self.eat_kw("ALL");
            self.eat_kw("NODES");
            SegmentationAst::Hash(cols)
        } else if self.eat_kw("UNSEGMENTED") {
            self.eat_kw("ALL");
            self.eat_kw("NODES");
            SegmentationAst::Unsegmented
        } else {
            SegmentationAst::Default
        };
        Ok(Statement::CreateProjection {
            name,
            table,
            columns,
            order_by,
            segmentation,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            // `expr AS alias` or a bare non-reserved identifier alias.
            let has_alias = self.eat_kw("AS")
                || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
            let alias = if has_alias { Some(self.ident()?) } else { None };
            items.push(SelectItem { expr, alias });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.eat_kw("JOIN") || {
                if self.peek().is_some_and(|t| t.is_kw("INNER")) {
                    self.pos += 1;
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                JoinType::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::LeftOuter
            } else if self.eat_kw("RIGHT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::RightOuter
            } else if self.eat_kw("FULL") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::FullOuter
            } else if self.eat_kw("SEMI") {
                self.expect_kw("JOIN")?;
                JoinType::Semi
            } else if self.eat_kw("ANTI") {
                self.expect_kw("JOIN")?;
                JoinType::Anti
            } else if self.eat_symbol(Sym::Comma) {
                // implicit cross join via comma requires ON-less syntax;
                // we require WHERE-based equi predicates, treated as inner
                // join with ON pulled from WHERE by the binder.
                let table = self.table_ref()?;
                joins.push(JoinClause {
                    join_type: JoinType::Inner,
                    table,
                    on: SqlExpr::Literal(Value::Boolean(true)),
                });
                continue;
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(JoinClause {
                join_type,
                table,
                on,
            });
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = 0;
        if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                t => return Err(DbError::Parse(format!("bad LIMIT {t:?}"))),
            }
        }
        if self.eat_kw("OFFSET") {
            match self.next()? {
                Token::Integer(n) if n >= 0 => offset = n as usize,
                t => return Err(DbError::Parse(format!("bad OFFSET {t:?}"))),
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let name = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    // ------------------------------------------------------------------
    // expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> DbResult<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<SqlExpr> {
        if self.eat_kw("NOT") {
            let input = self.not_expr()?;
            return Ok(SqlExpr::Unary {
                op: UnOp::Not,
                input: Box::new(input),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<SqlExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                input: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
            && self
                .peek2()
                .is_some_and(|t| t.is_kw("BETWEEN") || t.is_kw("IN"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let between = SqlExpr::Between {
                input: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated {
                SqlExpr::Unary {
                    op: UnOp::Not,
                    input: Box::new(between),
                }
            } else {
                between
            });
        }
        if self.eat_kw("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                match self.next()? {
                    Token::Integer(i) => list.push(Value::Integer(i)),
                    Token::Float(f) => list.push(Value::Float(f)),
                    Token::Str(s) => list.push(Value::Varchar(s)),
                    Token::Ident(s) if s.eq_ignore_ascii_case("null") => list.push(Value::Null),
                    t => return Err(DbError::Parse(format!("IN list literal, got {t:?}"))),
                }
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(SqlExpr::InList {
                input: Box::new(left),
                list,
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => BinOp::Eq,
            Some(Token::Symbol(Sym::Ne)) => BinOp::Ne,
            Some(Token::Symbol(Sym::Lt)) => BinOp::Lt,
            Some(Token::Symbol(Sym::Le)) => BinOp::Le,
            Some(Token::Symbol(Sym::Gt)) => BinOp::Gt,
            Some(Token::Symbol(Sym::Ge)) => BinOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(SqlExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> DbResult<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> DbResult<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.unary()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> DbResult<SqlExpr> {
        if self.eat_symbol(Sym::Minus) {
            let input = self.unary()?;
            return Ok(SqlExpr::Unary {
                op: UnOp::Neg,
                input: Box::new(input),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<SqlExpr> {
        match self.next()? {
            Token::Integer(i) => Ok(SqlExpr::Literal(Value::Integer(i))),
            Token::Float(f) => Ok(SqlExpr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(SqlExpr::Literal(Value::Varchar(s))),
            Token::Symbol(Sym::LParen) => {
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => self.ident_expr(name),
            t => Err(DbError::Parse(format!("unexpected token {t:?}"))),
        }
    }

    fn ident_expr(&mut self, name: String) -> DbResult<SqlExpr> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => return Ok(SqlExpr::Literal(Value::Null)),
            "TRUE" => return Ok(SqlExpr::Literal(Value::Boolean(true))),
            "FALSE" => return Ok(SqlExpr::Literal(Value::Boolean(false))),
            "DATE" | "TIMESTAMP" => {
                // DATE 'YYYY-MM-DD' literal.
                if let Some(Token::Str(s)) = self.peek() {
                    let s = s.clone();
                    self.pos += 1;
                    let ts = vdb_types::date::parse_timestamp(&s)
                        .ok_or_else(|| DbError::Parse(format!("bad date literal '{s}'")))?;
                    return Ok(SqlExpr::Literal(Value::Timestamp(ts)));
                }
            }
            "CASE" => return self.case_expr(),
            "CAST" => {
                self.expect_symbol(Sym::LParen)?;
                let input = self.expr()?;
                self.expect_kw("AS")?;
                let ty = DataType::parse_sql(&self.ident()?)?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(SqlExpr::Cast {
                    input: Box::new(input),
                    to: ty,
                });
            }
            "EXTRACT" => {
                // EXTRACT(YEAR FROM expr)
                self.expect_symbol(Sym::LParen)?;
                let field = self.ident()?;
                self.expect_kw("FROM")?;
                let arg = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(SqlExpr::Func {
                    name: field,
                    args: vec![arg],
                });
            }
            _ => {}
        }
        // Function / aggregate / window call?
        if self.peek() == Some(&Token::Symbol(Sym::LParen)) {
            self.pos += 1;
            let is_agg = matches!(upper.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG");
            // COUNT(*)
            let (distinct, args): (bool, Vec<SqlExpr>) = if self.eat_symbol(Sym::Star) {
                self.expect_symbol(Sym::RParen)?;
                (false, vec![])
            } else if self.eat_symbol(Sym::RParen) {
                (false, vec![])
            } else {
                let distinct = self.eat_kw("DISTINCT");
                let mut args = vec![self.expr()?];
                while self.eat_symbol(Sym::Comma) {
                    args.push(self.expr()?);
                }
                self.expect_symbol(Sym::RParen)?;
                (distinct, args)
            };
            // OVER clause → window function.
            if self.eat_kw("OVER") {
                self.expect_symbol(Sym::LParen)?;
                let mut partition_by = Vec::new();
                if self.eat_kw("PARTITION") {
                    self.expect_kw("BY")?;
                    loop {
                        partition_by.push(self.expr()?);
                        if !self.eat_symbol(Sym::Comma) {
                            break;
                        }
                    }
                }
                let mut order_by = Vec::new();
                if self.eat_kw("ORDER") {
                    self.expect_kw("BY")?;
                    loop {
                        let e = self.expr()?;
                        let asc = if self.eat_kw("DESC") {
                            false
                        } else {
                            self.eat_kw("ASC");
                            true
                        };
                        order_by.push((e, asc));
                        if !self.eat_symbol(Sym::Comma) {
                            break;
                        }
                    }
                }
                self.expect_symbol(Sym::RParen)?;
                return Ok(SqlExpr::Window {
                    name: upper,
                    args,
                    partition_by,
                    order_by,
                });
            }
            if is_agg {
                return Ok(SqlExpr::Aggregate {
                    name: upper,
                    distinct,
                    arg: args.into_iter().next().map(Box::new),
                });
            }
            return Ok(SqlExpr::Func { name: upper, args });
        }
        // qualified column?
        if self.eat_symbol(Sym::Dot) {
            let col = self.ident()?;
            return Ok(SqlExpr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(SqlExpr::Column {
            qualifier: None,
            name,
        })
    }

    fn case_expr(&mut self) -> DbResult<SqlExpr> {
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        let otherwise = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(SqlExpr::Case {
            branches,
            otherwise,
        })
    }
}

/// Keywords that terminate an implicit alias.
fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "SEMI",
        "ANTI",
        "ON",
        "AS",
        "AND",
        "OR",
        "NOT",
        "ASC",
        "DESC",
        "UNION",
        "SELECT",
        "BY",
        "PARTITION",
        "SEGMENTED",
        "UNSEGMENTED",
        "SET",
        "VALUES",
        "BETWEEN",
        "IN",
        "IS",
        "NULL",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "OVER",
        "DISTINCT",
    ];
    RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let s = parse_statement(
            "SELECT a, b + 1 AS b1 FROM t WHERE a > 5 ORDER BY a DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.items[1].alias, Some("b1".into()));
        assert_eq!(sel.from.name, "t");
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, 2);
        assert!(!sel.order_by[0].ascending);
    }

    #[test]
    fn parse_joins_and_groupby() {
        let s = parse_statement(
            "SELECT d.name, COUNT(*) FROM fact f JOIN dim d ON f.did = d.id \
             LEFT JOIN other o ON o.k = f.k \
             WHERE f.x = 1 GROUP BY d.name HAVING COUNT(*) > 2",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.joins.len(), 2);
        assert_eq!(sel.joins[0].join_type, JoinType::Inner);
        assert_eq!(sel.joins[1].join_type, JoinType::LeftOuter);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert!(matches!(
            sel.items[1].expr,
            SqlExpr::Aggregate {
                distinct: false,
                ..
            }
        ));
    }

    #[test]
    fn parse_window_function() {
        let s =
            parse_statement("SELECT a, ROW_NUMBER() OVER (PARTITION BY b ORDER BY c DESC) FROM t")
                .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        match &sel.items[1].expr {
            SqlExpr::Window {
                name,
                partition_by,
                order_by,
                ..
            } => {
                assert_eq!(name, "ROW_NUMBER");
                assert_eq!(partition_by.len(), 1);
                assert!(!order_by[0].1);
            }
            other => panic!("expected window, got {other:?}"),
        }
    }

    #[test]
    fn parse_ddl() {
        let s = parse_statement(
            "CREATE TABLE sales (id INT NOT NULL, amt FLOAT, ts TIMESTAMP) \
             PARTITION BY YEAR_MONTH(ts)",
        )
        .unwrap();
        let Statement::CreateTable {
            name,
            columns,
            partition_by,
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "sales");
        assert_eq!(columns.len(), 3);
        assert!(columns[0].not_null);
        assert!(partition_by.is_some());
        let p = parse_statement(
            "CREATE PROJECTION sales_b0 AS SELECT id, amt FROM sales ORDER BY id \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        assert!(matches!(
            p,
            Statement::CreateProjection {
                segmentation: SegmentationAst::Hash(_),
                ..
            }
        ));
    }

    #[test]
    fn parse_dml() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'x', 2.5), (2, NULL, 3.0)").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        let d = parse_statement("DELETE FROM t WHERE a = 3").unwrap();
        assert!(matches!(
            d,
            Statement::Delete {
                predicate: Some(_),
                ..
            }
        ));
        let u = parse_statement("UPDATE t SET a = a + 1 WHERE b < 5").unwrap();
        assert!(matches!(u, Statement::Update { .. }));
        let ap = parse_statement("ALTER TABLE t DROP PARTITION 201203").unwrap();
        assert!(matches!(ap, Statement::DropPartition { .. }));
    }

    #[test]
    fn parse_date_literals_and_extract() {
        let s =
            parse_statement("SELECT EXTRACT(MONTH FROM ts) FROM t WHERE ts >= DATE '2012-03-01'")
                .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.items[0].expr, SqlExpr::Func { .. }));
        // The date literal parsed to a Timestamp value.
        let w = sel.where_clause.unwrap();
        match w {
            SqlExpr::Binary { right, .. } => {
                assert!(matches!(*right, SqlExpr::Literal(Value::Timestamp(_))))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_between_in_case() {
        let s = parse_statement(
            "SELECT CASE WHEN a BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END \
             FROM t WHERE b IN (1, 2, 3) AND c IS NOT NULL",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.items[0].expr, SqlExpr::Case { .. }));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("BANANA").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t garbage garbage garbage").is_err());
    }

    #[test]
    fn explain_and_txn() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT a FROM t").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("COMMIT;").unwrap(),
            Statement::Commit
        ));
    }
}
