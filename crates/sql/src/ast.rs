//! Name-based SQL AST (pre-binding).

use vdb_types::{DataType, Value};

/// Scalar expression with unresolved column names.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `[qualifier.]name`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        op: vdb_types::BinOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    Unary {
        op: vdb_types::UnOp,
        input: Box<SqlExpr>,
    },
    /// Scalar function call (`YEAR(ts)`, `HASH(a,b)`...).
    Func {
        name: String,
        args: Vec<SqlExpr>,
    },
    /// Aggregate call: `COUNT(*)`, `SUM(x)`, `COUNT(DISTINCT x)`.
    Aggregate {
        name: String,
        distinct: bool,
        /// None = `*`.
        arg: Option<Box<SqlExpr>>,
    },
    /// `f(args) OVER (PARTITION BY ... ORDER BY ...)`
    Window {
        name: String,
        args: Vec<SqlExpr>,
        partition_by: Vec<SqlExpr>,
        order_by: Vec<(SqlExpr, bool)>,
    },
    IsNull {
        input: Box<SqlExpr>,
        negated: bool,
    },
    InList {
        input: Box<SqlExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        input: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
    },
    Case {
        branches: Vec<(SqlExpr, SqlExpr)>,
        otherwise: Option<Box<SqlExpr>>,
    },
    Cast {
        input: Box<SqlExpr>,
        to: DataType,
    },
}

/// One SELECT list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub join_type: vdb_exec::plan::JoinType,
    pub table: TableRef,
    pub on: SqlExpr,
}

/// ORDER BY item (name, alias or 1-based position).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: SqlExpr,
    pub ascending: bool,
}

/// A parsed SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<usize>,
    pub offset: usize,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// CREATE PROJECTION segmentation clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentationAst {
    /// SEGMENTED BY HASH(cols)
    Hash(Vec<String>),
    /// UNSEGMENTED (replicated on all nodes)
    Unsegmented,
    /// Not specified — binder defaults to hash of the first sort column.
    Default,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDefAst>,
        partition_by: Option<SqlExpr>,
    },
    CreateProjection {
        name: String,
        table: String,
        /// `(column, encoding)` pairs; the encoding is the optional
        /// per-column `ENCODING <name>` clause (None = AUTO). Empty list
        /// = `SELECT *` (all columns, all AUTO).
        columns: Vec<(String, Option<String>)>,
        order_by: Vec<String>,
        segmentation: SegmentationAst,
    },
    DropTable(String),
    DropProjection(String),
    Insert {
        table: String,
        /// Literal rows only.
        rows: Vec<Vec<SqlExpr>>,
    },
    Delete {
        table: String,
        predicate: Option<SqlExpr>,
    },
    Update {
        table: String,
        sets: Vec<(String, SqlExpr)>,
        predicate: Option<SqlExpr>,
    },
    /// `ALTER TABLE t DROP PARTITION <literal>`
    DropPartition {
        table: String,
        key: Value,
    },
    Select(SelectStmt),
    Explain(SelectStmt),
    Begin,
    Commit,
    Rollback,
}
