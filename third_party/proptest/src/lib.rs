#![allow(clippy::test_attr_in_doctest)]
//! Offline shim for the `proptest` crate: the strategy/`proptest!` subset the
//! workspace's property tests use, with deterministic generation and **no
//! shrinking** (a failing case prints its inputs via the std `assert!`
//! message instead of minimising them).
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. Supported surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], ranges
//!   (`0i64..100`, `1u8..=20`, `-1e6f64..1e6`) and `&str` regex-subset
//!   strategies (`"[a-z]{0,12}"`).
//! * [`arbitrary::any`] for the primitive integers and `bool`.
//! * [`collection::vec`] with `Range`/`RangeInclusive` size bounds.
//! * [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`test_runner::ProptestConfig::with_cases`].

#![deny(rustdoc::broken_intra_doc_links)]

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Per-test configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    use rand::{RngCore as _, SeedableRng as _};

    /// Deterministic generator (wraps the vendored `rand` shim's `StdRng`,
    /// as upstream proptest builds on `rand`): every run explores the same
    /// cases, so CI failures reproduce locally.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }

        /// The seed used by the [`crate::proptest!`] runner. Override with
        /// `PROPTEST_SHIM_SEED` to explore a different deterministic stream.
        pub fn deterministic() -> TestRng {
            let seed = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5DEE_CE66_D015_73B5);
            TestRng::new(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform over `range` (delegates to the `rand` shim's sampling).
        pub fn sample_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            rand::Rng::gen_range(&mut self.inner, range)
        }

        /// Uniform in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            self.sample_range(0..bound)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type. Unlike real proptest
    /// there is no value tree: generation is direct and shrink-free.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a strategy by mapping generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Tuples of strategies generate tuples of values (matching the real
    /// proptest API).
    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.sample_range(self.clone())
        }
    }

    /// Uniform choice between same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    pub fn union<V>(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one `prop_oneof!` arm (guarantees the unsize coercion).
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl Strategy for &'static str {
        type Value = String;

        /// Interprets the string as the regex subset the workspace's tests
        /// use: literal chars, `[a-z0-9_]`-style classes, and `{n}` /
        /// `{m,n}` / `?` / `*` / `+` quantifiers (unbounded capped at 8).
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `&str` strategies.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            Some(']') => break,
                            Some('\\') => chars.next().expect("escape in class"),
                            Some(ch) => ch,
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = match chars.next() {
                                Some(']') | None => {
                                    panic!("unterminated range in pattern {pattern:?}")
                                }
                                Some('\\') => chars.next().expect("escape in class"),
                                Some(ch) => ch,
                            };
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                ch => Atom::Literal(ch),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for ch in chars.by_ref() {
                        if ch == '}' {
                            break;
                        }
                        spec.push(ch);
                    }
                    match spec.split_once(',') {
                        None => {
                            let n = spec.trim().parse().expect("bad {n}");
                            (n, n)
                        }
                        Some((m, "")) => {
                            let m: usize = m.trim().parse().expect("bad {m,}");
                            (m, m.max(8))
                        }
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n}"),
                            n.trim().parse().expect("bad {m,n}"),
                        ),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                            .sum();
                        let mut pick = rng.below(total as usize) as u32;
                        for &(lo, hi) in ranges {
                            let size = hi as u32 - lo as u32 + 1;
                            if pick < size {
                                out.push(char::from_u32(lo as u32 + pick).expect("valid char"));
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<i64>()`, `any::<bool>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of()`] / [`weighted()`].
    pub struct OptionStrategy<S> {
        probability_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.sample_range(0.0..1.0) < self.probability_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` and `None` with equal weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `Some` with the given probability, `None` otherwise.
    pub fn weighted<S: Strategy>(probability_some: f64, inner: S) -> OptionStrategy<S> {
        assert!(
            (0.0..=1.0).contains(&probability_some),
            "probability out of range"
        );
        OptionStrategy {
            probability_some,
            inner,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..config.cases {
                let __case: u32 = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Property assertion (the shim panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (the shim panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion (the shim panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (1u8..=20).generate(&mut rng);
            assert!((1..=20).contains(&u));
            let f = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = "[a-z]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
            let lit = "ab_c".generate(&mut rng);
            assert_eq!(lit, "ab_c");
            let q = "x[0-9]+".generate(&mut rng);
            assert!(q.starts_with('x') && q.len() >= 2);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(0i64), 1i64..2, (2i64..3).prop_map(|v| v)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vec_respects_size_bounds() {
        let strat = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro passes through doc comments and runs the body per case.
        #[test]
        fn macro_draws_all_args(a in 0i64..10, b in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b.len() < 6);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
