//! Offline shim for the `rand` crate (0.8 API subset), deterministic and
//! dependency-free.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. The benchmarks only need seeded
//! reproducible streams — [`rngs::StdRng`] here is a splitmix64 generator
//! (a different stream than upstream `StdRng`, which is fine because every
//! caller seeds explicitly and only relies on determinism, not on matching
//! upstream's bit stream).

#![deny(rustdoc::broken_intra_doc_links)]

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic 64-bit generator (splitmix64; passes into any `u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Raw entropy source; [`Rng`] builds typed sampling on top of it.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a `low..high` or `low..=high` range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits → [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] accepts (subset of upstream's trait).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod seq {
    //! Sequence helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1..=10i64);
            assert!((1..=10).contains(&v));
            let w = rng.gen_range(-2..=2i32);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((8_700..=9_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<i32> = (0..100).collect();
        v.shuffle(&mut rngs::StdRng::seed_from_u64(9));
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
