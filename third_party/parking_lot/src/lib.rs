//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. This one provides [`Mutex`] and
//! [`RwLock`] with `parking_lot`'s poison-free API: `lock()`, `read()` and
//! `write()` return guards directly rather than `Result`s. A poisoned std
//! lock (a thread panicked while holding it) is recovered into its inner
//! guard, matching `parking_lot`'s behaviour of not propagating poison.

#![deny(rustdoc::broken_intra_doc_links)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutual exclusion lock (shim over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock (shim over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // would panic with raw std::sync::Mutex
        assert_eq!(*m.lock(), 1);
    }
}
