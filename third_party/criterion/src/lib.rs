//! Offline shim for the `criterion` crate: just enough API for the
//! `vdb_bench` Criterion benches to compile and produce useful numbers.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. This harness runs each routine a
//! fixed number of iterations (the group's `sample_size`, else
//! `CRITERION_SHIM_SAMPLES`, else 10) and reports mean wall-clock time per
//! iteration — no warm-up, statistics, plots or HTML reports.

#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a parameterised benchmark, e.g. `BenchmarkId::new("scan", 4)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// How a group's work scales, for throughput reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Per-iteration input sizing hint for [`Bencher::iter_batched`]. The shim
/// runs every batch size the same way (one setup per measured iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; measures the supplied routine.
pub struct Bencher<'a> {
    samples: u64,
    result: &'a mut Duration,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        *self.result = start.elapsed();
        *self.iters = self.samples;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = total;
        *self.iters = self.samples;
    }
}

/// A named set of related benchmarks (mirrors criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim happily runs fewer.
        self.samples = (n as u64).max(1);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        f(&mut Bencher {
            samples: self.samples,
            result: &mut elapsed,
            iters: &mut iters,
        });
        self.report(&id.into_benchmark_name(), elapsed, iters);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        f(
            &mut Bencher {
                samples: self.samples,
                result: &mut elapsed,
                iters: &mut iters,
            },
            input,
        );
        self.report(&id.name, elapsed, iters);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, bench_name: &str, elapsed: Duration, iters: u64) {
        let per_iter = elapsed.checked_div(iters.max(1) as u32).unwrap_or_default();
        let mut line = format!(
            "{}/{}: {:>12} /iter ({} iters)",
            self.name,
            bench_name,
            format_duration(per_iter),
            iters
        );
        if let Some(Throughput::Bytes(bytes)) = &self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                let mibps = *bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("  {mibps:.1} MiB/s"));
            }
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Anything `bench_function` accepts as a name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkName {
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// The top-level benchmark driver (mirrors criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    default_samples: u64,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples > 0 {
            self.default_samples
        } else {
            std::env::var("CRITERION_SHIM_SAMPLES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10)
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_samples = (n as u64).max(1);
        self
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group declared via [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function(BenchmarkId::new("sum_n", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("sum_input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_all_shapes() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
