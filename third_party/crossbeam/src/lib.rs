//! Offline shim for the `crossbeam` crate (the [`channel`] subset the
//! executor's exchange operators use), backed by [`std::sync::mpsc`].
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. `vdb_exec`'s Send/Recv operators
//! only need cloneable bounded senders with blocking `send`/`recv`, which
//! `std::sync::mpsc::sync_channel` provides directly.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel {
    //! Multi-producer single-consumer bounded channels.

    /// Error returned by [`Sender::send`] when the receiver hung up; carries
    /// the unsent message like `crossbeam_channel::SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a bounded channel. Cloneable (MPSC).
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Error returned by [`Sender::try_send`], mirroring
    /// `crossbeam_channel::TrySendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message comes back unsent.
        Full(T),
        /// The receiver hung up; the message comes back unsent.
        Disconnected(T),
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once the receiver drops.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|e| SendError(e.0))
        }

        /// Non-blocking send: `Full` when the channel is at capacity,
        /// `Disconnected` when the receiver dropped. Lets routers bail out
        /// of a stalled exchange instead of blocking forever.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                std::sync::mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                std::sync::mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel, as in crossbeam).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_send_distinguishes_full_from_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded(8);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx.send(1).unwrap());
            std::thread::spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
