//! Offline shim for the `crossbeam` crate (the [`channel`] subset the
//! executor's exchange operators use), backed by [`std::sync::mpsc`].
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external crates the paper reproduction uses are vendored as
//! minimal API-compatible implementations. `vdb_exec`'s Send/Recv operators
//! only need cloneable bounded senders with blocking `send`/`recv`, which
//! `std::sync::mpsc::sync_channel` provides directly.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel {
    //! Multi-producer single-consumer bounded channels.

    /// Error returned by [`Sender::send`] when the receiver hung up; carries
    /// the unsent message like `crossbeam_channel::SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a bounded channel. Cloneable (MPSC).
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once the receiver drops.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap == 0` is a rendezvous channel, as in crossbeam).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded(8);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx.send(1).unwrap());
            std::thread::spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
